//! The paper's running example: the nonlinear same-generation program
//! (Example 1), evaluated under every strategy over a layered
//! `up`/`flat`/`down` grid, with the Section 9/11 fact accounting printed as
//! a comparison table.
//!
//! Run with `cargo run --example same_generation`.

use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::workloads::{programs, same_generation_grid, SgConfig};

fn main() {
    let program = programs::same_generation();
    let query = programs::same_generation_query("l0c0");
    let db = same_generation_grid(SgConfig {
        depth: 3,
        width: 8,
        flat_everywhere: true,
    });

    println!("program:\n{program}");
    println!("query:   {query}");
    println!("data:    {} base facts\n", db.total_facts());

    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10} {:>7}",
        "strategy", "answers", "answer.facts", "subquery", "suppl.", "firings", "iters"
    );
    for strategy in Strategy::ALL {
        match Planner::new(strategy).evaluate(&program, &query, &db) {
            Ok(result) => println!(
                "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10} {:>7}",
                strategy.short_name(),
                result.answers.len(),
                result.accounting.answer_facts,
                result.accounting.subquery_facts,
                result.accounting.supplementary_facts,
                result.stats.rule_firings,
                result.stats.iterations
            ),
            Err(e) => println!("{:<12} failed: {e}", strategy.short_name()),
        }
    }

    println!(
        "\nExpected shape (Sections 1, 9, 11): every strategy returns the same\n\
         answers; the baselines derive the whole sg relation while the rewrites\n\
         derive only the part reachable from l0c0; the supplementary variants\n\
         trade extra stored facts for fewer duplicate firings."
    );
}
