//! List reverse (Appendix problem 4): a Horn-clause program with function
//! symbols whose unrewritten form is not even range-restricted — yet the
//! magic-sets rewrite makes it evaluable bottom-up, and the Section 10
//! safety analysis proves it terminates (positive binding-graph cycles).
//!
//! Run with `cargo run --example list_reverse`.

use power_of_magic::magic::adorn::adorn;
use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::magic::safety::analyze;
use power_of_magic::magic::sip_builder::SipStrategy;
use power_of_magic::workloads::{list_term, programs, reverse_database};

fn main() {
    let program = programs::list_reverse();
    let list = list_term(6);
    let query = programs::reverse_query(list.clone());

    println!("program:\n{program}");
    println!("query:   {query}\n");

    // Static safety analysis.
    let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).expect("adornment");
    println!(
        "adorned program (Appendix A.2(4)):\n{}",
        adorned.to_program()
    );
    println!("safety:  {}\n", analyze(&adorned));

    // The magic rewrite, printed in full (Appendix A.3.4).
    let rewritten = Planner::new(Strategy::MagicSets)
        .rewrite(&program, &query)
        .expect("rewrite succeeds");
    println!(
        "generalized magic sets rewrite (Appendix A.3.4):\n{}",
        rewritten.program
    );

    // Evaluate with each applicable strategy.
    let db = reverse_database();
    for strategy in [
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
        Strategy::Counting,
        Strategy::SupplementaryCounting,
    ] {
        let result = Planner::new(strategy)
            .evaluate(&program, &query, &db)
            .expect("evaluation succeeds");
        let answer = result
            .answers
            .iter()
            .next()
            .map(|row| row[0].to_string())
            .unwrap_or_else(|| "(none)".into());
        println!(
            "{:<8} reverse({list}) = {answer}   [{} derived facts]",
            strategy.short_name(),
            result.stats.facts_derived
        );
    }

    // The baselines cannot evaluate this program at all: the exit rules are
    // not range-restricted without the query bindings.
    let err = Planner::new(Strategy::SemiNaiveBottomUp)
        .evaluate(&program, &query, &db)
        .unwrap_err();
    println!("\nseminaive (no rewrite) fails as expected: {err}");
}
