//! Quickstart: evaluate a recursive query with and without the magic-sets
//! rewrite.
//!
//! Run with `cargo run --example quickstart`.

use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::{parse_program, parse_query, Database};

fn main() {
    // The ancestor program from Section 1 of the paper.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .expect("program parses");

    // A small family database: two unrelated families.
    let mut db = Database::new();
    for (parent, child) in [
        ("john", "mary"),
        ("mary", "ann"),
        ("ann", "peter"),
        ("zoe", "yan"),
        ("yan", "omar"),
        ("omar", "lea"),
        ("lea", "max"),
    ] {
        db.insert_pair("par", parent, child);
    }

    // Ask for the ancestors... or rather the descendants reachable from john
    // under this orientation of `par` — the paper's query `anc(john, Y)?`.
    let query = parse_query("anc(john, Y)").expect("query parses");

    for strategy in [
        Strategy::SemiNaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
    ] {
        let result = Planner::new(strategy)
            .evaluate(&program, &query, &db)
            .expect("evaluation succeeds");
        let answers: Vec<String> = result
            .answers
            .iter()
            .map(|row| row[0].to_string())
            .collect();
        println!("strategy: {strategy}");
        println!("  answers:            {answers:?}");
        println!("  derived facts:      {}", result.stats.facts_derived);
        println!("  answer facts:       {}", result.accounting.answer_facts);
        println!("  magic (subquery):   {}", result.accounting.subquery_facts);
        println!("  rule firings:       {}", result.stats.rule_firings);
        println!();
    }

    println!(
        "Note how the bottom-up baseline derives the anc tuples of zoe's family\n\
         as well, while the rewrites touch only facts reachable from john —\n\
         that is Theorem 9.1's sip-optimality in action."
    );
}
