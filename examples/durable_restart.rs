//! Crash-safe serving, end to end: start a server with durability
//! switched on, write through it, stop it, then start a *second*
//! server over the same store directory — with a deliberately empty
//! seed database — and watch the write-ahead log and checkpoint bring
//! every acknowledged fact (and the materialized view answering over
//! them) back.
//!
//! The `SIGKILL` variant of this story — killing the process
//! mid-stream and recovering an acked-consistent prefix, torn WAL
//! tail included — is the test suite's job
//! (`crates/serve/tests/durable_restart.rs`); this example shows the
//! API shape.
//!
//! Run with `cargo run --release --example durable_restart`.

use power_of_magic::durable::{DurableConfig, FsyncPolicy};
use power_of_magic::serve::{Client, ServeConfig, Server};
use power_of_magic::{parse_program, Database};

fn main() {
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .expect("program parses");
    let mut seed = Database::new();
    for (parent, child) in [("john", "mary"), ("mary", "ann")] {
        seed.insert_pair("par", parent, child);
    }

    let store = std::env::temp_dir().join(format!("magic-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // Durability is one config field: a store directory, an fsync
    // policy (how many acked batches a power loss may cost — `Always`
    // for none), and a checkpoint cadence bounding recovery's WAL
    // replay.  The ack contract tightens accordingly: an update is
    // acknowledged only once it is logged *and* published.
    let durable = DurableConfig::new(&store)
        .with_fsync(FsyncPolicy::EveryN(8))
        .with_checkpoint_every(4);
    let config = ServeConfig {
        durability: Some(durable.clone()),
        ..ServeConfig::default()
    };

    // ── First life: seed, serve, write, stop. ──────────────────────
    let mut server =
        Server::start(program.clone(), seed, "127.0.0.1:0", config).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let before = client.query("anc(john, Y)").expect("query answered");
    println!(
        "first life:  anc(john, Y) has {} answers",
        before.rows.len()
    );
    for edge in ["par(ann, peter)", "par(peter, zoe)", "par(zoe, kim)"] {
        client.insert(edge).expect("acked insert");
    }
    let stats = client.stats().expect("stats answered");
    println!(
        "first life:  {} updates applied, wal {} bytes, last checkpoint seq {}",
        stats.updates_applied, stats.wal_bytes, stats.last_checkpoint
    );
    server.shutdown();

    // ── Second life: empty seed, same directory. ───────────────────
    // The disk state wins over the seed: recovery loads the newest
    // checkpoint, re-materializes the exported view bindings, and
    // replays the WAL tail through ordinary view maintenance — all
    // before the listener accepts its first connection.
    let config = ServeConfig {
        durability: Some(durable),
        ..ServeConfig::default()
    };
    let mut server =
        Server::start(program, Database::new(), "127.0.0.1:0", config).expect("server restarts");
    let mut client = Client::connect(server.addr()).expect("client reconnects");
    let after = client.query("anc(john, Y)").expect("query answered");
    println!(
        "second life: anc(john, Y) has {} answers (recovered: seed + 3 acked inserts)",
        after.rows.len()
    );
    assert_eq!(after.rows.len(), before.rows.len() + 3);

    // The recovered server is an ordinary live server: keep writing.
    client
        .insert("par(kim, lee)")
        .expect("post-recovery insert");
    let reply = client.query("anc(john, Y)").expect("query answered");
    println!(
        "second life: {} answers after one more insert",
        reply.rows.len()
    );

    client.quit().expect("clean goodbye");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
