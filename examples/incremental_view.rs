//! Incremental view maintenance, end to end: materialize a magic-set view
//! once, then serve live inserts and retracts without re-running the
//! fixpoint.  (Maintenance resumes the stratified scheduler at the lowest
//! dirty stratum — the same engine path that fans evaluation out over the
//! worker pool when `MAGIC_THREADS`/`Limits::threads` asks for it.)
//!
//! Run with `cargo run --release --example incremental_view`.  For the
//! same catalog served over TCP with concurrent readers, see
//! `examples/serve_quickstart.rs`.

use power_of_magic::incr::{MaterializedView, Update, ViewCatalog};
use power_of_magic::lang::{Fact, PredName, Value};
use power_of_magic::workloads::programs;
use power_of_magic::{Database, Strategy};

fn edge(a: &str, b: &str) -> Fact {
    Fact::plain("par", vec![Value::sym(a), Value::sym(b)])
}

fn main() {
    // ---------------------------------------------------------------
    // 1. A raw recursive view: the ancestor closure, maintained live.
    // ---------------------------------------------------------------
    let program = programs::ancestor_intro(); // anc/par naming
    let mut db = Database::new();
    for (a, b) in [("adam", "beth"), ("beth", "carl"), ("carl", "dora")] {
        db.insert_fact(&edge(a, b));
    }
    let mut view = MaterializedView::new(&program, &db).expect("view materializes");
    let anc = PredName::plain("anc");
    println!(
        "materialized: {} ancestor pairs",
        view.database().count(&anc)
    );

    // A single insert re-enters the semi-naive fixpoint from the new fact.
    view.insert(&edge("dora", "evan"))
        .expect("insert maintains");
    println!(
        "after insert(dora, evan): {} pairs",
        view.database().count(&anc)
    );

    // Support counts are exact derivation counts; anc(adam, evan) has one.
    let fact = Fact::plain("anc", vec![Value::sym("adam"), Value::sym("evan")]);
    println!("anc(adam, evan) derivations: {}", view.support_of(&fact));

    // Retraction on the recursive cone goes through delete-and-rederive:
    // everything downstream of (beth, carl) disappears, nothing else does.
    view.retract(&edge("beth", "carl"))
        .expect("retract maintains");
    println!(
        "after retract(beth, carl): {} pairs (strategy {:?})",
        view.database().count(&anc),
        view.retract_strategy(&PredName::plain("par")),
    );

    // Batched updates coalesce consecutive inserts into one fixpoint entry.
    let report = view
        .apply(vec![
            Update::Insert(edge("beth", "carl")),
            Update::Insert(edge("evan", "fern")),
            Update::Retract(edge("adam", "beth")),
        ])
        .expect("batch maintains");
    println!(
        "after batch: {} pairs ({} applied, {} no-ops)",
        view.database().count(&anc),
        report.applied,
        report.no_ops
    );

    // ---------------------------------------------------------------
    // 2. The serving shape: a catalog of magic-set views keyed by the
    //    adorned query binding, updated in one stream.  This is exactly
    //    the state `magic-serve` publishes as snapshots to its reader
    //    threads (see the serve_quickstart example for the TCP version).
    // ---------------------------------------------------------------
    let mut catalog = ViewCatalog::new(Strategy::MagicSets);
    let mut edb = Database::new();
    for (a, b) in [("adam", "beth"), ("beth", "carl"), ("x", "y")] {
        edb.insert_fact(&edge(a, b));
    }
    let q_adam = power_of_magic::parse_query("anc(adam, Y)").unwrap();
    let q_x = power_of_magic::parse_query("anc(x, Y)").unwrap();
    let k_adam = catalog.materialize(&program, &q_adam, &edb).unwrap();
    let k_x = catalog.materialize(&program, &q_x, &edb).unwrap();
    // Same binding -> cache hit, no rematerialization.
    let again = catalog.materialize(&program, &q_adam, &edb).unwrap();
    assert_eq!(k_adam, again);
    println!("\ncatalog keys: {:?}", catalog.keys().collect::<Vec<_>>());

    // One update stream feeds every cached view.
    catalog
        .update_all(&Update::Insert(edge("carl", "dora")))
        .unwrap();
    catalog.update_all(&Update::Insert(edge("y", "z"))).unwrap();
    println!(
        "answers for {k_adam}: {:?}",
        catalog.answers(&k_adam).unwrap()
    );
    println!("answers for {k_x}: {:?}", catalog.answers(&k_x).unwrap());
}
