//! Safety in practice (Section 10): magic sets terminate on cyclic data and
//! on the nonlinear ancestor program; the counting methods do not — the
//! static argument-graph analysis (Theorem 10.3) predicts the program-level
//! divergence, and the engine's resource limits catch the data-level one.
//!
//! Run with `cargo run --example cyclic_safety`.

use power_of_magic::engine::Limits;
use power_of_magic::magic::adorn::adorn;
use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::magic::safety::{analyze, CountingSafety};
use power_of_magic::magic::sip_builder::SipStrategy;
use power_of_magic::workloads::{chain, cycle, programs};

fn main() {
    let limits = Limits::strict();

    // Case 1: the nonlinear ancestor program — counting diverges regardless
    // of the data (Theorem 10.3, Appendix A.5.2).
    let nonlinear = programs::nonlinear_ancestor();
    let query = programs::ancestor_query("n0");
    let adorned = adorn(&nonlinear, &query, SipStrategy::FullLeftToRight).unwrap();
    let report = analyze(&adorned);
    println!("nonlinear ancestor: {report}");
    assert_eq!(report.counting, CountingSafety::NonTerminating);

    let magic = Planner::new(Strategy::MagicSets)
        .with_limits(limits)
        .evaluate(&nonlinear, &query, &chain(20))
        .expect("magic sets terminate");
    println!(
        "  magic sets:   {} answers (terminates)",
        magic.answers.len()
    );
    // The planner's cycle-detecting pre-check (dependency-graph SCCs over
    // the rewritten program + the Theorem 10.3 argument-graph analysis)
    // refuses the plan up front — no evaluation, no burned wall budget.
    match Planner::new(Strategy::Counting)
        .with_limits(limits)
        .evaluate(&nonlinear, &query, &chain(20))
    {
        Err(e) => {
            assert!(matches!(
                e,
                power_of_magic::magic::planner::PlanError::CountingUnsafe { .. }
            ));
            println!("  counting:     refused up front ({e})");
        }
        Ok(r) => println!(
            "  counting:     unexpectedly terminated with {} answers",
            r.answers.len()
        ),
    }

    // Case 2: the linear ancestor program on cyclic data — statically fine,
    // but the cycle makes the counting indexes grow without bound.
    let linear = programs::ancestor();
    let adorned = adorn(&linear, &query, SipStrategy::FullLeftToRight).unwrap();
    println!(
        "\nlinear ancestor on a 12-node cycle: {}",
        analyze(&adorned)
    );
    let cyclic_db = cycle(12);
    let magic = Planner::new(Strategy::MagicSets)
        .with_limits(limits)
        .evaluate(&linear, &query, &cyclic_db)
        .expect("magic sets terminate on cyclic data (Theorem 10.2)");
    println!(
        "  magic sets:   {} answers (terminates)",
        magic.answers.len()
    );
    match Planner::new(Strategy::Counting)
        .with_limits(limits)
        .evaluate(&linear, &query, &cyclic_db)
    {
        Err(e) => println!("  counting:     diverges on the cyclic data ({e})"),
        Ok(r) => println!(
            "  counting:     unexpectedly terminated with {} answers",
            r.answers.len()
        ),
    }
}
