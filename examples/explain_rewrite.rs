//! Explain the full rewriting pipeline for a program and query supplied on
//! the command line (or the paper's nested same-generation example by
//! default): the chosen sips, the adorned program, every rewrite, and the
//! safety verdicts.
//!
//! Usage:
//!
//! ```text
//! cargo run --example explain_rewrite -- '<program text>' '<query>'
//! cargo run --example explain_rewrite -- "$(cat my_program.dl)" 'path(a, Y)'
//! ```

use power_of_magic::magic::adorn::adorn;
use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::magic::safety::analyze;
use power_of_magic::magic::sip_builder::SipStrategy;
use power_of_magic::{parse_program, parse_query};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (program_text, query_text) = if args.len() >= 2 {
        (args[0].clone(), args[1].clone())
    } else {
        (
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y)."
                .to_string(),
            "p(john, Y)".to_string(),
        )
    };

    let program = match parse_program(&program_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("could not parse program: {e}");
            std::process::exit(1);
        }
    };
    let query = match parse_query(&query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("could not parse query: {e}");
            std::process::exit(1);
        }
    };

    println!("== source program ==\n{program}");
    println!("== query ==\n{query}\n");

    let adorned = match adorn(&program, &query, SipStrategy::FullLeftToRight) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("adornment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("== sips (full left-to-right, Section 2) ==");
    for ar in &adorned.rules {
        println!("rule: {}", ar.rule);
        if ar.sip.arcs.is_empty() {
            println!("  (no arcs)");
        } else {
            for line in ar.sip.to_string().lines() {
                println!("  {line}");
            }
        }
    }
    println!(
        "\n== adorned program (Section 3) ==\n{}",
        adorned.to_program()
    );
    println!("== safety (Section 10) ==\n{}\n", analyze(&adorned));

    for strategy in Strategy::REWRITES {
        println!("== {} ==", strategy.short_name());
        match Planner::new(strategy).rewrite(&program, &query) {
            Ok(rewritten) => println!("{}", rewritten.program),
            Err(e) => println!("(not applicable: {e})\n"),
        }
    }
}
