//! The serving layer, end to end: spawn a `magic-serve` server
//! in-process, connect a client over TCP, query, insert, re-query, and
//! read the server's counters — the whole
//! query → materialize-on-demand → update → fresh-snapshot loop.
//!
//! Run with `cargo run --release --example serve_quickstart`.

use power_of_magic::serve::{Client, ServeConfig, Server};
use power_of_magic::{parse_program, Database};

fn main() {
    // The ancestor program from Section 1 of the paper, and a small
    // family database.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .expect("program parses");
    let mut db = Database::new();
    for (parent, child) in [("john", "mary"), ("mary", "ann"), ("ann", "peter")] {
        db.insert_pair("par", parent, child);
    }

    // Bind an ephemeral port.  Reader threads (one per connection) answer
    // queries from immutable catalog snapshots; a single writer thread
    // applies updates and publishes fresh snapshots.
    let mut server =
        Server::start(program, db, "127.0.0.1:0", ServeConfig::default()).expect("server starts");
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("client connects");

    // First sight of the binding `anc[bf](john)`: the server plans the
    // magic-sets rewrite, materializes the view, and answers from it.
    let reply = client.query("anc(john, Y)").expect("query answered");
    println!(
        "anc(john, Y) -> {:?}  [view {}, snapshot v{}]",
        rows_to_strings(&reply.rows),
        reply.key,
        reply.version
    );

    // An insert is acknowledged only once the snapshot containing it is
    // published — so the re-query below is guaranteed to see it.
    let ack = client.insert("par(peter, zoe)").expect("insert acked");
    println!(
        "insert par(peter, zoe): applied={} v{}",
        ack.applied, ack.version
    );

    let reply = client.query("anc(john, Y)").expect("query answered");
    println!(
        "anc(john, Y) -> {:?}  [snapshot v{}]",
        rows_to_strings(&reply.rows),
        reply.version
    );

    // A second binding materializes its own view; STATS shows both.
    client.query("anc(mary, Y)").expect("query answered");
    let stats = client.stats().expect("stats answered");
    println!(
        "stats: {} views, {} queries, {} updates, {} rule firings",
        stats.views, stats.queries_served, stats.updates_applied, stats.rule_firings
    );
    for view in &stats.per_view {
        println!("  view {}: {} facts", view.key, view.facts);
    }

    client.quit().expect("clean goodbye");
    server.shutdown();
    println!("server drained and shut down");
}

fn rows_to_strings(rows: &[Vec<power_of_magic::lang::Value>]) -> Vec<String> {
    rows.iter().map(|row| row[0].to_string()).collect()
}
