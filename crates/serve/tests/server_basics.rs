//! Server lifecycle and protocol behavior over a real TCP connection.

use magic_core::planner::Strategy;
use magic_datalog::parse_program;
use magic_engine::Limits;
use magic_serve::{Client, ClientError, ServeConfig, Server, ServerHandle};
use magic_storage::Database;

fn ancestor_server() -> ServerHandle {
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    let mut db = Database::new();
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
        db.insert_pair("par", a, b);
    }
    Server::start(program, db, "127.0.0.1:0", ServeConfig::default()).unwrap()
}

#[test]
fn query_insert_retract_round_trip() {
    let mut server = ancestor_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client.query("anc(a, Y)").unwrap();
    assert_eq!(reply.rows.len(), 3); // b, c, d
                                     // The key names the adorned answer predicate, the query's bound
                                     // constants and the rewrite strategy: `anc_bf[bf](a)@gms`.
    assert!(
        reply.key.contains("[bf](a)") && reply.key.ends_with("@gms"),
        "key: {}",
        reply.key
    );

    // A duplicate insert is acknowledged as a no-op and publishes nothing.
    let ack = client.insert("par(a, b)").unwrap();
    assert!(!ack.applied);

    let ack = client.insert("par(d, e)").unwrap();
    assert!(ack.applied);
    let reply2 = client.query("anc(a, Y)").unwrap();
    assert_eq!(reply2.rows.len(), 4);
    assert!(
        reply2.version >= ack.version,
        "acknowledged write must be visible: ack v{}, read v{}",
        ack.version,
        reply2.version
    );

    let ack = client.retract("par(d, e)").unwrap();
    assert!(ack.applied);
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 3);

    // Distinct bindings materialize distinct views.
    assert_eq!(client.query("anc(b, Y)").unwrap().rows.len(), 2);
    let stats = client.stats().unwrap();
    assert_eq!(stats.views, 2);
    assert_eq!(stats.per_view.len(), 2);
    assert!(stats.queries_served >= 4);
    assert!(stats.updates_applied >= 2);
    assert!(stats.rule_firings > 0);

    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn derived_updates_and_bad_requests_are_rejected() {
    let mut server = ancestor_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let err = client.insert("anc(a, d)").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "got: {err}");

    let err = client.query("anc(a Y").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "got: {err}");

    // Arity mismatches surface as writer-side errors, not poisoned state.
    let err = client.insert("par(a, b, c)").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "got: {err}");

    // The connection stays usable after errors.
    client.ping().unwrap();
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 3);
    server.shutdown();
}

#[test]
fn concurrent_readers_share_snapshots() {
    let mut server = ancestor_server();
    // Warm the binding once so the readers exercise the pure
    // snapshot-read path.
    Client::connect(server.addr())
        .unwrap()
        .query("anc(a, Y)")
        .unwrap();

    let addr = server.addr();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..25 {
                    let reply = client.query("anc(a, Y)").unwrap();
                    assert_eq!(reply.rows.len(), 3);
                }
            })
        })
        .collect();
    for reader in readers {
        reader.join().unwrap();
    }
    assert!(server.queries_served() >= 101);
    server.shutdown();
}

#[test]
fn racing_new_predicate_arities_never_kill_the_writer() {
    // Two clients race inserts of a predicate unknown to both the
    // program and the base database, at different arities.  Whatever
    // batch the writer coalesces them into, exactly the second-applied
    // arity must be rejected per update (never a storage panic that
    // would silently disable all writes).
    let mut server = ancestor_server();
    let addr = server.addr();
    let racers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let fact = if i == 0 { "zzz(a)" } else { "zzz(a, b)" };
                client.insert(fact).is_ok()
            })
        })
        .collect();
    let outcomes: Vec<bool> = racers.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(
        outcomes.iter().any(|&ok| ok),
        "one arity must win: {outcomes:?}"
    );
    // The writer must still be alive and serving both reads and writes.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.insert("par(d, e)").unwrap().applied);
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 4);
    server.shutdown();
}

#[test]
fn wire_shutdown_stops_the_server() {
    let mut server = ancestor_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.query("anc(a, Y)").unwrap();
    client.shutdown_server().unwrap();
    // The handle's shutdown must join cleanly even though the stop came
    // over the wire.
    server.shutdown();
    // New connections are no longer served (either refused outright or
    // closed without an answer).
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.ping().is_err());
    }
}

#[test]
fn max_views_evicts_cold_bindings_and_reheals_on_next_sight() {
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    let mut db = Database::new();
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
        db.insert_pair("par", a, b);
    }
    let config = ServeConfig {
        max_views: 2,
        ..ServeConfig::default()
    };
    let mut server = Server::start(program, db, "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Three distinct bindings against a cap of two: the first (coldest)
    // binding is evicted from both the catalog and the published
    // snapshot.
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 3);
    assert_eq!(client.query("anc(b, Y)").unwrap().rows.len(), 2);
    assert_eq!(client.query("anc(c, Y)").unwrap().rows.len(), 1);
    let stats = client.stats().unwrap();
    assert_eq!(stats.views, 2, "cap must hold: {:?}", stats.per_view);

    // The evicted binding still answers — it re-materializes from the
    // authoritative base facts on next sight (evicting the new coldest),
    // and sees every update applied while it was cold.
    assert!(client.insert("par(d, e)").unwrap().applied);
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 4);
    let stats = client.stats().unwrap();
    assert_eq!(stats.views, 2);
    assert!(
        stats.per_view.iter().any(|v| v.key.contains("(a)")),
        "re-materialized binding must be live: {:?}",
        stats.per_view
    );
    server.shutdown();
}

#[test]
fn tiny_max_views_materialize_evict_races_never_panic_the_writer() {
    // `max_views: 1` makes every distinct binding evict the previous
    // one, so concurrent first-sight queries race materialization
    // against eviction as hard as possible.  The writer once held an
    // `expect("binding was just materialized")` on this path — under a
    // cap this tight, a materialize whose binding is clawed back
    // immediately must surface as a retryable error (or a served
    // retry), never a writer panic that would wedge all future writes.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    let mut db = Database::new();
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
        db.insert_pair("par", a, b);
    }
    let config = ServeConfig {
        max_views: 1,
        ..ServeConfig::default()
    };
    let mut server = Server::start(program, db, "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let racers: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let (query, rows) = match t % 3 {
                    0 => ("anc(a, Y)", 3),
                    1 => ("anc(b, Y)", 2),
                    _ => ("anc(c, Y)", 1),
                };
                let mut served = 0usize;
                for _ in 0..25 {
                    match client.query(query) {
                        Ok(reply) => {
                            assert_eq!(reply.rows.len(), rows, "wrong answers for {query}");
                            served += 1;
                        }
                        // Losing the materialize/evict race repeatedly
                        // is legal under a cap of one; what matters is
                        // that it is an *error*, not a dead writer.
                        Err(ClientError::Server(m)) => {
                            assert!(m.contains("evicted"), "unexpected refusal: {m}")
                        }
                        Err(e) => panic!("unexpected failure: {e}"),
                    }
                }
                served
            })
        })
        .collect();
    let served: usize = racers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(served > 0, "some queries must win the race");

    // The writer survived the storm: reads and writes both still work.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.insert("par(d, e)").unwrap().applied);
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 4);
    let stats = client.stats().unwrap();
    assert!(stats.views <= 1, "the cap must hold: {:?}", stats.per_view);
    server.shutdown();
}

#[test]
fn strict_limits_surface_as_errors_not_hangs() {
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 0..50 {
        db.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
    }
    let config = ServeConfig {
        strategy: Strategy::MagicSets,
        limits: Limits::default().with_max_facts(3),
        ..ServeConfig::default()
    };
    let mut server = Server::start(program, db, "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.query("anc(n0, Y)").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "got: {err}");
    client.ping().unwrap();
    server.shutdown();
}
