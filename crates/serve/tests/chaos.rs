//! Deterministic fault injection against the real server process: the
//! degraded-mode acceptance tests.
//!
//! Every test here runs the spawned `durable_server` under a
//! `MAGIC_FAULTS` schedule (see [`magic_durable::faults`]) and checks
//! the degradation contract end to end:
//!
//! * a durable-path failure flips the server into *read-only degraded
//!   mode* — updates refused with `ERR DEGRADED …`, acks truthful,
//!   reads still serving the last consistent snapshot;
//! * a background probe exits degraded mode automatically once the
//!   fault schedule is exhausted;
//! * after a SIGKILL + restart, recovery contains every acked fact and
//!   **no refused fact** — a write the client was told failed must
//!   never resurrect from the log (the ghost-write hazard);
//! * connection-level faults (drop/stall) are survived by the client's
//!   reconnect-and-retry path without the server noticing.
//!
//! The final test sweeps seeded schedules from
//! [`magic_workloads::chaos_scenarios`] instead of hand-picked ones.

#![cfg(unix)]

mod common;

use common::{read_base, seed_edges, tmp_dir, ServerProc};
use magic_serve::{Client, ClientError};
use magic_workloads::{chaos_scenarios, SplitMix64};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Poll `STATS` until `degraded` reads `want` (or panic after ~5s).
fn wait_for_degraded(client: &mut Client, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats().expect("stats while polling degraded");
        if stats.degraded == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server never reached degraded={want}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn fsync_failure_degrades_then_probe_recovers_and_no_ghost_survives() {
    let dir = tmp_dir("chaos-fsync");
    // `always` fsync so the injected failure strikes the very batch
    // that caused it; two scheduled failures so the first probe also
    // fails (exercising the backoff) before the second one heals.
    let mut server = ServerProc::spawn_with_env(
        &dir,
        100_000,
        &[
            ("MAGIC_FAULTS", "wal-fsync-fail=1x2"),
            ("MAGIC_SERVE_FSYNC", "always"),
        ],
    );
    let mut client = Client::connect(server.addr).expect("connect");

    // The poisoned write: refused, rolled back, and it flips the
    // server into degraded mode.
    let err = client.insert("par(ghost, one)").expect_err("must refuse");
    assert!(
        matches!(err, ClientError::Degraded(_)),
        "want Degraded, got: {err}"
    );
    // While degraded: reads serve, further updates are refused, and
    // STATS says so.  (`degraded_entered` is the sticky witness — the
    // probe may win the race and clear the live `degraded` flag
    // before we look.)
    assert_eq!(read_base(&mut client), seed_edges());
    let stats = client.stats().expect("degraded stats");
    assert_eq!(stats.degraded_entered, 1);
    if stats.degraded == 1 {
        match client.insert("par(ghost, two)") {
            Err(ClientError::Degraded(_)) => {}
            // The probe recovered between our STATS and this insert;
            // retract so the restart oracle below stays exact.
            Ok(_) => {
                client.retract("par(ghost, two)").expect("undo late ack");
            }
            Err(e) => panic!("want Degraded or late Ok, got: {e}"),
        }
    }

    // The probe burns the second scheduled failure, then heals;
    // degraded mode exits with no client intervention.
    wait_for_degraded(&mut client, 0);
    let ack = client.insert("par(healed, fine)").expect("post-recovery");
    assert!(ack.applied);

    // Kill + restart: the acked post-recovery write survives; neither
    // refused write resurrects from the log.
    server.kill();
    let server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(server.addr).expect("restart connect");
    let mut expected = seed_edges();
    expected.insert(("healed".into(), "fine".into()));
    assert_eq!(
        read_base(&mut client),
        expected,
        "exactly seed + acked must recover: refused writes are not ghosts"
    );
}

#[test]
fn torn_append_is_scrubbed_refused_and_never_replayed() {
    let dir = tmp_dir("chaos-torn");
    // The second append tears mid-frame: bytes hit the disk but the
    // batch errors.  The scrub + rollback must leave no trace — not in
    // memory, not in acks, and (the hazard) not on disk for recovery
    // to replay.
    let mut server = ServerProc::spawn_with_env(&dir, 100_000, &[("MAGIC_FAULTS", "wal-torn=2")]);
    let mut client = Client::connect(server.addr).expect("connect");

    assert!(client.insert("par(first, ok)").expect("append 1").applied);
    let err = client
        .insert("par(torn, away)")
        .expect_err("append 2 tears");
    assert!(
        matches!(err, ClientError::Degraded(_)),
        "want Degraded, got: {err}"
    );
    wait_for_degraded(&mut client, 0);
    assert!(client.insert("par(third, ok)").expect("append 3").applied);

    server.kill();
    let server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(server.addr).expect("restart connect");
    let mut expected = seed_edges();
    expected.insert(("first".into(), "ok".into()));
    expected.insert(("third".into(), "ok".into()));
    assert_eq!(
        read_base(&mut client),
        expected,
        "the torn (refused) write must not be replayed"
    );
}

#[test]
fn checkpoint_rename_failure_degrades_without_breaking_acks() {
    let dir = tmp_dir("chaos-ckpt");
    // Rename #1 is the initial seed checkpoint (before the listener is
    // live); rename #2 — the first cadence checkpoint — fails.  The
    // batch that crossed the cadence was already acked off an intact
    // WAL, so its promise must hold through the degraded spell and a
    // later crash.
    let mut server = ServerProc::spawn_with_env(&dir, 2, &[("MAGIC_FAULTS", "ckpt-rename-fail=2")]);
    let mut client = Client::connect(server.addr).expect("connect");

    assert!(client.insert("par(acked, a)").expect("insert 1").applied);
    assert!(client.insert("par(acked, b)").expect("insert 2").applied);
    // The cadence checkpoint behind insert 2 failed: the server went
    // degraded, but both acks above were honest (WAL-backed).  Wait on
    // the sticky entered-counter — the probe may retry the checkpoint
    // (rename #3, unfaulted) and clear the live flag at any moment.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut refused_while_down = false;
    loop {
        let stats = client.stats().expect("stats while polling entry");
        if stats.degraded_entered >= 1 {
            // Observed the degraded spell; if it is still live, the
            // front door must refuse.
            if stats.degraded == 1 {
                match client.insert("par(while, down)") {
                    Err(ClientError::Degraded(_)) => refused_while_down = true,
                    Ok(_) => {
                        // Probe won the race; undo to keep the oracle
                        // below exact.
                        client.retract("par(while, down)").expect("undo");
                    }
                    Err(e) => panic!("want Degraded or late Ok, got: {e}"),
                }
            }
            break;
        }
        assert!(Instant::now() < deadline, "server never entered degraded");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Recovery is automatic.
    wait_for_degraded(&mut client, 0);
    assert!(
        client
            .insert("par(back, up)")
            .expect("post-recovery")
            .applied
    );

    server.kill();
    let server = ServerProc::spawn(&dir, 2);
    let mut client = Client::connect(server.addr).expect("restart connect");
    let mut expected = seed_edges();
    expected.insert(("acked".into(), "a".into()));
    expected.insert(("acked".into(), "b".into()));
    expected.insert(("back".into(), "up".into()));
    assert_eq!(
        read_base(&mut client),
        expected,
        "refused-while-down observed: {refused_while_down}"
    );
    let stats = client.stats().expect("restart stats");
    assert!(
        stats.last_checkpoint > 0,
        "the probe's retried checkpoint must have landed"
    );
}

#[test]
fn four_shard_degradation_is_per_shard_and_never_ghosts() {
    // The sharded layout under the same WAL-failure contract: the
    // fault strikes one shard's log (all `par` updates serialize
    // through `par`'s home shard), exactly that shard degrades and
    // refuses, the probe heals it, and across a SIGKILL + restart the
    // refused write never resurrects while the acked one survives.
    //
    // The spec is hand-picked to strike *past boot*: WAL fsyncs only
    // happen on appends, so the four per-shard stores created at
    // startup (which do checkpoint) cannot eat the scheduled failures.
    let dir = tmp_dir("chaos-foursharded");
    let shards_env = [
        ("MAGIC_FAULTS", "wal-fsync-fail=1x2"),
        ("MAGIC_SERVE_FSYNC", "always"),
        ("MAGIC_SERVE_WRITER_SHARDS", "4"),
    ];
    let mut server = ServerProc::spawn_with_env(&dir, 100_000, &shards_env);
    let mut client = Client::connect(server.addr).expect("connect");

    let err = client.insert("par(ghost, one)").expect_err("must refuse");
    assert!(
        matches!(err, ClientError::Degraded(_)),
        "want Degraded, got: {err}"
    );
    // Reads still serve the last consistent snapshot, and STATS pins
    // the degradation to exactly one shard.
    assert_eq!(read_base(&mut client), seed_edges());
    let stats = client.stats().expect("degraded stats");
    assert_eq!(stats.writer_shards, 4);
    assert_eq!(stats.degraded_entered, 1);
    assert_eq!(
        stats
            .per_shard
            .iter()
            .filter(|s| s.degraded_entered > 0)
            .count(),
        1,
        "exactly one shard owns the failure: {:?}",
        stats.per_shard
    );

    // The probe heals the struck shard on its own.
    wait_for_degraded(&mut client, 0);
    assert!(
        client
            .insert("par(healed, fine)")
            .expect("post-heal")
            .applied
    );

    // SIGKILL + 4-shard restart: acked survives, the refusal does not.
    server.kill();
    let server = ServerProc::spawn_with_env(&dir, 100_000, &[("MAGIC_SERVE_WRITER_SHARDS", "4")]);
    let mut client = Client::connect(server.addr).expect("restart connect");
    let mut expected = seed_edges();
    expected.insert(("healed".into(), "fine".into()));
    assert_eq!(
        read_base(&mut client),
        expected,
        "exactly seed + acked must recover per shard: refused writes are not ghosts"
    );
}

#[test]
fn dropped_and_stalled_connections_are_survived_by_reconnect() {
    let dir = tmp_dir("chaos-conn");
    // Connections 2 and 3 are dropped at accept; connection 5 is
    // stalled 80ms before its first byte is served.
    let mut server = ServerProc::spawn_with_env(
        &dir,
        100_000,
        &[("MAGIC_FAULTS", "conn-drop=2x2,conn-stall=5:80")],
    );

    // Connection 1: healthy.
    let mut healthy = Client::connect(server.addr).expect("conn 1");
    healthy.ping().expect("conn 1 serves");

    // Connection 2: accepted, then dropped before any response — the
    // failure surfaces on the first round trip, and
    // `query_with_retry` reconnects through connection 3 (also
    // dropped) to 4 (healthy) without caller involvement.
    let mut unlucky = Client::connect(server.addr).expect("conn 2 dials");
    let reply = unlucky
        .query_with_retry("edge(X, Y)", 5)
        .expect("retry through the drop zone");
    assert_eq!(reply.rows.len(), 16);

    // Connection 5: stalled, not broken — the round trip just takes
    // the injected delay longer.
    let started = Instant::now();
    let mut slow = Client::connect(server.addr).expect("conn 5 dials");
    slow.ping().expect("stalled connection still serves");
    assert!(
        started.elapsed() >= Duration::from_millis(60),
        "the stall must be observable"
    );

    // The server never noticed: still healthy, zero degraded entries.
    let stats = healthy.stats().expect("final stats");
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.degraded_entered, 0);
    server.kill();
}

#[test]
fn seeded_chaos_scenarios_never_lose_an_ack_or_apply_a_refusal() {
    // The generated sweep: every scenario drives a unique-fact insert
    // stream through a seeded fault schedule, then proves over a kill
    // + restart that acked ⊆ recovered, refused ∩ recovered = ∅, and
    // everything recovered is accounted for.  One seed reproduces the
    // whole run, schedule and workload both.
    for scenario in chaos_scenarios(0xBEE51987, 3) {
        let dir = tmp_dir(&scenario.name);
        let mut server = ServerProc::spawn_with_env(
            &dir,
            4,
            &[
                ("MAGIC_FAULTS", scenario.fault_spec.as_str()),
                ("MAGIC_SERVE_FSYNC", "always"),
                ("MAGIC_SERVE_QUEUE_DEPTH", "8"),
            ],
        );
        let addr = server.addr;
        let mut rng = SplitMix64::seed_from_u64(scenario.workload_seed);
        let mut client =
            Client::connect_with_backoff(addr, 5).expect("connect through possible drops");

        let mut acked = BTreeSet::new();
        let mut refused = BTreeSet::new();
        let mut unknown = BTreeSet::new();
        for i in 0..scenario.ops {
            let (a, b) = (
                format!("c{i}x{}", rng.next_u64() % 97),
                format!("c{i}y{}", rng.next_u64() % 97),
            );
            let edge = (a.clone(), b.clone());
            match client.insert(&format!("par({a}, {b})")) {
                Ok(_) => {
                    acked.insert(edge);
                }
                // Definite refusals: never applied.
                Err(ClientError::Busy { .. }) | Err(ClientError::Degraded(_)) => {
                    refused.insert(edge);
                }
                // Unknown outcome: deadline expiry, or the transport
                // died mid-round-trip (a conn fault) — reconnect and
                // keep driving.
                Err(e) => {
                    unknown.insert(edge);
                    if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
                        client = Client::connect_with_backoff(addr, 10)
                            .expect("reconnect after conn fault");
                    }
                }
            }
        }

        // No writer panic under any schedule: the server still serves.
        let mut probe = Client::connect_with_backoff(addr, 10).expect("post-run connect");
        probe.ping().unwrap_or_else(|e| {
            panic!(
                "{}: server unresponsive after the schedule: {e}",
                scenario.name
            )
        });
        server.kill();

        let server = ServerProc::spawn(&dir, 4);
        let mut client = Client::connect(server.addr).expect("restart connect");
        let recovered = read_base(&mut client);
        let seed = seed_edges();
        for edge in &acked {
            assert!(
                recovered.contains(edge),
                "{}: acked fact lost: {edge:?} (spec {})",
                scenario.name,
                scenario.fault_spec
            );
        }
        for edge in &refused {
            assert!(
                !recovered.contains(edge),
                "{}: refused fact applied: {edge:?} (spec {})",
                scenario.name,
                scenario.fault_spec
            );
        }
        for edge in &recovered {
            assert!(
                seed.contains(edge) || acked.contains(edge) || unknown.contains(edge),
                "{}: recovered fact nobody sent: {edge:?}",
                scenario.name
            );
        }
    }
}
