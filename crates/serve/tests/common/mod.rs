//! Shared harness for the crash/chaos suites: spawn the real
//! `durable_server` binary as a separate OS process (recovery across an
//! *actual* process boundary), optionally with environment knobs
//! (`MAGIC_FAULTS`, `MAGIC_SERVE_*`), and read its recovered base
//! state back through the `edge` passthrough view.

#![allow(dead_code)] // each test binary uses a subset of the harness

use magic_serve::Client;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// A scratch store directory unique to this test process and name.
pub fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "magic-durable-restart-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The spawned server process; killed (if still alive) on drop.
pub struct ServerProc {
    pub child: Child,
    pub addr: SocketAddr,
}

impl ServerProc {
    /// Spawn `durable_server <dir> <checkpoint_every>` and wait for its
    /// `ADDR` line, which it prints only after recovery completed and
    /// the listener is live.
    pub fn spawn(dir: &Path, checkpoint_every: u64) -> ServerProc {
        ServerProc::spawn_with_env(dir, checkpoint_every, &[])
    }

    /// [`ServerProc::spawn`] with extra environment variables — the
    /// carrier for `MAGIC_FAULTS` schedules and the `MAGIC_SERVE_*`
    /// overload knobs.  `MAGIC_FAULTS` is explicitly cleared first so
    /// a faulted run never leaks its schedule into a restart that
    /// passed an empty `envs`.
    pub fn spawn_with_env(dir: &Path, checkpoint_every: u64, envs: &[(&str, &str)]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_durable_server"));
        cmd.arg(dir)
            .arg(checkpoint_every.to_string())
            .env_remove("MAGIC_FAULTS")
            .stdout(Stdio::piped());
        for (name, value) in envs {
            cmd.env(name, value);
        }
        let mut child = cmd.spawn().expect("spawn durable_server");
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ADDR line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("expected ADDR line, got {line:?}"))
            .parse()
            .expect("parse server address");
        ServerProc { child, addr }
    }

    /// SIGKILL — no shutdown hooks, no flushes, mid-anything.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The seed EDB the server binary starts from: a 16-edge chain.
pub fn seed_edges() -> BTreeSet<(String, String)> {
    (0..16)
        .map(|i| (format!("n{i}"), format!("n{}", i + 1)))
        .collect()
}

/// Read the whole recovered base relation back through the `edge`
/// passthrough view.
pub fn read_base(client: &mut Client) -> BTreeSet<(String, String)> {
    client
        .query("edge(X, Y)")
        .expect("query edge(X, Y)")
        .rows
        .iter()
        .map(|row| (row[0].to_string(), row[1].to_string()))
        .collect()
}
