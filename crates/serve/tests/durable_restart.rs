//! Kill-and-restart crash safety: the durable layer's headline
//! acceptance tests.
//!
//! Each test spawns the real `durable_server` binary (a separate OS
//! process — recovery across an *actual* process boundary, not a
//! same-process re-open), streams acked updates at it, `SIGKILL`s it at
//! an arbitrary point, restarts over the same store directory, and
//! checks the recovered state against a client-side oracle.
//!
//! The correctness contract under a single client (updates are totally
//! ordered) is **prefix semantics**: the recovered base state must
//! equal the oracle applied to `sent[..m]` for some `m` with
//! `acked <= m <= sent` — everything acknowledged survives, nothing
//! is half-applied, and an in-flight (never-acked) trailing update may
//! or may not have landed.  A torn final WAL frame — the disk
//! signature of dying mid-append — must be truncated on recovery, not
//! replayed and not fatal.

#![cfg(unix)]

use magic_serve::Client;
use magic_workloads::SplitMix64;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "magic-durable-restart-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The spawned server process; killed (if still alive) on drop.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawn `durable_server <dir> <checkpoint_every>` and wait for its
    /// `ADDR` line, which it prints only after recovery completed and
    /// the listener is live.
    fn spawn(dir: &Path, checkpoint_every: u64) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_durable_server"))
            .arg(dir)
            .arg(checkpoint_every.to_string())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn durable_server");
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ADDR line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("expected ADDR line, got {line:?}"))
            .parse()
            .expect("parse server address");
        ServerProc { child, addr }
    }

    /// SIGKILL — no shutdown hooks, no flushes, mid-anything.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One update of the generated stream.
#[derive(Clone, Debug)]
struct Op {
    insert: bool,
    a: String,
    b: String,
}

impl Op {
    fn atom(&self) -> String {
        format!("par({}, {})", self.a, self.b)
    }
}

/// The seed EDB the server binary starts from: a 16-edge chain.
fn seed_edges() -> BTreeSet<(String, String)> {
    (0..16)
        .map(|i| (format!("n{i}"), format!("n{}", i + 1)))
        .collect()
}

/// The oracle: seed + the first `m` ops applied in order.
fn oracle(ops: &[Op], m: usize) -> BTreeSet<(String, String)> {
    let mut edges = seed_edges();
    for op in &ops[..m] {
        let edge = (op.a.clone(), op.b.clone());
        if op.insert {
            edges.insert(edge);
        } else {
            edges.remove(&edge);
        }
    }
    edges
}

/// A random stream over a small universe, dense enough that inserts
/// collide (no-op acks) and retracts hit real rows.
fn gen_ops(rng: &mut SplitMix64, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| {
            let a = format!("s{}", rng.next_u64() % 6);
            let b = format!("s{}", rng.next_u64() % 6);
            Op {
                insert: rng.next_u64() % 10 < 7,
                a,
                b,
            }
        })
        .collect()
}

/// Read the whole recovered base relation back through the `edge`
/// passthrough view.
fn read_base(client: &mut Client) -> BTreeSet<(String, String)> {
    client
        .query("edge(X, Y)")
        .expect("query edge(X, Y)")
        .rows
        .iter()
        .map(|row| (row[0].to_string(), row[1].to_string()))
        .collect()
}

#[test]
fn sigkill_mid_stream_recovers_exactly_an_acked_consistent_prefix() {
    let dir = tmp_dir("midstream");
    let mut rng = SplitMix64::seed_from_u64(0xBEE51987);
    let ops = gen_ops(&mut rng, 40);

    let mut server = ServerProc::spawn(&dir, 4);
    let mut client = Client::connect(server.addr).expect("connect");
    // Ack every op in order; each ack means logged + published.
    let acked = ops.len();
    for op in &ops {
        let result = if op.insert {
            client.insert(&op.atom())
        } else {
            client.retract(&op.atom())
        };
        result.expect("acked update");
    }
    // One more update *in flight*: written to the socket, never
    // waited for — the kill races its processing, so recovery may
    // land on either side of it.
    let inflight = Op {
        insert: true,
        a: "zz".into(),
        b: "ww".into(),
    };
    let mut raw = TcpStream::connect(server.addr).expect("raw connect");
    raw.write_all(format!("INSERT {}\n", inflight.atom()).as_bytes())
        .expect("fire in-flight update");
    raw.flush().expect("flush in-flight update");
    server.kill();

    let mut all = ops.clone();
    all.push(inflight);
    // Restart over the same directory: recovery must finish before the
    // ADDR line prints.
    let server = ServerProc::spawn(&dir, 4);
    let mut client = Client::connect(server.addr).expect("reconnect");
    let recovered = read_base(&mut client);
    let matched = (acked..=all.len()).find(|&m| recovered == oracle(&all, m));
    assert!(
        matched.is_some(),
        "recovered state matches no acked-or-longer prefix: {} edges recovered, \
         acked prefix has {}",
        recovered.len(),
        oracle(&all, acked).len()
    );

    // The recovered server is fully live: maintained views answer over
    // recovered state, and new writes stack on top of it.
    let anc = client.query("anc(n0, Y)").expect("query anc over recovery");
    assert!(anc.rows.len() >= 16, "the seed chain survived recovery");
    client
        .insert("par(post, crash)")
        .expect("post-recovery write");
    let after = read_base(&mut client);
    assert_eq!(after.len(), recovered.len() + 1);
    let stats = client.stats().expect("stats");
    assert!(
        stats.last_checkpoint > 0,
        "checkpoint cadence 4 must have checkpointed during the stream"
    );
}

#[test]
fn torn_final_wal_frame_is_truncated_never_replayed() {
    let dir = tmp_dir("torn");
    // Cadence high enough that nothing checkpoints after the initial
    // seed checkpoint: every op lives in the WAL, so the tear sits at
    // the end of a log recovery genuinely needs.
    let mut server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(server.addr).expect("connect");
    let ops: Vec<Op> = (0..5)
        .map(|i| Op {
            insert: true,
            a: format!("t{i}"),
            b: format!("t{}", i + 1),
        })
        .collect();
    for op in &ops {
        client.insert(&op.atom()).expect("acked insert");
    }
    server.kill();

    // Simulate dying mid-append: a frame header promising more bytes
    // than follow, with a garbage checksum.
    let wal = dir.join("wal.log");
    let before = std::fs::metadata(&wal).expect("wal exists").len();
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open wal");
    file.write_all(&[0x40, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, b'I', b' ', b'p'])
        .expect("append torn frame");
    drop(file);

    let mut server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(server.addr).expect("reconnect");
    // Every acked op survived; the torn frame contributed nothing.
    assert_eq!(read_base(&mut client), oracle(&ops, ops.len()));
    // Recovery healed the file on disk, not just in memory.
    assert!(std::fs::metadata(&wal).expect("wal exists").len() <= before);
    client.insert("par(after, tear)").expect("post-tear write");
    server.kill();

    // And the healed log replays cleanly on a third start.
    let server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(&server.addr).expect("third connect");
    let mut expected = oracle(&ops, ops.len());
    expected.insert(("after".into(), "tear".into()));
    assert_eq!(read_base(&mut client), expected);
    drop(server);
}
