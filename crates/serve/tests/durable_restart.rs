//! Kill-and-restart crash safety: the durable layer's headline
//! acceptance tests.
//!
//! Each test spawns the real `durable_server` binary (a separate OS
//! process — recovery across an *actual* process boundary, not a
//! same-process re-open), streams acked updates at it, `SIGKILL`s it at
//! an arbitrary point, restarts over the same store directory, and
//! checks the recovered state against a client-side oracle.
//!
//! The correctness contract under a single client (updates are totally
//! ordered) is **prefix semantics**: the recovered base state must
//! equal the oracle applied to `sent[..m]` for some `m` with
//! `acked <= m <= sent` — everything acknowledged survives, nothing
//! is half-applied, and an in-flight (never-acked) trailing update may
//! or may not have landed.  A torn final WAL frame — the disk
//! signature of dying mid-append — must be truncated on recovery, not
//! replayed and not fatal.

#![cfg(unix)]

mod common;

use common::{read_base, seed_edges, tmp_dir, ServerProc};
use magic_datalog::parse_program;
use magic_durable::DurableConfig;
use magic_serve::{Client, ClientError, ServeConfig, Server};
use magic_storage::Database;
use magic_workloads::SplitMix64;
use std::collections::BTreeSet;
use std::io::Write;
use std::net::TcpStream;

/// One update of the generated stream.
#[derive(Clone, Debug)]
struct Op {
    insert: bool,
    a: String,
    b: String,
}

impl Op {
    fn atom(&self) -> String {
        format!("par({}, {})", self.a, self.b)
    }
}

/// The oracle: seed + the first `m` ops applied in order.
fn oracle(ops: &[Op], m: usize) -> BTreeSet<(String, String)> {
    let mut edges = seed_edges();
    for op in &ops[..m] {
        let edge = (op.a.clone(), op.b.clone());
        if op.insert {
            edges.insert(edge);
        } else {
            edges.remove(&edge);
        }
    }
    edges
}

/// A random stream over a small universe, dense enough that inserts
/// collide (no-op acks) and retracts hit real rows.
fn gen_ops(rng: &mut SplitMix64, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| {
            let a = format!("s{}", rng.next_u64() % 6);
            let b = format!("s{}", rng.next_u64() % 6);
            Op {
                insert: rng.next_u64() % 10 < 7,
                a,
                b,
            }
        })
        .collect()
}

#[test]
fn sigkill_mid_stream_recovers_exactly_an_acked_consistent_prefix() {
    let dir = tmp_dir("midstream");
    let mut rng = SplitMix64::seed_from_u64(0xBEE51987);
    let ops = gen_ops(&mut rng, 40);

    let mut server = ServerProc::spawn(&dir, 4);
    let mut client = Client::connect(server.addr).expect("connect");
    // Ack every op in order; each ack means logged + published.
    let acked = ops.len();
    for op in &ops {
        let result = if op.insert {
            client.insert(&op.atom())
        } else {
            client.retract(&op.atom())
        };
        result.expect("acked update");
    }
    // One more update *in flight*: written to the socket, never
    // waited for — the kill races its processing, so recovery may
    // land on either side of it.
    let inflight = Op {
        insert: true,
        a: "zz".into(),
        b: "ww".into(),
    };
    let mut raw = TcpStream::connect(server.addr).expect("raw connect");
    raw.write_all(format!("INSERT {}\n", inflight.atom()).as_bytes())
        .expect("fire in-flight update");
    raw.flush().expect("flush in-flight update");
    server.kill();

    let mut all = ops.clone();
    all.push(inflight);
    // Restart over the same directory: recovery must finish before the
    // ADDR line prints.
    let server = ServerProc::spawn(&dir, 4);
    let mut client = Client::connect(server.addr).expect("reconnect");
    let recovered = read_base(&mut client);
    let matched = (acked..=all.len()).find(|&m| recovered == oracle(&all, m));
    assert!(
        matched.is_some(),
        "recovered state matches no acked-or-longer prefix: {} edges recovered, \
         acked prefix has {}",
        recovered.len(),
        oracle(&all, acked).len()
    );

    // The recovered server is fully live: maintained views answer over
    // recovered state, and new writes stack on top of it.
    let anc = client.query("anc(n0, Y)").expect("query anc over recovery");
    assert!(anc.rows.len() >= 16, "the seed chain survived recovery");
    client
        .insert("par(post, crash)")
        .expect("post-recovery write");
    let after = read_base(&mut client);
    assert_eq!(after.len(), recovered.len() + 1);
    let stats = client.stats().expect("stats");
    assert!(
        stats.last_checkpoint > 0,
        "checkpoint cadence 4 must have checkpointed during the stream"
    );
}

#[test]
fn four_shard_store_survives_sigkill_and_pins_its_layout() {
    // The sharded layout under the same kill-and-restart contract as
    // the classic single-writer store: every acked write survives a
    // SIGKILL, recovery merges the per-shard partitions before the
    // listener goes live, and the store refuses to reopen at a
    // different shard count.
    let dir = tmp_dir("foursharded");
    let shards_env = [("MAGIC_SERVE_WRITER_SHARDS", "4")];
    let mut rng = SplitMix64::seed_from_u64(0x4D47_5348);
    let ops = gen_ops(&mut rng, 30);

    let mut server = ServerProc::spawn_with_env(&dir, 4, &shards_env);
    let mut client = Client::connect(server.addr).expect("connect");
    for op in &ops {
        let result = if op.insert {
            client.insert(&op.atom())
        } else {
            client.retract(&op.atom())
        };
        result.expect("acked update");
    }
    assert_eq!(read_base(&mut client), oracle(&ops, ops.len()));
    server.kill();

    // Restart at the same shard count: the merged recovery equals the
    // full acked oracle, views answer over it, and new writes stack.
    let mut server = ServerProc::spawn_with_env(&dir, 4, &shards_env);
    let mut client = Client::connect(server.addr).expect("reconnect");
    let recovered = read_base(&mut client);
    assert_eq!(recovered, oracle(&ops, ops.len()));
    let anc = client.query("anc(n0, Y)").expect("query anc over recovery");
    assert!(anc.rows.len() >= 16, "the seed chain survived recovery");
    client
        .insert("par(post, crash)")
        .expect("post-recovery write");
    assert_eq!(read_base(&mut client).len(), recovered.len() + 1);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.writer_shards, 4);
    assert_eq!(stats.per_shard.len(), 4);
    server.kill();

    // A store created with four shards must refuse a two-shard reopen
    // — repartitioning WALs silently would corrupt recovery.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).
         edge(X, Y) :- par(X, Y).",
    )
    .unwrap();
    let result = Server::start(
        program,
        Database::new(),
        "127.0.0.1:0",
        ServeConfig {
            writer_shards: 2,
            durability: Some(DurableConfig::new(&dir)),
            ..ServeConfig::default()
        },
    );
    let Err(err) = result else {
        panic!("mismatched shard count must refuse to open")
    };
    let message = err.to_string();
    assert!(
        message.contains("writer_shards=4"),
        "refusal must name the recorded layout: {message}"
    );
}

#[test]
fn torn_final_wal_frame_is_truncated_never_replayed() {
    let dir = tmp_dir("torn");
    // Cadence high enough that nothing checkpoints after the initial
    // seed checkpoint: every op lives in the WAL, so the tear sits at
    // the end of a log recovery genuinely needs.
    let mut server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(server.addr).expect("connect");
    let ops: Vec<Op> = (0..5)
        .map(|i| Op {
            insert: true,
            a: format!("t{i}"),
            b: format!("t{}", i + 1),
        })
        .collect();
    for op in &ops {
        client.insert(&op.atom()).expect("acked insert");
    }
    server.kill();

    // Simulate dying mid-append: a frame header promising more bytes
    // than follow, with a garbage checksum.
    let wal = dir.join("wal.log");
    let before = std::fs::metadata(&wal).expect("wal exists").len();
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open wal");
    file.write_all(&[0x40, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, b'I', b' ', b'p'])
        .expect("append torn frame");
    drop(file);

    let mut server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(server.addr).expect("reconnect");
    // Every acked op survived; the torn frame contributed nothing.
    assert_eq!(read_base(&mut client), oracle(&ops, ops.len()));
    // Recovery healed the file on disk, not just in memory.
    assert!(std::fs::metadata(&wal).expect("wal exists").len() <= before);
    client.insert("par(after, tear)").expect("post-tear write");
    server.kill();

    // And the healed log replays cleanly on a third start.
    let server = ServerProc::spawn(&dir, 100_000);
    let mut client = Client::connect(&server.addr).expect("third connect");
    let mut expected = oracle(&ops, ops.len());
    expected.insert(("after".into(), "tear".into()));
    assert_eq!(read_base(&mut client), expected);
    drop(server);
}

#[test]
fn overload_sheds_busy_and_every_acked_update_survives_restart() {
    // Overload acceptance: a deliberately wedged writer (every early
    // WAL append stalled by an injected fault) behind a tiny queue
    // bound, hammered by more concurrent writers than the queue can
    // hold.  The server must shed with `BUSY` — never queue without
    // bound, never panic — and after a SIGKILL + restart the recovered
    // state must contain *every* acked fact and *no* shed fact: a shed
    // is a refusal, not a silent drop of something promised.
    let dir = tmp_dir("overload");
    let mut server = ServerProc::spawn_with_env(
        &dir,
        4,
        &[
            // Stall the first 40 appends 60ms each: the writer stays
            // busy while the front door keeps having to decide.
            ("MAGIC_FAULTS", "wal-stall=1x40:60"),
            ("MAGIC_SERVE_QUEUE_DEPTH", "2"),
        ],
    );
    let addr = server.addr;

    // Six writer threads race distinct facts at a queue of two.  Each
    // op is one unique fact, so the restart oracle is exact set
    // arithmetic: acked ⊆ recovered, shed ∩ recovered = ∅, and
    // anything with unknown outcome (timeout/transport) may go either
    // way.
    let workers: Vec<_> = (0..6)
        .map(|w| {
            std::thread::spawn(move || {
                let mut acked = Vec::new();
                let mut shed = Vec::new();
                let mut unknown = Vec::new();
                let mut client = Client::connect(addr).expect("worker connect");
                for i in 0..10 {
                    let (a, b) = (format!("w{w}a{i}"), format!("w{w}b{i}"));
                    match client.insert(&format!("par({a}, {b})")) {
                        Ok(_) => acked.push((a, b)),
                        Err(ClientError::Busy { retry_after_ms, .. }) => {
                            assert!(retry_after_ms > 0, "BUSY must carry a retry hint");
                            shed.push((a, b));
                        }
                        Err(ClientError::Degraded(m)) => {
                            panic!("stall faults must not degrade the server: {m}")
                        }
                        Err(_) => unknown.push((a, b)),
                    }
                }
                (acked, shed, unknown)
            })
        })
        .collect();
    let mut acked = BTreeSet::new();
    let mut shed = BTreeSet::new();
    let mut unknown = BTreeSet::new();
    for worker in workers {
        let (a, s, u) = worker.join().expect("worker thread");
        acked.extend(a);
        shed.extend(s);
        unknown.extend(u);
    }
    assert!(
        !shed.is_empty(),
        "six writers against a queue of two behind a stalled writer must shed"
    );
    assert!(!acked.is_empty(), "some writes must still get through");

    // The server survived the storm: it answers, and it counted the
    // sheds it issued.
    let mut client = Client::connect(addr).expect("post-storm connect");
    let stats = client.stats().expect("post-storm stats");
    assert!(
        stats.shed_updates >= shed.len() as u64,
        "sheds issued ({}) must be counted (stats: {})",
        shed.len(),
        stats.shed_updates
    );
    assert_eq!(stats.degraded, 0, "stalls are slow, not broken");
    server.kill();

    // Kill + restart: the oracle over unique facts.
    let server = ServerProc::spawn(&dir, 4);
    let mut client = Client::connect(server.addr).expect("restart connect");
    let recovered = read_base(&mut client);
    for edge in &acked {
        assert!(
            recovered.contains(edge),
            "acked fact lost across restart: {edge:?}"
        );
    }
    for edge in &shed {
        assert!(
            !recovered.contains(edge),
            "BUSY-shed fact silently applied: {edge:?}"
        );
    }
    // Everything recovered is accounted for: seed, acked, or an
    // unknown-outcome op that landed.
    let seed = seed_edges();
    for edge in &recovered {
        assert!(
            seed.contains(edge) || acked.contains(edge) || unknown.contains(edge),
            "recovered fact nobody sent: {edge:?}"
        );
    }
}
