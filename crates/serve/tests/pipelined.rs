//! The `MGWP01` binary protocol end to end: protocol sniffing on a
//! shared port, text/binary answer agreement, out-of-order completion,
//! pipeline metrics, and client recovery when the server goes away
//! mid-pipeline.

use magic_datalog::parse_program;
use magic_serve::{
    Client, ClientError, Frame, PipeClient, ServeConfig, Server, ServerHandle, BINARY_MAGIC,
};
use magic_storage::Database;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn ancestor_program() -> magic_datalog::Program {
    parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap()
}

fn seed_db() -> Database {
    let mut db = Database::new();
    for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
        db.insert_pair("par", a, b);
    }
    db
}

fn start(config: ServeConfig) -> ServerHandle {
    Server::start(ancestor_program(), seed_db(), "127.0.0.1:0", config).unwrap()
}

/// The CI smoke: a text client and a binary client against the same
/// server must see identical answers, and writes made over one
/// protocol must be read back over the other.
#[test]
fn binary_and_text_clients_agree() {
    let mut server = start(ServeConfig::default());
    let mut text = Client::connect(server.addr()).unwrap();
    let mut pipe = PipeClient::connect(server.addr()).unwrap();

    let id = pipe.submit_query("anc(a, Y)").unwrap();
    let via_pipe = pipe.wait_query(id).unwrap();
    let via_text = text.query("anc(a, Y)").unwrap();
    assert_eq!(via_pipe.key, via_text.key);
    assert_eq!(via_pipe.rows, via_text.rows);
    assert_eq!(via_pipe.rows.len(), 3);

    // Write over binary, read over text…
    let id = pipe.submit_insert("par(d, e)").unwrap();
    let ack = pipe.wait_ack(id).unwrap();
    assert!(ack.applied);
    let reply = text.query("anc(a, Y)").unwrap();
    assert_eq!(reply.rows.len(), 4);
    assert!(
        reply.version >= ack.version,
        "binary ack v{} must be visible to the text read v{}",
        ack.version,
        reply.version
    );

    // …and write over text, read over binary.
    let ack = text.retract("par(d, e)").unwrap();
    assert!(ack.applied);
    let id = pipe.submit_query("anc(a, Y)").unwrap();
    assert_eq!(pipe.wait_query(id).unwrap().rows.len(), 3);

    // Errors classify identically across protocols.
    let id = pipe.submit_insert("anc(a, z)").unwrap();
    match pipe.wait_ack(id).unwrap_err() {
        ClientError::Server(m) => assert!(m.contains("derived"), "got: {m}"),
        other => panic!("expected Server error, got {other:?}"),
    }
    let id = pipe.submit_query("anc(a Y").unwrap();
    assert!(matches!(
        pipe.wait_query(id).unwrap_err(),
        ClientError::Server(_)
    ));

    let id = pipe.submit_ping().unwrap();
    pipe.wait_pong(id).unwrap();
    server.shutdown();
}

/// Many requests in flight at once, claimed in reverse submission
/// order: every response correlates by id, whatever order the server
/// completed them in.
#[test]
fn pipelined_requests_resolve_out_of_claim_order() {
    let mut server = start(ServeConfig::default());
    let mut pipe = PipeClient::connect(server.addr()).unwrap();

    let warm = pipe.submit_query("anc(a, Y)").unwrap();
    assert_eq!(pipe.wait_query(warm).unwrap().rows.len(), 3);

    let mut expect = Vec::new();
    for i in 0..32 {
        let id = pipe.submit_insert(&format!("par(q{i}, r{i})")).unwrap();
        expect.push((id, true));
    }
    let queries: Vec<u64> = (0..8)
        .map(|_| pipe.submit_query("anc(a, Y)").unwrap())
        .collect();
    assert!(pipe.in_flight() >= 40);

    // Claim queries first, then the inserts in reverse order.
    for id in queries.into_iter().rev() {
        assert_eq!(pipe.wait_query(id).unwrap().rows.len(), 3);
    }
    for (id, applied) in expect.into_iter().rev() {
        assert_eq!(pipe.wait_ack(id).unwrap().applied, applied);
    }
    assert_eq!(pipe.in_flight(), 0);

    // A claimed id cannot be claimed twice.
    assert!(matches!(
        pipe.wait_query(warm).unwrap_err(),
        ClientError::Protocol(_)
    ));
    server.shutdown();
}

/// The sniff regression: a binary frame's first byte (`M`) is
/// printable, so the protocol decision must wait for the *full* magic
/// — and a text line that happens to start with `M` must stay text.
#[test]
fn sniff_waits_for_the_full_magic_and_keeps_printable_text_text() {
    let mut server = start(ServeConfig::default());

    // Binary preamble trickled in two writes, split mid-magic: the
    // server must hold its decision, then answer with a framed
    // response.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&BINARY_MAGIC[..3]).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(30));
    raw.write_all(&BINARY_MAGIC[3..]).unwrap();
    let frame = Frame {
        req_id: 7,
        tag: 5, // PING
        body: Vec::new(),
    };
    raw.write_all(&frame.encode()).unwrap();
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut chunk = [0u8; 256];
    loop {
        let n = raw.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed without answering the frame");
        buf.extend_from_slice(&chunk[..n]);
        if let Ok(Some((reply, _))) = Frame::decode(&buf) {
            assert_eq!(reply.req_id, 7);
            assert_eq!(reply.tag, 0, "PING must succeed");
            assert_eq!(reply.body, b"OK pong\n");
            break;
        }
    }

    // A text request starting with the magic's first byte must be
    // answered as text (an ERR line for the unknown verb), not eaten
    // by the framer.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"MAGIC?\n").unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    loop {
        let n = raw.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed without answering the text line");
        buf.extend_from_slice(&chunk[..n]);
        if buf.ends_with(b"\n") {
            break;
        }
    }
    let line = String::from_utf8(buf).unwrap();
    assert!(
        line.starts_with("ERR ") && line.contains("unknown verb"),
        "got: {line}"
    );

    // And plain text still works untouched.
    let mut text = Client::connect(server.addr()).unwrap();
    text.ping().unwrap();
    server.shutdown();
}

/// Losing the server mid-pipeline must resolve every outstanding and
/// future wait with a typed error — never a hang — and a reconnect
/// against the restarted server must serve again.
#[test]
fn mid_pipeline_server_loss_errors_cleanly_and_reconnects() {
    let mut server = start(ServeConfig::default());
    let addr = server.addr();
    let mut pipe = PipeClient::connect(addr).unwrap();
    let id = pipe.submit_query("anc(a, Y)").unwrap();
    assert_eq!(pipe.wait_query(id).unwrap().rows.len(), 3);

    // Requests in flight when the server dies: each wait must return
    // — an answer if the response raced out, an error otherwise.
    let in_flight: Vec<u64> = (0..4)
        .map(|_| pipe.submit_query("anc(a, Y)").unwrap())
        .collect();
    server.shutdown();
    for id in in_flight {
        match pipe.wait_query(id) {
            Ok(reply) => assert_eq!(reply.rows.len(), 3),
            Err(e) => assert!(
                matches!(e, ClientError::Io(_) | ClientError::Protocol(_)),
                "expected a transport-shaped error, got {e:?}"
            ),
        }
    }
    // The connection is now poisoned: submits and waits keep erroring
    // immediately instead of hanging.
    let poisoned = pipe
        .submit_query("anc(a, Y)")
        .and_then(|id| pipe.wait_query(id));
    assert!(poisoned.is_err(), "poisoned pipe must not serve");

    // Restart on the same port; reconnect-and-retry must recover.
    let mut server =
        Server::start(ancestor_program(), seed_db(), addr, ServeConfig::default()).unwrap();
    let reply = pipe.query_with_retry("anc(a, Y)", 10).unwrap();
    assert_eq!(reply.rows.len(), 3);
    let id = pipe.submit_insert("par(d, e)").unwrap();
    assert!(pipe.wait_ack(id).unwrap().applied);
    server.shutdown();
}

/// `STATS` over the binary protocol reports the new shard and pipeline
/// telemetry, with the per-shard breakdown summing to the aggregates.
#[test]
fn stats_report_shards_and_pipeline_metrics() {
    let config = ServeConfig {
        writer_shards: 4,
        ..ServeConfig::default()
    };
    let mut server = start(config);
    let mut pipe = PipeClient::connect(server.addr()).unwrap();

    let ids: Vec<u64> = (0..16)
        .map(|i| pipe.submit_insert(&format!("par(s{i}, t{i})")).unwrap())
        .collect();
    for id in ids {
        assert!(pipe.wait_ack(id).unwrap().applied);
    }
    let id = pipe.submit_query("anc(a, Y)").unwrap();
    assert_eq!(pipe.wait_query(id).unwrap().rows.len(), 3);

    let id = pipe.submit_stats().unwrap();
    let stats = pipe.wait_stats(id).unwrap();
    assert_eq!(stats.writer_shards, 4);
    assert_eq!(stats.per_shard.len(), 4);
    assert_eq!(
        stats.per_shard.iter().map(|s| s.index).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    assert_eq!(
        stats.queue_depth,
        stats.per_shard.iter().map(|s| s.queue_depth).sum::<u64>()
    );
    assert_eq!(
        stats.shed_updates,
        stats.per_shard.iter().map(|s| s.shed_updates).sum::<u64>()
    );
    assert_eq!(stats.degraded, 0);
    assert!(
        stats.batch_size_p50 >= 1,
        "requests were decoded, the batch histogram must be non-empty"
    );
    assert_eq!(stats.updates_applied, 16);
    server.shutdown();
}

/// The sharded layout serves the same contents as the single-writer
/// one: read-your-writes on content after every ack, across shards.
#[test]
fn four_shard_server_serves_reads_and_writes() {
    let config = ServeConfig {
        writer_shards: 4,
        ..ServeConfig::default()
    };
    let mut server = start(config);
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 3);
    // `par` facts with distinct key constants still all route to
    // `par`'s home shard; the chain grows observably after each ack.
    for (i, link) in [("d", "e"), ("e", "f"), ("f", "g")].iter().enumerate() {
        let ack = client
            .insert(&format!("par({}, {})", link.0, link.1))
            .unwrap();
        assert!(ack.applied);
        assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 4 + i);
    }
    let ack = client.retract("par(f, g)").unwrap();
    assert!(ack.applied);
    assert_eq!(client.query("anc(a, Y)").unwrap().rows.len(), 5);

    // Distinct bindings may live on distinct shards; both answer.
    assert_eq!(client.query("anc(b, Y)").unwrap().rows.len(), 4);
    let stats = client.stats().unwrap();
    assert_eq!(stats.views, 2);
    server.shutdown();
}
