//! A blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection; every method is a synchronous
//! request/response round trip.  The load generator in `magic-bench` and
//! the consistency suite drive the server exclusively through this type,
//! so it doubles as the protocol's reference implementation.

use crate::protocol::ServerStats;
use magic_datalog::{parse_term, Fact, Value};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server sent something the client cannot parse.
    Protocol(String),
    /// The server answered `ERR <message>`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A query response: the answers plus the snapshot they were read from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// The adorned binding key the serving view is cached under.
    pub key: String,
    /// Version of the snapshot the answers came from.
    pub version: u64,
    /// The answer rows (one value per free variable of the query), in the
    /// server's deterministic (sorted) order.
    pub rows: Vec<Vec<Value>>,
}

/// An update acknowledgment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateAck {
    /// True iff the update changed state (it was not a duplicate insert /
    /// absent retract).
    pub applied: bool,
    /// Version of the first published snapshot containing the update (for
    /// a no-op: the version current when it was processed).
    pub version: u64,
}

/// One protocol connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Issue `QUERY <query>`; `query` uses the source syntax, e.g.
    /// `"anc(john, Y)"`.
    pub fn query(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        self.send(&format!("QUERY {query}"))?;
        let header = self.read_line()?;
        let rest = expect_ok(&header)?;
        // `OK <count> <version> <key>`; the key may contain spaces.
        let mut parts = rest.splitn(3, ' ');
        let count: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?;
        let version: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?;
        let key = parts
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?
            .to_string();
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            let rest = line
                .strip_prefix("ROW")
                .ok_or_else(|| ClientError::Protocol(format!("expected ROW line, got: {line}")))?;
            let mut row = Vec::new();
            if let Some(values) = rest.strip_prefix('\t') {
                for text in values.split('\t') {
                    let value = parse_term(text)
                        .ok()
                        .and_then(|t| t.to_value())
                        .ok_or_else(|| {
                            ClientError::Protocol(format!("unparseable value {text:?}"))
                        })?;
                    row.push(value);
                }
            }
            rows.push(row);
        }
        self.expect_end()?;
        Ok(QueryReply { key, version, rows })
    }

    /// Issue `INSERT <fact>`; `fact` uses the source syntax, e.g.
    /// `"par(john, mary)"`.  Blocks until the update is live.
    pub fn insert(&mut self, fact: &str) -> Result<UpdateAck, ClientError> {
        self.update("INSERT", fact)
    }

    /// Issue `RETRACT <fact>`.  Blocks until the update is live.
    pub fn retract(&mut self, fact: &str) -> Result<UpdateAck, ClientError> {
        self.update("RETRACT", fact)
    }

    /// [`Client::insert`] for an already-built [`Fact`].
    pub fn insert_fact(&mut self, fact: &Fact) -> Result<UpdateAck, ClientError> {
        self.update("INSERT", &fact.to_atom().to_string())
    }

    /// [`Client::retract`] for an already-built [`Fact`].
    pub fn retract_fact(&mut self, fact: &Fact) -> Result<UpdateAck, ClientError> {
        self.update("RETRACT", &fact.to_atom().to_string())
    }

    /// Issue `STATS`.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.send("STATS")?;
        let header = self.read_line()?;
        let rest = expect_ok(&header)?;
        if rest != "stats" {
            return Err(ClientError::Protocol(format!(
                "expected `OK stats`, got: {header}"
            )));
        }
        let mut body = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            body.push(line);
        }
        ServerStats::parse_body(&body).map_err(ClientError::Protocol)
    }

    /// Issue `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        let line = self.read_line()?;
        match expect_ok(&line)? {
            "pong" => Ok(()),
            _ => Err(ClientError::Protocol(format!("expected pong, got: {line}"))),
        }
    }

    /// Issue `QUIT` and consume the goodbye.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT")?;
        let _ = self.read_line()?;
        Ok(())
    }

    /// Issue `SHUTDOWN`: stop the whole server (the owning
    /// [`ServerHandle`](crate::ServerHandle) still joins its threads).
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        let _ = self.read_line()?;
        Ok(())
    }

    fn update(&mut self, verb: &str, fact: &str) -> Result<UpdateAck, ClientError> {
        self.send(&format!("{verb} {fact}"))?;
        let line = self.read_line()?;
        let rest = expect_ok(&line)?;
        let (word, version) = rest
            .split_once(' ')
            .ok_or_else(|| ClientError::Protocol(format!("bad ack: {line}")))?;
        let version: u64 = version
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad ack version: {line}")))?;
        match word {
            "applied" => Ok(UpdateAck {
                applied: true,
                version,
            }),
            "noop" => Ok(UpdateAck {
                applied: false,
                version,
            }),
            _ => Err(ClientError::Protocol(format!("bad ack: {line}"))),
        }
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn expect_end(&mut self) -> Result<(), ClientError> {
        let line = self.read_line()?;
        if line == "END" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected END, got: {line}")))
        }
    }
}

/// Strip the `OK ` prefix or surface the server's `ERR`.
fn expect_ok(line: &str) -> Result<&str, ClientError> {
    if let Some(rest) = line.strip_prefix("OK") {
        return Ok(rest.strip_prefix(' ').unwrap_or(rest));
    }
    if let Some(message) = line.strip_prefix("ERR ") {
        return Err(ClientError::Server(message.to_string()));
    }
    Err(ClientError::Protocol(format!(
        "expected OK or ERR, got: {line}"
    )))
}
