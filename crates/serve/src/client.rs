//! Clients for the wire protocols.
//!
//! Two clients share one error model:
//!
//! * [`Client`] — the line-oriented text protocol.  One connection,
//!   every method a synchronous request/response round trip.  It
//!   doubles as the text protocol's reference implementation.
//! * [`PipeClient`] — the `MGWP01` binary framing.  Requests are
//!   *submitted* (nonblocking, returning a request id) and their
//!   responses *waited on* separately, so many requests ride the wire
//!   concurrently; the server answers in completion order and the
//!   client correlates by id.  This is what the throughput benchmarks
//!   drive the server with — on a loopback connection the synchronous
//!   client pays one full round trip per request, the pipelined client
//!   amortizes it across the whole in-flight window.

use crate::protocol::{op, status, Frame, ServerStats, BINARY_MAGIC, MAX_FRAME};
use magic_datalog::{parse_term, Fact, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Errors a client call can produce.  The overload/degradation refusals
/// (`Busy`, `Timeout`, `Degraded`) are parsed out of the server's
/// structured `ERR` forms so callers can branch on retry semantics
/// instead of string-matching:
///
/// * [`ClientError::Busy`] — **not applied**; retry after
///   `retry_after_ms`.
/// * [`ClientError::Timeout`] — **outcome unknown**; the command is
///   still queued server-side and may yet apply.  Retry only
///   idempotent operations.
/// * [`ClientError::Degraded`] — **not applied**; the server is
///   read-only until its durable path recovers.  Reads still work.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server sent something the client cannot parse.
    Protocol(String),
    /// The server shed the request under overload (`ERR BUSY …`): it
    /// was never applied; retry after the hinted backoff.
    Busy {
        /// Server-suggested minimum wait before retrying, milliseconds.
        retry_after_ms: u64,
        /// The human-readable remainder of the error line.
        message: String,
    },
    /// The writer deadline expired (`ERR TIMEOUT …`): the request may
    /// still apply later — outcome unknown.
    Timeout(String),
    /// The server is in read-only degraded mode (`ERR DEGRADED …`):
    /// the update was refused (never applied); reads still serve.
    Degraded(String),
    /// The server answered `ERR <message>` (any other refusal).
    Server(String),
}

impl ClientError {
    /// True for errors after which a *query* (idempotent read) is safe
    /// and sensible to retry on a fresh connection: transport errors
    /// and both overload refusals.  `Degraded` is excluded — reads are
    /// served even while degraded, so a degraded refusal on a read
    /// path is unexpected and worth surfacing.
    pub fn is_retryable_for_reads(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Busy { .. }
                | ClientError::Timeout(_)
                | ClientError::Protocol(_)
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Busy {
                retry_after_ms,
                message,
            } => write!(f, "server busy (retry after {retry_after_ms}ms): {message}"),
            ClientError::Timeout(m) => write!(f, "server timeout (outcome unknown): {m}"),
            ClientError::Degraded(m) => write!(f, "server degraded (read-only): {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A query response: the answers plus the snapshot they were read from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// The adorned binding key the serving view is cached under.
    pub key: String,
    /// Version of the snapshot the answers came from.
    pub version: u64,
    /// The answer rows (one value per free variable of the query), in the
    /// server's deterministic (sorted) order.
    pub rows: Vec<Vec<Value>>,
}

/// An update acknowledgment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateAck {
    /// True iff the update changed state (it was not a duplicate insert /
    /// absent retract).
    pub applied: bool,
    /// Version of the first published snapshot containing the update (for
    /// a no-op: the version current when it was processed).
    pub version: u64,
}

/// One protocol connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// The server address, kept for [`Client::reconnect`].
    addr: SocketAddr,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            addr,
        })
    }

    /// Connect, retrying with doubling backoff (starting at 10ms,
    /// capped at 500ms per attempt) until a connection succeeds or
    /// `attempts` are exhausted.  Useful against a server that is
    /// restarting, or one whose accept path is being fault-injected
    /// (connections dropped before the handshake).
    pub fn connect_with_backoff(addr: impl ToSocketAddrs, attempts: u32) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let mut delay = Duration::from_millis(10);
        let mut last_err = io::Error::other("no connection attempts made");
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = e,
            }
            if attempt + 1 < attempts.max(1) {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
        }
        Err(last_err)
    }

    /// The server address this client is (or was) connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drop the current connection and dial the same address again,
    /// with backoff.  In-flight request state is abandoned — only call
    /// between round trips.
    pub fn reconnect(&mut self, attempts: u32) -> io::Result<()> {
        let fresh = Client::connect_with_backoff(self.addr, attempts)?;
        *self = fresh;
        Ok(())
    }

    /// [`Client::query`], retrying across reconnects.  Queries are
    /// idempotent, so a retry is always safe; the loop retries on
    /// transport errors, `BUSY` sheds and `TIMEOUT`s (reconnecting
    /// first when the transport broke), and gives up after `attempts`
    /// or on any non-retryable error.
    pub fn query_with_retry(
        &mut self,
        query: &str,
        attempts: u32,
    ) -> Result<QueryReply, ClientError> {
        let mut delay = Duration::from_millis(10);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
            match self.query(query) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable_for_reads() => {
                    // A BUSY shed honors the server's retry hint when
                    // it is longer than our own backoff.
                    if let ClientError::Busy { retry_after_ms, .. } = &e {
                        delay = delay.max(Duration::from_millis(*retry_after_ms));
                    }
                    // Transport gone (or response stream torn): the
                    // connection is unusable; re-dial before retrying.
                    if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
                        let _ = self.reconnect(3);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Protocol("no query attempts made".into())))
    }

    /// Issue `QUERY <query>`; `query` uses the source syntax, e.g.
    /// `"anc(john, Y)"`.
    pub fn query(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        self.send(&format!("QUERY {query}"))?;
        let header = self.read_line()?;
        let rest = expect_ok(&header)?;
        // `OK <count> <version> <key>`; the key may contain spaces.
        let mut parts = rest.splitn(3, ' ');
        let count: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?;
        let version: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?;
        let key = parts
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?
            .to_string();
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            let rest = line
                .strip_prefix("ROW")
                .ok_or_else(|| ClientError::Protocol(format!("expected ROW line, got: {line}")))?;
            let mut row = Vec::new();
            if let Some(values) = rest.strip_prefix('\t') {
                for text in values.split('\t') {
                    let value = parse_term(text)
                        .ok()
                        .and_then(|t| t.to_value())
                        .ok_or_else(|| {
                            ClientError::Protocol(format!("unparseable value {text:?}"))
                        })?;
                    row.push(value);
                }
            }
            rows.push(row);
        }
        self.expect_end()?;
        Ok(QueryReply { key, version, rows })
    }

    /// Issue `INSERT <fact>`; `fact` uses the source syntax, e.g.
    /// `"par(john, mary)"`.  Blocks until the update is live.
    pub fn insert(&mut self, fact: &str) -> Result<UpdateAck, ClientError> {
        self.update("INSERT", fact)
    }

    /// Issue `RETRACT <fact>`.  Blocks until the update is live.
    pub fn retract(&mut self, fact: &str) -> Result<UpdateAck, ClientError> {
        self.update("RETRACT", fact)
    }

    /// [`Client::insert`] for an already-built [`Fact`].
    pub fn insert_fact(&mut self, fact: &Fact) -> Result<UpdateAck, ClientError> {
        self.update("INSERT", &fact.to_atom().to_string())
    }

    /// [`Client::retract`] for an already-built [`Fact`].
    pub fn retract_fact(&mut self, fact: &Fact) -> Result<UpdateAck, ClientError> {
        self.update("RETRACT", &fact.to_atom().to_string())
    }

    /// Issue `STATS`.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.send("STATS")?;
        let header = self.read_line()?;
        let rest = expect_ok(&header)?;
        if rest != "stats" {
            return Err(ClientError::Protocol(format!(
                "expected `OK stats`, got: {header}"
            )));
        }
        let mut body = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            body.push(line);
        }
        ServerStats::parse_body(&body).map_err(ClientError::Protocol)
    }

    /// Issue `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        let line = self.read_line()?;
        match expect_ok(&line)? {
            "pong" => Ok(()),
            _ => Err(ClientError::Protocol(format!("expected pong, got: {line}"))),
        }
    }

    /// Issue `QUIT` and consume the goodbye.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT")?;
        let _ = self.read_line()?;
        Ok(())
    }

    /// Issue `SHUTDOWN`: stop the whole server (the owning
    /// [`ServerHandle`](crate::ServerHandle) still joins its threads).
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        let _ = self.read_line()?;
        Ok(())
    }

    fn update(&mut self, verb: &str, fact: &str) -> Result<UpdateAck, ClientError> {
        self.send(&format!("{verb} {fact}"))?;
        let line = self.read_line()?;
        parse_ack_line(&line)
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn expect_end(&mut self) -> Result<(), ClientError> {
        let line = self.read_line()?;
        if line == "END" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected END, got: {line}")))
        }
    }
}

/// Strip the `OK ` prefix or surface the server's `ERR`, classifying
/// the structured refusals (`BUSY`/`TIMEOUT`/`DEGRADED`) into their
/// own variants.
fn expect_ok(line: &str) -> Result<&str, ClientError> {
    if let Some(rest) = line.strip_prefix("OK") {
        return Ok(rest.strip_prefix(' ').unwrap_or(rest));
    }
    if let Some(message) = line.strip_prefix("ERR ") {
        return Err(classify_server_error(message));
    }
    Err(ClientError::Protocol(format!(
        "expected OK or ERR, got: {line}"
    )))
}

/// Map the message after `ERR ` to a [`ClientError`] variant by its
/// leading structured token (falling back to [`ClientError::Server`]).
fn classify_server_error(message: &str) -> ClientError {
    if let Some(rest) = message.strip_prefix("BUSY ") {
        // `BUSY <retry-after-ms> <detail>`; a malformed hint falls
        // back to a conservative default rather than a parse error.
        let (hint, detail) = rest.split_once(' ').unwrap_or((rest, ""));
        return ClientError::Busy {
            retry_after_ms: hint.parse().unwrap_or(100),
            message: detail.to_string(),
        };
    }
    if let Some(rest) = message.strip_prefix("TIMEOUT ") {
        return ClientError::Timeout(rest.to_string());
    }
    if let Some(rest) = message.strip_prefix("DEGRADED ") {
        return ClientError::Degraded(rest.to_string());
    }
    ClientError::Server(message.to_string())
}

/// Parse an update acknowledgment line (`OK applied <v>` / `OK noop <v>`).
fn parse_ack_line(line: &str) -> Result<UpdateAck, ClientError> {
    let rest = expect_ok(line)?;
    let (word, version) = rest
        .split_once(' ')
        .ok_or_else(|| ClientError::Protocol(format!("bad ack: {line}")))?;
    let version: u64 = version
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad ack version: {line}")))?;
    match word {
        "applied" => Ok(UpdateAck {
            applied: true,
            version,
        }),
        "noop" => Ok(UpdateAck {
            applied: false,
            version,
        }),
        _ => Err(ClientError::Protocol(format!("bad ack: {line}"))),
    }
}

/// Parse a full query response body (`OK <count> <version> <key>`,
/// `ROW` lines, `END`) out of already-received lines.
fn parse_query_lines(lines: &[&str]) -> Result<QueryReply, ClientError> {
    let header = *lines
        .first()
        .ok_or_else(|| ClientError::Protocol("empty query response".into()))?;
    let rest = expect_ok(header)?;
    let mut parts = rest.splitn(3, ' ');
    let count: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?;
    let version: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?;
    let key = parts
        .next()
        .ok_or_else(|| ClientError::Protocol(format!("bad query header: {header}")))?
        .to_string();
    if lines.len() != count + 2 || lines[count + 1] != "END" {
        return Err(ClientError::Protocol(format!(
            "query response advertised {count} rows but carried {} lines",
            lines.len()
        )));
    }
    let mut rows = Vec::with_capacity(count);
    for line in &lines[1..=count] {
        let rest = line
            .strip_prefix("ROW")
            .ok_or_else(|| ClientError::Protocol(format!("expected ROW line, got: {line}")))?;
        let mut row = Vec::new();
        if let Some(values) = rest.strip_prefix('\t') {
            for text in values.split('\t') {
                let value = parse_term(text)
                    .ok()
                    .and_then(|t| t.to_value())
                    .ok_or_else(|| ClientError::Protocol(format!("unparseable value {text:?}")))?;
                row.push(value);
            }
        }
        rows.push(row);
    }
    Ok(QueryReply { key, version, rows })
}

/// One completed binary response, parked until its id is waited on.
struct Completed {
    tag: u8,
    body: Vec<u8>,
    at: Instant,
}

/// A pipelined client for the `MGWP01` binary framing.
///
/// Requests are **submitted** without waiting (`submit_query`,
/// `submit_insert`, …), each returning the request id the server will
/// tag its response with; responses are claimed later with the
/// matching `wait_*` call.  Any number of requests may be in flight,
/// the server answers in completion order, and responses that arrive
/// while waiting on a different id are parked until claimed.
///
/// A transport failure poisons the connection: the *first* error
/// surfaces as [`ClientError::Io`], and every subsequent submit or
/// wait — including waits for ids that were in flight when the
/// connection died — returns an error immediately instead of hanging.
/// [`PipeClient::reconnect`] dials the same address again (abandoning
/// all in-flight state) and [`PipeClient::query_with_retry`] wraps the
/// submit/wait/reconnect loop for idempotent reads.
pub struct PipeClient {
    stream: TcpStream,
    addr: SocketAddr,
    next_id: u64,
    inbuf: Vec<u8>,
    /// Ids submitted and not yet claimed by a `wait_*` call.
    pending: HashSet<u64>,
    /// Responses received for ids not yet waited on.
    completed: HashMap<u64, Completed>,
    /// Set on the first transport failure; poisons every later call.
    broken: Option<String>,
}

impl PipeClient {
    /// Connect and send the `MGWP01` preamble that selects the binary
    /// protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipeClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = PipeClient {
            stream,
            addr,
            next_id: 0,
            inbuf: Vec::new(),
            pending: HashSet::new(),
            completed: HashMap::new(),
            broken: None,
        };
        client.stream.write_all(BINARY_MAGIC)?;
        Ok(client)
    }

    /// [`PipeClient::connect`], retrying with doubling backoff
    /// (10ms..500ms per attempt) until a connection succeeds or
    /// `attempts` are exhausted.
    pub fn connect_with_backoff(addr: impl ToSocketAddrs, attempts: u32) -> io::Result<PipeClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let mut delay = Duration::from_millis(10);
        let mut last_err = io::Error::other("no connection attempts made");
        for attempt in 0..attempts.max(1) {
            match PipeClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = e,
            }
            if attempt + 1 < attempts.max(1) {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
        }
        Err(last_err)
    }

    /// The server address this client is (or was) connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of submitted requests whose responses have not been
    /// claimed yet (parked responses count until waited on).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Drop the connection and dial the same address again with
    /// backoff.  **All in-flight state is abandoned**: parked
    /// responses are discarded and waits for pre-reconnect ids will
    /// error — only reconnect once every outstanding id is resolved or
    /// written off.
    pub fn reconnect(&mut self, attempts: u32) -> io::Result<()> {
        let fresh = PipeClient::connect_with_backoff(self.addr, attempts)?;
        let next_id = self.next_id;
        *self = fresh;
        // Keep ids unique across the reconnect so a stale id can never
        // be confused with a fresh submission's.
        self.next_id = next_id;
        Ok(())
    }

    /// Submit `QUERY <query>` (source syntax, e.g. `"anc(john, Y)"`);
    /// claim the response later with [`PipeClient::wait_query`].
    pub fn submit_query(&mut self, query: &str) -> Result<u64, ClientError> {
        self.submit(op::QUERY, query.as_bytes())
    }

    /// Submit `INSERT <fact>`; claim with [`PipeClient::wait_ack`].
    pub fn submit_insert(&mut self, fact: &str) -> Result<u64, ClientError> {
        self.submit(op::INSERT, fact.as_bytes())
    }

    /// Submit `RETRACT <fact>`; claim with [`PipeClient::wait_ack`].
    pub fn submit_retract(&mut self, fact: &str) -> Result<u64, ClientError> {
        self.submit(op::RETRACT, fact.as_bytes())
    }

    /// Submit `STATS`; claim with [`PipeClient::wait_stats`].
    pub fn submit_stats(&mut self) -> Result<u64, ClientError> {
        self.submit(op::STATS, b"")
    }

    /// Submit `PING`; claim with [`PipeClient::wait_pong`].
    pub fn submit_ping(&mut self) -> Result<u64, ClientError> {
        self.submit(op::PING, b"")
    }

    /// Wait for the response to a [`PipeClient::submit_query`] id.
    pub fn wait_query(&mut self, id: u64) -> Result<QueryReply, ClientError> {
        self.wait_query_timed(id).map(|(reply, _)| reply)
    }

    /// [`PipeClient::wait_query`], also returning the instant the
    /// response frame was decoded off the socket — the timestamp
    /// latency benchmarks difference against their submit time.
    pub fn wait_query_timed(&mut self, id: u64) -> Result<(QueryReply, Instant), ClientError> {
        let done = self.wait_raw(id)?;
        let body = completed_text(&done)?;
        let lines: Vec<&str> = body.lines().collect();
        Ok((parse_query_lines(&lines)?, done.at))
    }

    /// Claim the raw response body for `id` without interpreting it
    /// beyond the status tag, returning the payload bytes and the
    /// instant the frame was decoded off the socket: an `OK` yields
    /// the full text-protocol response verbatim, an `ERR` classifies
    /// into the structured [`ClientError`] variants.  The zero-parse
    /// consumption path for proxies and load harnesses that relay,
    /// count or discard bodies rather than materialize every row.
    pub fn wait_response_timed(&mut self, id: u64) -> Result<(Vec<u8>, Instant), ClientError> {
        let done = self.wait_raw(id)?;
        match done.tag {
            status::OK => Ok((done.body, done.at)),
            status::ERR => Err(classify_server_error(&String::from_utf8_lossy(&done.body))),
            other => Err(ClientError::Protocol(format!(
                "unknown response status {other}"
            ))),
        }
    }

    /// Wait for the acknowledgment of a submitted update.
    pub fn wait_ack(&mut self, id: u64) -> Result<UpdateAck, ClientError> {
        self.wait_ack_timed(id).map(|(ack, _)| ack)
    }

    /// [`PipeClient::wait_ack`] with the response decode instant.
    pub fn wait_ack_timed(&mut self, id: u64) -> Result<(UpdateAck, Instant), ClientError> {
        let done = self.wait_raw(id)?;
        let body = completed_text(&done)?;
        let line = body.lines().next().unwrap_or("");
        Ok((parse_ack_line(line)?, done.at))
    }

    /// Wait for the response to a [`PipeClient::submit_stats`] id.
    pub fn wait_stats(&mut self, id: u64) -> Result<ServerStats, ClientError> {
        let done = self.wait_raw(id)?;
        let body = completed_text(&done)?;
        let mut lines = body.lines();
        match lines.next() {
            Some("OK stats") => {}
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected `OK stats`, got: {other:?}"
                )))
            }
        }
        let body_lines: Vec<String> = lines
            .take_while(|line| *line != "END")
            .map(str::to_string)
            .collect();
        ServerStats::parse_body(&body_lines).map_err(ClientError::Protocol)
    }

    /// Wait for the pong of a [`PipeClient::submit_ping`] id.
    pub fn wait_pong(&mut self, id: u64) -> Result<(), ClientError> {
        let done = self.wait_raw(id)?;
        let body = completed_text(&done)?;
        match body.lines().next() {
            Some("OK pong") => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got: {other:?}"
            ))),
        }
    }

    /// One-shot pipelined read with retries: submit, wait, and on a
    /// retryable failure reconnect and try again — the same loop (and
    /// the same `BUSY`-hint handling) as [`Client::query_with_retry`],
    /// over the binary protocol.
    pub fn query_with_retry(
        &mut self,
        query: &str,
        attempts: u32,
    ) -> Result<QueryReply, ClientError> {
        let mut delay = Duration::from_millis(10);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
            let result = self.submit_query(query).and_then(|id| self.wait_query(id));
            match result {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable_for_reads() => {
                    if let ClientError::Busy { retry_after_ms, .. } = &e {
                        delay = delay.max(Duration::from_millis(*retry_after_ms));
                    }
                    if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
                        let _ = self.reconnect(3);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Protocol("no query attempts made".into())))
    }

    /// Encode and write one request frame; nonblocking in the protocol
    /// sense (no response is read), blocking in the socket sense (the
    /// kernel send buffer accepts the bytes before this returns).
    fn submit(&mut self, tag: u8, body: &[u8]) -> Result<u64, ClientError> {
        if let Some(reason) = &self.broken {
            return Err(broken_error(reason));
        }
        if body.len() + 9 > MAX_FRAME {
            return Err(ClientError::Protocol(format!(
                "request body of {} bytes exceeds the frame limit",
                body.len()
            )));
        }
        self.next_id += 1;
        let id = self.next_id;
        let frame = Frame {
            req_id: id,
            tag,
            body: body.to_vec(),
        };
        if let Err(e) = self.stream.write_all(&frame.encode()) {
            self.broken = Some(e.to_string());
            return Err(ClientError::Io(e));
        }
        self.pending.insert(id);
        Ok(id)
    }

    /// Read frames off the socket until `id`'s response is in hand
    /// (parking responses for other ids as they arrive).
    fn wait_raw(&mut self, id: u64) -> Result<Completed, ClientError> {
        loop {
            if let Some(done) = self.completed.remove(&id) {
                self.pending.remove(&id);
                return Ok(done);
            }
            if !self.pending.contains(&id) {
                return Err(ClientError::Protocol(format!(
                    "request id {id} was never submitted (or was already claimed)"
                )));
            }
            if let Some(reason) = self.broken.clone() {
                self.pending.remove(&id);
                return Err(broken_error(&reason));
            }
            // Drain every complete frame already buffered before
            // touching the socket again.
            let mut decoded_any = false;
            loop {
                match Frame::decode(&self.inbuf) {
                    Ok(Some((frame, used))) => {
                        self.inbuf.drain(..used);
                        self.completed.insert(
                            frame.req_id,
                            Completed {
                                tag: frame.tag,
                                body: frame.body,
                                at: Instant::now(),
                            },
                        );
                        decoded_any = true;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        self.broken = Some(format!("response framing broke: {e}"));
                        break;
                    }
                }
            }
            if decoded_any || self.broken.is_some() {
                continue;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.broken = Some("server closed the connection".into());
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.broken = Some(e.to_string());
                }
            }
        }
    }
}

/// The error every call on a poisoned [`PipeClient`] returns.
fn broken_error(reason: &str) -> ClientError {
    ClientError::Io(io::Error::other(format!(
        "pipelined connection is broken: {reason}"
    )))
}

/// Decode a completed response: an `ERR` status classifies into the
/// structured [`ClientError`] variants, an `OK` status yields the
/// text-protocol response body.
fn completed_text(done: &Completed) -> Result<String, ClientError> {
    let body = String::from_utf8_lossy(&done.body).into_owned();
    match done.tag {
        status::OK => Ok(body),
        status::ERR => Err(classify_server_error(&body)),
        other => Err(ClientError::Protocol(format!(
            "unknown response status {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_errors_classify() {
        match classify_server_error("BUSY 100 writer queue is at capacity (32)") {
            ClientError::Busy {
                retry_after_ms,
                message,
            } => {
                assert_eq!(retry_after_ms, 100);
                assert!(message.contains("capacity"));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        assert!(matches!(
            classify_server_error("TIMEOUT writer did not respond within 50ms; ..."),
            ClientError::Timeout(_)
        ));
        assert!(matches!(
            classify_server_error("DEGRADED read-only: the durable path is failing"),
            ClientError::Degraded(_)
        ));
        assert!(matches!(
            classify_server_error("arity mismatch: par is stored with arity 2"),
            ClientError::Server(_)
        ));
        assert!(!ClientError::Degraded("x".into()).is_retryable_for_reads());
        assert!(ClientError::Timeout("x".into()).is_retryable_for_reads());
    }
}
