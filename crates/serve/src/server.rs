//! The server: thread-per-connection readers over incrementally
//! published copy-on-write view snapshots, one maintenance writer.
//!
//! # Concurrency model
//!
//! * **Readers never block on maintenance.**  The writer keeps one frozen
//!   [`ViewSnapshot`] per cached binding and publishes the set behind an
//!   immutable [`Arc`] after every applied batch; a connection thread
//!   answering a query takes the published `Arc` (one brief mutex lock to
//!   clone the pointer, never held across any evaluation) and reads
//!   answers out of the frozen snapshot for its key.  Snapshots are
//!   copy-on-write database clones (pure pointer bumps — see
//!   [`magic_storage::cow_clones`]), so a publish re-freezes **only the
//!   views the batch changed** and costs O(changed views), not O(catalog):
//!   unchanged bindings keep riding the same `Arc` from publish to
//!   publish, however many views are cached.
//! * **Writes are serialized.**  `INSERT`/`RETRACT` requests are enqueued
//!   to the single writer thread, which drains its queue in batches
//!   (coalescing consecutive insertions into one fixpoint re-entry per
//!   view via [`ViewCatalog::apply_all`]), applies them to the base
//!   database and every cached view, re-snapshots the changed views,
//!   bumps the version and publishes.  The requesting connection is only
//!   acknowledged *after* the snapshot containing its update is
//!   published, so a client that gets `OK applied <v>` observes its own
//!   write in any snapshot with version `>= v`.
//! * **Unseen bindings materialize on demand.**  A query whose adorned
//!   binding key is not yet cached is routed through the writer (which
//!   owns the catalog and the authoritative base database), planned,
//!   materialized, published, and then answered from the fresh snapshot.
//!   Repeated queries with a known binding never touch the writer; the
//!   query-text → key translation is memoized per server.
//!
//! * **Durability is optional and writer-owned.**  With
//!   [`ServeConfig::durability`] set, the writer appends every
//!   state-changing batch to a [`magic_durable`] write-ahead log
//!   *before* publishing the snapshot that contains it — so `OK
//!   applied` means *logged and published* — and checkpoints the whole
//!   base database on a configured cadence.  Startup then recovers:
//!   checkpoint load, view re-materialization, WAL-tail replay, torn
//!   final frame truncated (it was never acked).  Readers are
//!   unaffected; the log lives entirely on the writer thread.
//!
//! * **Overload sheds, it never queues without bound.**  The writer
//!   queue carries an atomic depth gauge; once it reaches
//!   [`ServeConfig::max_queue_depth`], new updates are refused up
//!   front with `ERR BUSY <retry-after-ms> …` (definitely not
//!   applied), and every writer round-trip is bounded by
//!   [`ServeConfig::writer_deadline`] (`ERR TIMEOUT …` = outcome
//!   unknown, the command may still apply).  Reads are never shed.
//!
//! * **Durable failures degrade, they don't kill.**  When a WAL append
//!   or checkpoint fails, the writer rolls the un-logged batch back
//!   out of the base database, refuses the batch's acks with `ERR
//!   DEGRADED …`, and flips into read-only degraded mode: reads keep
//!   serving the last consistent snapshot while a background probe
//!   retries the durable path on capped exponential backoff
//!   (25ms → 2s) and clears the flag on success.  `STATS` surfaces
//!   the whole story (`queue_depth`, `shed_updates`,
//!   `deadline_misses`, `degraded`, `degraded_entered`).
//!
//! Every published snapshot is a program fixpoint over a prefix of the
//! applied update sequence, so responses are transactionally consistent:
//! a reader can never observe half of a batch (no torn reads) — the
//! property `tests/serve_consistency.rs` checks against a from-scratch
//! oracle, and `crates/serve/tests/durable_restart.rs` extends to
//! recovered state after a mid-stream `SIGKILL`.

use crate::protocol::{
    parse_request, render_ack, render_answers, render_error, Request, ServerStats, ViewStats,
};
use magic_core::planner::Strategy;
use magic_datalog::{PredName, Program, Query, Value};
use magic_durable::{ConnFault, DurableConfig, DurableStore, FaultPlan};
use magic_engine::{EvalStats, Limits};
use magic_incr::{Update, ViewCatalog, ViewSnapshot};
use magic_storage::Database;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Retry hint, in milliseconds, carried by every `BUSY` shed.  A
/// constant (rather than a measured estimate) keeps the wire contract
/// simple; clients treat it as a floor for their own backoff.
const BUSY_RETRY_AFTER_MS: u64 = 100;

/// First retry delay after entering degraded mode; doubles per failed
/// probe up to [`PROBE_BACKOFF_MAX`].
const PROBE_BACKOFF_MIN: Duration = Duration::from_millis(25);

/// Cap on the degraded-mode probe backoff: even a long outage is
/// re-checked at least every couple of seconds.
const PROBE_BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Rewrite strategy for on-demand view materialization.
    pub strategy: Strategy,
    /// Evaluation limits applied to every view.
    pub limits: Limits,
    /// Maximum updates coalesced into one maintenance batch (and thus one
    /// published snapshot).
    pub batch_max: usize,
    /// Poll granularity of connection reads: how long a blocked reader
    /// waits before re-checking the shutdown flag.
    pub read_timeout: Duration,
    /// Cap on cached views (0 = unbounded): past it, the catalog evicts
    /// the least-recently-queried binding, which then re-materializes on
    /// next sight.  See [`ViewCatalog::with_max_views`].
    pub max_views: usize,
    /// Idle lifetime of cached views (zero = no TTL): a binding no
    /// query has touched for this long is evicted by the writer's
    /// maintenance tick and re-materializes on next sight.  Composes
    /// with `max_views` — TTL bounds staleness in *time*, the cap in
    /// *count*.  See [`ViewCatalog::with_view_ttl`].
    pub view_ttl: Duration,
    /// Crash safety (off by default): when set, the writer appends
    /// every acked batch to a write-ahead log in this store directory
    /// and checkpoints on the configured cadence, and
    /// [`Server::start`] recovers prior state from that directory
    /// before accepting connections.
    pub durability: Option<DurableConfig>,
    /// Overload bound on the writer queue (0 = unbounded).  When the
    /// number of in-flight writer commands reaches this cap, new
    /// updates are *shed* before they enqueue: the client gets an
    /// `ERR BUSY <retry-after-ms> …` line and the fact is never
    /// applied or logged.  Reads and view materializations are never
    /// shed — they keep serving from the published snapshot.
    pub max_queue_depth: usize,
    /// Deadline on every writer round-trip — update acks and on-demand
    /// materializations (zero = wait forever).  A round-trip that
    /// exceeds it returns `ERR TIMEOUT …` to the client; the command
    /// stays queued and **may still apply later**, so a timed-out
    /// update has *unknown* outcome (unlike a `BUSY` shed, which
    /// definitely did not apply).
    pub writer_deadline: Duration,
    /// Bound on blocking response writes (zero = unbounded).  A client
    /// that stops reading while a large response fills the kernel send
    /// buffer must not pin a connection thread forever; on expiry the
    /// response is torn mid-write and the connection closes.  The
    /// default (5s) is generous — it exists to bound shutdown, not to
    /// police slow links.
    pub write_timeout: Duration,
    /// Deterministic fault injection (testing only; `None` in
    /// production).  When unset, the `MAGIC_FAULTS` environment
    /// variable is consulted at startup — see
    /// [`magic_durable::faults`].  The plan is shared between the
    /// durable store (fsync/append/rename faults) and the accept loop
    /// (connection stall/drop faults).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            strategy: Strategy::MagicSets,
            limits: Limits::default(),
            batch_max: 256,
            read_timeout: Duration::from_millis(50),
            max_views: 0,
            view_ttl: Duration::ZERO,
            durability: None,
            max_queue_depth: 1024,
            writer_deadline: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            faults: None,
        }
    }
}

/// An immutable published state: one frozen [`ViewSnapshot`] per cached
/// binding, at one version.  Unchanged entries share their `Arc` with the
/// previous snapshot — republishing is O(changed views).
struct Snapshot {
    version: u64,
    views: BTreeMap<String, Arc<ViewSnapshot>>,
}

/// An update acknowledgment channel: Ok((state-changed, published
/// version)) or the rejection message.
type UpdateReply = Sender<Result<(bool, u64), String>>;

/// Commands on the maintenance queue.
enum WriterCmd {
    /// Apply one update; acknowledge with (state-changed, published
    /// version) once the containing snapshot is live.
    Update { update: Update, reply: UpdateReply },
    /// Plan and materialize a view for `query`; acknowledge with the
    /// binding key once the snapshot containing it is live.
    Materialize {
        query: Query,
        reply: Sender<Result<String, String>>,
    },
    /// Stop the writer thread.
    Shutdown,
}

/// State shared between the accept loop, connection threads, the writer
/// and the handle.
struct Shared {
    program: Program,
    derived: BTreeSet<PredName>,
    published: Mutex<Arc<Snapshot>>,
    writer_tx: Sender<WriterCmd>,
    /// Memoized query-text → binding-key translation (one plan per
    /// distinct query text, server-wide).
    key_cache: Mutex<HashMap<String, String>>,
    shutdown: AtomicBool,
    queries_served: AtomicU64,
    updates_applied: AtomicU64,
    connections: AtomicU64,
    /// Views evicted because their maintenance failed (see
    /// [`magic_incr::ViewCatalog::apply_all`]) or because they idled
    /// past the view TTL; surfaced in `STATS`.
    views_evicted: AtomicU64,
    /// Mirror of [`DurableStore::wal_bytes`], maintained by the writer
    /// so `STATS` never has to cross into the writer thread.
    wal_bytes: AtomicU64,
    /// Mirror of [`DurableStore::last_checkpoint_seq`].
    last_checkpoint_seq: AtomicU64,
    /// Response writes that failed (client gone mid-response); the
    /// connection is closed and the failure counted, never ignored.
    write_errors: AtomicU64,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Overload knobs (see [`ServeConfig`]).
    max_queue_depth: usize,
    writer_deadline: Duration,
    /// Commands currently in flight to the writer (enqueued but not
    /// yet popped).  Incremented *before* the channel send so the
    /// gauge can only over-count, never under-count — the shed check
    /// errs toward shedding at the boundary rather than letting the
    /// queue grow past its cap.
    queue_depth: AtomicU64,
    /// Updates refused with `BUSY` because the queue was at capacity.
    shed_updates: AtomicU64,
    /// Writer round-trips that exceeded [`ServeConfig::writer_deadline`].
    deadline_misses: AtomicU64,
    /// Read-only degraded mode: set by the writer when the durable
    /// path (WAL append or checkpoint) fails, cleared when a
    /// background probe proves it healthy again.  While set, updates
    /// are refused with `DEGRADED`; reads keep serving the last
    /// consistent snapshot.
    degraded: AtomicBool,
    /// Times the server has *entered* degraded mode (lifetime count).
    degraded_entered: AtomicU64,
    /// Shared fault plan for the accept loop's connection faults.
    faults: Option<Arc<FaultPlan>>,
}

impl Shared {
    fn snapshot(&self) -> Arc<Snapshot> {
        self.published.lock().expect("publish lock").clone()
    }

    fn publish(&self, snapshot: Snapshot) {
        *self.published.lock().expect("publish lock") = Arc::new(snapshot);
    }

    /// Round-trip a command through the writer thread, under the
    /// configured deadline.  On expiry the command is *not* revoked —
    /// it stays queued and may apply later — so a `TIMEOUT` error
    /// means "outcome unknown", and the writer's eventual reply lands
    /// on a disconnected channel (harmless: its send is ignored).
    fn writer_call<T>(
        &self,
        make: impl FnOnce(Sender<Result<T, String>>) -> WriterCmd,
    ) -> Result<T, String> {
        let (tx, rx) = channel();
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        if self.writer_tx.send(make(tx)).is_err() {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Err("server is shutting down".to_string());
        }
        if self.writer_deadline.is_zero() {
            rx.recv()
                .map_err(|_| "server is shutting down".to_string())?
        } else {
            match rx.recv_timeout(self.writer_deadline) {
                Ok(result) => result,
                Err(RecvTimeoutError::Disconnected) => Err("server is shutting down".to_string()),
                Err(RecvTimeoutError::Timeout) => {
                    self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    Err(format!(
                        "TIMEOUT writer did not respond within {}ms; the command is \
                         still queued and may yet apply",
                        self.writer_deadline.as_millis()
                    ))
                }
            }
        }
    }

    /// Book-keeping for a command the writer popped off its queue:
    /// every counted (client-originated) command decrements the depth
    /// gauge exactly once, at pop time.  `Shutdown` is sent outside
    /// [`Shared::writer_call`] and is never counted.
    fn note_pop(&self, cmd: &WriterCmd) {
        if matches!(
            cmd,
            WriterCmd::Update { .. } | WriterCmd::Materialize { .. }
        ) {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// A running server.  Dropping the handle shuts the server down and joins
/// every thread; [`ServerHandle::shutdown`] does the same explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    writer_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `program` over `edb` until the returned handle is shut down.
    ///
    /// The catalog starts empty: views materialize on demand as queries
    /// arrive, each keyed by its adorned binding.  `edb` becomes the
    /// authoritative base-fact database, maintained by every acknowledged
    /// update and used to materialize late-arriving bindings.
    ///
    /// With [`ServeConfig::durability`] set, startup first runs
    /// recovery against the store directory: the newest checkpoint is
    /// loaded, its exported view bindings re-materialize, and the WAL
    /// tail replays through maintenance, all *before* the listener
    /// accepts its first connection.  On a brand-new store `edb` is
    /// the seed and is checkpointed immediately; on an existing store
    /// the disk state wins and `edb` is ignored.
    pub fn start(
        program: Program,
        edb: Database,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let catalog = ViewCatalog::new(config.strategy)
            .with_limits(config.limits)
            .with_max_views(config.max_views)
            .with_view_ttl(config.view_ttl);
        let durable_err = |e: magic_durable::DurableError| io::Error::other(e.to_string());
        // One fault plan instance for the whole server: explicit config
        // wins, else `MAGIC_FAULTS`.  Resolving it here (rather than
        // letting the store read the environment on its own) keeps the
        // durable store and the accept loop sharing the *same*
        // occurrence counters, so a spec like `conn-drop=2` counts
        // connections globally, not per subsystem.
        let faults = config.faults.clone().or_else(FaultPlan::from_env);
        let (catalog, edb, store) = match &config.durability {
            Some(durable) => {
                let mut durable = durable.clone();
                if durable.faults.is_none() {
                    durable.faults = faults.clone();
                }
                let mut store = DurableStore::open(&durable).map_err(durable_err)?;
                let recovered = store
                    .recover(&program, catalog, &edb)
                    .map_err(durable_err)?;
                (recovered.catalog, recovered.db, Some(store))
            }
            None => (catalog, edb, None),
        };
        let (writer_tx, writer_rx) = channel();
        let shared = Arc::new(Shared {
            derived: program.derived_preds(),
            program,
            published: Mutex::new(Arc::new(Snapshot {
                version: 0,
                views: BTreeMap::new(),
            })),
            writer_tx,
            key_cache: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            queries_served: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            views_evicted: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(store.as_ref().map_or(0, DurableStore::wal_bytes)),
            last_checkpoint_seq: AtomicU64::new(
                store.as_ref().map_or(0, DurableStore::last_checkpoint_seq),
            ),
            write_errors: AtomicU64::new(0),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_queue_depth: config.max_queue_depth,
            writer_deadline: config.writer_deadline,
            queue_depth: AtomicU64::new(0),
            shed_updates: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            degraded_entered: AtomicU64::new(0),
            faults,
        });

        let writer_shared = Arc::clone(&shared);
        let view_ttl = (config.view_ttl > Duration::ZERO).then_some(config.view_ttl);
        let writer_thread = std::thread::Builder::new()
            .name("magic-serve-writer".into())
            .spawn(move || {
                writer_loop(
                    writer_shared,
                    writer_rx,
                    catalog,
                    edb,
                    config.batch_max,
                    store,
                    view_ttl,
                )
            })?;

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("magic-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_conns))?;

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            writer_thread: Some(writer_thread),
            conn_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far (across all connections).
    pub fn queries_served(&self) -> u64 {
        self.shared.queries_served.load(Ordering::Relaxed)
    }

    /// State-changing updates applied and published so far.
    pub fn updates_applied(&self) -> u64 {
        self.shared.updates_applied.load(Ordering::Relaxed)
    }

    /// Stop accepting, stop the writer, wake blocked readers and join
    /// every thread.  Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Stop the writer (ignore errors: it may already be gone).
        let _ = self.shared.writer_tx.send(WriterCmd::Shutdown);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.writer_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conn_threads.lock().expect("conn list lock"));
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Which durable operation failed — and therefore what the degraded-mode
/// probe retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DegradedCause {
    /// A WAL append or fsync failed; the probe heals the log tail and
    /// proves an empty append round-trips.
    Wal,
    /// A checkpoint failed (acked state is still WAL-safe); the probe
    /// retries the checkpoint.
    Checkpoint,
}

impl DegradedCause {
    fn noun(self) -> &'static str {
        match self {
            DegradedCause::Wal => "WAL append",
            DegradedCause::Checkpoint => "checkpoint",
        }
    }
}

/// Flip the server into read-only degraded mode (idempotent on the
/// counters: re-entering while already degraded only updates the cause).
fn enter_degraded(
    shared: &Shared,
    degraded_cause: &mut Option<DegradedCause>,
    probe_backoff: &mut Duration,
    next_probe: &mut Option<Instant>,
    cause: DegradedCause,
) {
    if degraded_cause.is_none() {
        shared.degraded.store(true, Ordering::Release);
        shared.degraded_entered.fetch_add(1, Ordering::Relaxed);
    }
    *degraded_cause = Some(cause);
    *probe_backoff = PROBE_BACKOFF_MIN;
    *next_probe = Some(Instant::now() + *probe_backoff);
}

/// The maintenance writer: drains the queue in batches, applies updates
/// to the authoritative base database and every cached view, materializes
/// late bindings, and publishes a fresh snapshot after every change.
///
/// Publishing is incremental: `published` mirrors the catalog as a map of
/// frozen per-view snapshots, and each publish cycle replaces only the
/// entries [`ViewCatalog::apply_all`] reported changed (plus drops for
/// evicted bindings and inserts for fresh materializations).  The map
/// clone handed to readers bumps one `Arc` per view; no view data is
/// copied for views the batch did not move.
fn writer_loop(
    shared: Arc<Shared>,
    rx: Receiver<WriterCmd>,
    mut catalog: ViewCatalog,
    mut base_db: Database,
    batch_max: usize,
    mut store: Option<DurableStore>,
    view_ttl: Option<Duration>,
) {
    let mut version: u64 = 0;
    let mut published: BTreeMap<String, Arc<ViewSnapshot>> = BTreeMap::new();
    // Recovery may have handed us a warm catalog (re-materialized from
    // a checkpoint's exported bindings).  Publish those views up front:
    // a reader whose first query hits a recovered binding goes through
    // the writer's materialize path, gets a cache hit (`fresh ==
    // false`, so no publish happens there) and then reads the snapshot
    // — which must therefore already contain the view.
    for (key, _) in catalog.export_bindings() {
        if let Some(snap) = catalog.snapshot_view(&key) {
            published.insert(key, Arc::new(snap));
        }
    }
    if !published.is_empty() {
        shared.publish(Snapshot {
            version,
            views: published.clone(),
        });
    }
    // How often an idle writer wakes to sweep TTL-expired views: often
    // enough that staleness past the deadline stays a small fraction
    // of the TTL, bounded so tiny test TTLs don't busy-spin.
    let ttl_tick =
        view_ttl.map(|ttl| (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)));
    // Arities the program declares; facts that disagree with the program
    // or with a stored relation are rejected before they can reach
    // storage (whose insert path treats a wrong-arity row as a caller
    // bug and panics).
    let declared_arities = shared.program.predicate_arities().unwrap_or_default();
    // A command popped out of a batch drain that must be handled next.
    let mut deferred: Option<WriterCmd> = None;
    // Degraded mode: while `Some`, the durable path is broken — updates
    // are refused and a probe retries the failing operation on a capped
    // exponential backoff.  Owned by the writer; mirrored to
    // `shared.degraded` for the connection threads' front-door check.
    let mut degraded_cause: Option<DegradedCause> = None;
    let mut probe_backoff = PROBE_BACKOFF_MIN;
    let mut next_probe: Option<Instant> = None;
    'main: loop {
        // While degraded, bound the blocking receive by the time until
        // the next probe so recovery is never starved by an idle queue.
        let probe_wait = next_probe.map(|at| {
            at.saturating_duration_since(Instant::now())
                .max(Duration::from_millis(5))
        });
        let tick = match (probe_wait, ttl_tick) {
            (Some(p), Some(t)) => Some(p.min(t)),
            (Some(p), None) => Some(p),
            (None, t) => t,
        };
        let cmd: Option<WriterCmd> = match deferred.take() {
            Some(cmd) => Some(cmd),
            None => match tick {
                None => match rx.recv() {
                    Ok(cmd) => {
                        shared.note_pop(&cmd);
                        Some(cmd)
                    }
                    Err(_) => break, // every sender is gone
                },
                Some(tick) => match rx.recv_timeout(tick) {
                    Ok(cmd) => {
                        shared.note_pop(&cmd);
                        Some(cmd)
                    }
                    Err(RecvTimeoutError::Disconnected) => break 'main,
                    Err(RecvTimeoutError::Timeout) => {
                        // Idle maintenance: sweep views past their TTL.
                        // Eviction is never an error — a dropped
                        // binding re-materializes from `base_db` on
                        // next sight.  (The probe, the other idle duty,
                        // runs at the bottom of the loop body.)
                        let expired = catalog.evict_expired();
                        if !expired.is_empty() {
                            shared
                                .views_evicted
                                .fetch_add(expired.len() as u64, Ordering::Relaxed);
                            for key in &expired {
                                published.remove(key);
                            }
                            version += 1;
                            shared.publish(Snapshot {
                                version,
                                views: published.clone(),
                            });
                        }
                        None
                    }
                },
            },
        };
        match cmd {
            None => {}
            Some(WriterCmd::Shutdown) => break,
            Some(WriterCmd::Materialize { query, reply }) => {
                match catalog.materialize_keyed(&shared.program, &query, &base_db) {
                    Ok((key, fresh)) => {
                        // A cache hit (two connections racing the first
                        // sight of one binding) changes nothing — the
                        // published snapshot already contains the view,
                        // so skip the publish entirely.
                        if fresh {
                            // Materializing may also have evicted cold
                            // bindings past the `max_views` cap: drop any
                            // published entry the catalog no longer holds.
                            published.retain(|k, _| catalog.contains(k));
                            // Under a pathologically tiny `max_views`
                            // the eviction sweep can claw back the very
                            // binding just materialized; that is an
                            // answerable error (the client's retry loop
                            // re-materializes), never a writer panic.
                            match catalog.snapshot_view(&key) {
                                Some(snap) => {
                                    published.insert(key.clone(), Arc::new(snap));
                                    version += 1;
                                    shared.publish(Snapshot {
                                        version,
                                        views: published.clone(),
                                    });
                                    let _ = reply.send(Ok(key));
                                }
                                None => {
                                    // Still publish the sweep's drops so
                                    // readers don't hold stale entries.
                                    version += 1;
                                    shared.publish(Snapshot {
                                        version,
                                        views: published.clone(),
                                    });
                                    let _ = reply.send(Err(format!(
                                        "view {key} was evicted immediately after \
                                         materialization (max_views is too small for \
                                         the working set); retry"
                                    )));
                                }
                            }
                        } else {
                            let _ = reply.send(Ok(key));
                        }
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e.to_string()));
                    }
                }
            }
            Some(WriterCmd::Update { update: _, reply }) if degraded_cause.is_some() => {
                // The front door refuses updates while degraded, but a
                // command already queued when the flag rose races past
                // it and lands here; refuse it truthfully too.
                let cause = degraded_cause.expect("guard checked");
                let _ = reply.send(Err(format!(
                    "DEGRADED read-only: the last {} failed; updates are refused \
                     until a background probe restores the durable path",
                    cause.noun()
                )));
            }
            Some(WriterCmd::Update { update, reply }) => {
                // Batch: greedily drain more queued updates (writes are
                // serialized anyway, and coalescing insertions lets each
                // view run one fixpoint re-entry for the whole batch).
                let mut batch = vec![(update, reply)];
                while batch.len() < batch_max {
                    match rx.try_recv() {
                        Ok(cmd) => {
                            shared.note_pop(&cmd);
                            match cmd {
                                WriterCmd::Update { update, reply } => {
                                    batch.push((update, reply));
                                }
                                other => {
                                    deferred = Some(other);
                                    break;
                                }
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Apply to the authoritative base database, validating
                // each fact's arity *at application time* — against the
                // database as the batch has mutated it so far, falling
                // back to the program's declared arity.  (A single
                // pre-pass would miss two same-batch inserts of a brand
                // new predicate at different arities, and storage treats
                // a wrong-arity row as a caller bug and panics.)
                // Mismatches are answered immediately and dropped; the
                // base database then decides which survivors are state
                // changes — no-ops are acknowledged but never reach the
                // views.
                let mut changed: Vec<Update> = Vec::new();
                let mut acks: Vec<(UpdateReply, bool)> = Vec::new();
                for (update, reply) in batch {
                    let fact = update.fact();
                    let expected = base_db
                        .relation(&fact.pred)
                        .map(|rel| rel.arity())
                        .or_else(|| declared_arities.get(&fact.pred).copied());
                    if let Some(arity) = expected {
                        if arity != fact.arity() {
                            let _ = reply.send(Err(format!(
                                "arity mismatch: {} is stored with arity {arity}, \
                                 fact has arity {}",
                                fact.pred,
                                fact.arity()
                            )));
                            continue;
                        }
                    }
                    let is_change = match &update {
                        Update::Insert(f) => base_db.insert_fact(f),
                        Update::Retract(f) => base_db.remove_fact(f),
                    };
                    if is_change {
                        changed.push(update);
                    }
                    acks.push((reply, is_change));
                }
                // Write-ahead: the batch must be on the log *before*
                // its snapshot publishes and its clients are acked —
                // "OK applied" promises the write survives a crash.
                // If the log itself fails, the failed append is
                // scrubbed from the log (see
                // [`DurableStore::log_batch`]) and the batch is rolled
                // back out of the base database — exact inverses in
                // reverse order, sound because `changed` holds only
                // state-changers.  Memory, disk and the refusal acks
                // then agree: the batch never happened.  The views
                // never see it (maintenance below is skipped) and the
                // server enters read-only degraded mode.
                let mut log_failure: Option<String> = None;
                if !changed.is_empty() {
                    if let Some(store) = store.as_mut() {
                        if let Err(e) = store.log_batch(&changed) {
                            for u in changed.iter().rev() {
                                match u {
                                    Update::Insert(f) => {
                                        base_db.remove_fact(f);
                                    }
                                    Update::Retract(f) => {
                                        base_db.insert_fact(f);
                                    }
                                }
                            }
                            log_failure = Some(e.to_string());
                        }
                        shared.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
                    }
                }
                if log_failure.is_none() && !changed.is_empty() {
                    // A view whose maintenance fails is evicted by
                    // `apply_all` (it re-materializes from `base_db` on
                    // next sight), so the batch is never half-applied:
                    // every surviving view and the base database agree on
                    // the same update prefix, and the acknowledgments
                    // below stay truthful.
                    let outcome = catalog.apply_all(&changed);
                    if !outcome.evicted.is_empty() {
                        shared
                            .views_evicted
                            .fetch_add(outcome.evicted.len() as u64, Ordering::Relaxed);
                    }
                    // Incremental republish: drop evicted entries,
                    // re-freeze exactly the views this batch moved (each
                    // re-freeze is an O(relations) COW clone), keep every
                    // other published `Arc` as-is.
                    for (key, _) in &outcome.evicted {
                        published.remove(key);
                    }
                    for key in &outcome.changed {
                        // A changed binding should still be live, but if
                        // the catalog dropped it anyway (eviction racing
                        // maintenance), dropping the published entry is
                        // the correct degraded answer — the next query
                        // re-materializes — and beats a writer panic,
                        // which would wedge every future update.
                        match catalog.snapshot_view(key) {
                            Some(snap) => {
                                published.insert(key.clone(), Arc::new(snap));
                            }
                            None => {
                                published.remove(key);
                                shared.views_evicted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    version += 1;
                    shared.publish(Snapshot {
                        version,
                        views: published.clone(),
                    });
                    shared
                        .updates_applied
                        .fetch_add(changed.len() as u64, Ordering::Relaxed);
                }
                // Enter degraded mode *before* the refusal acks go out:
                // a client that saw `ERR DEGRADED` must already find
                // the flag raised when it asks `STATS`.
                if let Some(detail) = &log_failure {
                    eprintln!(
                        "magic-serve: WAL append failed, entering read-only \
                         degraded mode: {detail}"
                    );
                    enter_degraded(
                        &shared,
                        &mut degraded_cause,
                        &mut probe_backoff,
                        &mut next_probe,
                        DegradedCause::Wal,
                    );
                }
                for (reply, applied) in acks {
                    let _ = match &log_failure {
                        None => reply.send(Ok((applied, version))),
                        Some(detail) => reply.send(Err(format!(
                            "DEGRADED update refused: WAL append failed ({detail}); \
                             the batch was rolled back and the server is read-only \
                             until the durable path recovers"
                        ))),
                    };
                }
                // Checkpoint *after* acking: the cadence check rides
                // the batch that crossed it, but clients never wait
                // on a whole-database freeze.
                if log_failure.is_none() {
                    if let Some(store) = store.as_mut() {
                        if store.should_checkpoint() {
                            match store.checkpoint(&base_db, &catalog.export_bindings()) {
                                Ok(()) => {
                                    shared
                                        .last_checkpoint_seq
                                        .store(store.last_checkpoint_seq(), Ordering::Relaxed);
                                }
                                Err(e) => {
                                    // The WAL is intact and every ack
                                    // sent was honest — durability still
                                    // holds, recovery just replays a
                                    // longer tail.  But a store that
                                    // cannot checkpoint is sick (disk
                                    // full, permissions), so enter
                                    // degraded mode and let the probe
                                    // retry on backoff rather than
                                    // piling more acked writes onto an
                                    // unbounded WAL tail.
                                    eprintln!(
                                        "magic-serve: checkpoint failed, entering \
                                         read-only degraded mode: {e}"
                                    );
                                    enter_degraded(
                                        &shared,
                                        &mut degraded_cause,
                                        &mut probe_backoff,
                                        &mut next_probe,
                                        DegradedCause::Checkpoint,
                                    );
                                }
                            }
                            shared.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        // Degraded-mode probe: when due, retry the failing durable
        // operation; on success clear the flag and resume accepting
        // updates, on failure back off (capped exponential).  Checked
        // after every command *and* on idle ticks, so neither a busy
        // read path nor an empty queue can starve recovery.
        if let Some(cause) = degraded_cause {
            let due = next_probe.is_none_or(|at| Instant::now() >= at);
            if due {
                if let Some(store) = store.as_mut() {
                    let outcome = match cause {
                        DegradedCause::Wal => store.probe(),
                        DegradedCause::Checkpoint => {
                            store.checkpoint(&base_db, &catalog.export_bindings())
                        }
                    };
                    match outcome {
                        Ok(()) => {
                            eprintln!(
                                "magic-serve: durable path recovered ({} probe \
                                 succeeded); leaving degraded mode",
                                cause.noun()
                            );
                            degraded_cause = None;
                            next_probe = None;
                            probe_backoff = PROBE_BACKOFF_MIN;
                            shared.degraded.store(false, Ordering::Release);
                            shared
                                .last_checkpoint_seq
                                .store(store.last_checkpoint_seq(), Ordering::Relaxed);
                        }
                        Err(_) => {
                            next_probe = Some(Instant::now() + probe_backoff);
                            probe_backoff = (probe_backoff * 2).min(PROBE_BACKOFF_MAX);
                        }
                    }
                    shared.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
                } else {
                    // No store: degraded mode is unreachable, but be
                    // safe and self-heal rather than probing forever.
                    degraded_cause = None;
                    next_probe = None;
                    shared.degraded.store(false, Ordering::Release);
                }
            }
        }
    }
    // Clean exit: push whatever the fsync policy deferred to disk, so a
    // graceful shutdown under `FsyncPolicy::Never`/`EveryN` loses
    // nothing even to a machine crash right after.
    if let Some(store) = store.as_mut() {
        let _ = store.sync();
    }
}

/// Accept connections until shutdown; one thread per connection.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        // Injected connection faults (tests only — `shared.faults` is
        // `None` in production).  A drop closes the socket before any
        // request is read; a stall sleeps *inside* the connection
        // thread so the accept loop itself never blocks.
        let mut stall: Option<Duration> = None;
        if let Some(plan) = &shared.faults {
            match plan.on_connection() {
                ConnFault::Drop => {
                    drop(stream);
                    continue;
                }
                ConnFault::Stall(d) => stall = Some(d),
                ConnFault::None => {}
            }
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("magic-serve-conn".into())
            .spawn(move || {
                if let Some(d) = stall {
                    std::thread::sleep(d);
                }
                let _ = handle_connection(stream, conn_shared);
            });
        if let Ok(handle) = handle {
            let mut conns = conn_threads.lock().expect("conn list lock");
            // Reap finished connections as new ones arrive, so a
            // long-lived server under connection churn holds handles
            // proportional to *live* connections, not lifetime total.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

/// Buffered line reading with shutdown-aware timeouts: a read timeout
/// only re-checks the flag, it never drops bytes already received.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Upper bound on one request line; longer input is a protocol error.
const MAX_LINE: usize = 1 << 20;

impl LineReader {
    /// The next full line, `None` on EOF or shutdown.
    fn next_line(&mut self, shutdown: &AtomicBool) -> io::Result<Option<String>> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line too long",
                ));
            }
            if shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Write one response to a client, counting (and logging) a failure
/// before propagating it: a client that vanished mid-response is an
/// ordinary event for the server but must not vanish from observability
/// — `write_errors` in `STATS` totals them.
fn send_response(shared: &Shared, writer: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    writer.write_all(bytes).inspect_err(|e| {
        shared.write_errors.fetch_add(1, Ordering::Relaxed);
        eprintln!("magic-serve: client write failed, closing connection: {e}");
    })
}

/// Serve one connection: parse request lines, dispatch, write responses.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.read_timeout))?;
    // Writes get an explicit, bounded timeout
    // ([`ServeConfig::write_timeout`], zero = unbounded): a client that
    // stops reading while a large response fills the kernel send buffer
    // must not pin this thread in `write_all` forever (shutdown joins
    // every connection thread, so an unbounded write would deadlock
    // it).  On expiry the response is torn mid-write and the
    // connection closes.
    if !shared.write_timeout.is_zero() {
        stream.set_write_timeout(Some(shared.write_timeout))?;
    }
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };
    while let Some(line) = reader.next_line(&shared.shutdown)? {
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(e) => render_error(&e),
            Ok(Request::Ping) => "OK pong\n".to_string(),
            Ok(Request::Quit) => {
                send_response(&shared, &mut writer, b"OK bye\n")?;
                break;
            }
            Ok(Request::Shutdown) => {
                send_response(&shared, &mut writer, b"OK bye\n")?;
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = shared.writer_tx.send(WriterCmd::Shutdown);
                // Unblock the accept loop; the owning handle joins later.
                if let Ok(self_addr) = reader.stream.local_addr() {
                    let _ = TcpStream::connect(self_addr);
                }
                break;
            }
            Ok(Request::Query(query)) => match answer_query(&shared, &query) {
                Ok((key, ver, rows)) => {
                    shared.queries_served.fetch_add(1, Ordering::Relaxed);
                    render_answers(&key, ver, &rows)
                }
                Err(e) => render_error(&e),
            },
            Ok(Request::Insert(fact)) => dispatch_update(&shared, Update::Insert(fact)),
            Ok(Request::Retract(fact)) => dispatch_update(&shared, Update::Retract(fact)),
            Ok(Request::Stats) => gather_stats(&shared).render(),
        };
        send_response(&shared, &mut writer, response.as_bytes())?;
    }
    Ok(())
}

/// The read path: translate the query to its binding key (memoized),
/// answer from the published snapshot, materializing through the writer
/// only on first sight of a binding.
fn answer_query(shared: &Shared, query: &Query) -> Result<(String, u64, Vec<Vec<Value>>), String> {
    let text = query.atom.to_string();
    let cached_key = shared
        .key_cache
        .lock()
        .expect("key cache lock")
        .get(&text)
        .cloned();
    if let Some(key) = cached_key {
        let snapshot = shared.snapshot();
        if let Some(view) = snapshot.views.get(&key) {
            let rows = view.answers();
            return Ok((key, snapshot.version, rows.into_iter().collect()));
        }
        // Key known but the view is not in this snapshot: it was evicted
        // (failed maintenance) or materialization raced a concurrent
        // first-sight query.  Fall through to the writer, which is
        // idempotent for live bindings and rebuilds evicted ones.
    }
    // Materialize-then-read can race an eviction: the writer may process
    // an update batch that fails this view's maintenance between our ack
    // and our snapshot read.  Each retry rebuilds from the current base
    // facts, so a transient race heals; persistent failure (e.g. a
    // limits budget the data has outgrown) surfaces as the writer's
    // materialization error on a later attempt or the final ERR below.
    for _ in 0..3 {
        let key = shared.writer_call(|reply| WriterCmd::Materialize {
            query: query.clone(),
            reply,
        })?;
        shared
            .key_cache
            .lock()
            .expect("key cache lock")
            .insert(text.clone(), key.clone());
        let snapshot = shared.snapshot();
        if let Some(view) = snapshot.views.get(&key) {
            let rows = view.answers();
            return Ok((key, snapshot.version, rows.into_iter().collect()));
        }
    }
    Err(format!(
        "view for {text} was repeatedly evicted while answering; its maintenance is failing"
    ))
}

/// The write path: validate against the source program, shed if the
/// server is degraded or the writer queue is at capacity, otherwise
/// enqueue to the writer and block (bounded by the writer deadline)
/// until the containing snapshot is published.
///
/// The three structured refusals a client can see here, and what they
/// promise:
/// * `ERR DEGRADED …` — not applied, and retrying now will not help;
///   wait for the server to recover (poll `STATS degraded`).
/// * `ERR BUSY <retry-after-ms> …` — not applied; retry after the
///   hinted backoff.
/// * `ERR TIMEOUT …` — outcome *unknown*: the command is still queued
///   and may apply later.  Only idempotent retries are safe.
fn dispatch_update(shared: &Shared, update: Update) -> String {
    let fact = update.fact();
    if shared.derived.contains(&fact.pred) {
        return render_error(&format!(
            "{} is derived by the program; derived predicates are maintained, not edited",
            fact.pred
        ));
    }
    if shared.degraded.load(Ordering::Acquire) {
        return render_error(
            "DEGRADED read-only: the durable path is failing; updates are \
             refused while a background probe retries it",
        );
    }
    if shared.max_queue_depth > 0
        && shared.queue_depth.load(Ordering::Relaxed) >= shared.max_queue_depth as u64
    {
        shared.shed_updates.fetch_add(1, Ordering::Relaxed);
        return render_error(&format!(
            "BUSY {BUSY_RETRY_AFTER_MS} writer queue is at capacity ({}); \
             retry after the hinted backoff",
            shared.max_queue_depth
        ));
    }
    match shared.writer_call(|reply| WriterCmd::Update { update, reply }) {
        Ok((applied, version)) => render_ack(applied, version),
        Err(e) => render_error(&e),
    }
}

/// Assemble the `STATS` response from the shared counters and the
/// published snapshot.
fn gather_stats(shared: &Shared) -> ServerStats {
    let snapshot = shared.snapshot();
    let mut totals = EvalStats::default();
    let per_view: Vec<ViewStats> = snapshot
        .views
        .iter()
        .map(|(key, view)| {
            totals.merge(view.stats());
            ViewStats {
                key: key.to_string(),
                facts: view.database().total_facts() as u64,
                rule_firings: view.stats().rule_firings as u64,
                join_probes: view.stats().join_probes as u64,
            }
        })
        .collect();
    ServerStats {
        version: snapshot.version,
        views: snapshot.views.len() as u64,
        queries_served: shared.queries_served.load(Ordering::Relaxed),
        updates_applied: shared.updates_applied.load(Ordering::Relaxed),
        connections: shared.connections.load(Ordering::Relaxed),
        views_evicted: shared.views_evicted.load(Ordering::Relaxed),
        iterations: totals.iterations as u64,
        rule_firings: totals.rule_firings as u64,
        facts_derived: totals.facts_derived as u64,
        duplicate_derivations: totals.duplicate_derivations as u64,
        join_probes: totals.join_probes as u64,
        wal_bytes: shared.wal_bytes.load(Ordering::Relaxed),
        last_checkpoint: shared.last_checkpoint_seq.load(Ordering::Relaxed),
        write_errors: shared.write_errors.load(Ordering::Relaxed),
        queue_depth: shared.queue_depth.load(Ordering::Relaxed),
        shed_updates: shared.shed_updates.load(Ordering::Relaxed),
        deadline_misses: shared.deadline_misses.load(Ordering::Relaxed),
        degraded: shared.degraded.load(Ordering::Acquire) as u64,
        degraded_entered: shared.degraded_entered.load(Ordering::Relaxed),
        per_view,
    }
}
