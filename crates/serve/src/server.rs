//! The server: a pooled, pipelined front end over sharded maintenance
//! writers and incrementally published copy-on-write view snapshots.
//!
//! # Concurrency model
//!
//! * **Readers never block on maintenance.**  Each writer shard keeps
//!   one frozen [`ViewSnapshot`] per cached binding it owns and
//!   publishes the set behind an immutable [`Arc`] after every applied
//!   batch; a connection answering a query takes the owning shard's
//!   published `Arc` (one brief mutex lock to clone the pointer, never
//!   held across any evaluation) and reads answers out of the frozen
//!   snapshot for its key.  Snapshots are copy-on-write database
//!   clones (pure pointer bumps — see [`magic_storage::cow_clones`]),
//!   so a publish re-freezes **only the views the batch changed** and
//!   costs O(changed views), not O(catalog).
//!
//! * **Writes are partitioned, then serialized.**  Base relations are
//!   hash-partitioned across [`ServeConfig::writer_shards`] writer
//!   threads; every update to a predicate is routed to its *home*
//!   shard, which drains its queue in batches (one fixpoint re-entry
//!   per view per batch via [`ViewCatalog::apply_all`]), appends the
//!   batch to **its own** write-ahead log, applies it to its replica
//!   of the base database, maintains the views it owns and publishes.
//!   With more than one shard the home then fans the batch out to its
//!   peers as replication commands (each shard keeps a full base
//!   replica so any shard can materialize any view); a per-batch
//!   barrier delivers the client acknowledgments only once **every**
//!   shard has published the batch, so ack-after-publish and
//!   read-your-writes hold across the whole partition.  Order is safe:
//!   all updates to one predicate serialize through its home shard and
//!   replicate in that order (per-sender FIFO channels), and updates
//!   to different predicates commute — a view's state is a function of
//!   the base state alone.
//!
//! * **Connections are pumped, not parked.**  A nonblocking accept
//!   loop hands each connection to one of a fixed pool of reader
//!   threads ([`ServeConfig::reader_threads`]); each reader pumps its
//!   connections round-robin — read, decode *every* buffered request,
//!   dispatch, poll in-flight writer replies, write completed
//!   responses.  A client may therefore pipeline: many requests ride
//!   one syscall, and the per-request wire round-trip that bounds a
//!   synchronous client's throughput is amortized away.
//!
//! * **Two wire protocols share the port.**  The first bytes of every
//!   connection are sniffed against [`BINARY_MAGIC`] *in full*: a
//!   `MGWP01` preamble selects the length-prefixed binary framing
//!   (request ids, batching, out-of-order responses — see
//!   [`crate::protocol`]); anything else is the line-oriented text
//!   protocol, answered strictly in request order.
//!
//! * **Unseen bindings materialize on demand.**  A query whose adorned
//!   binding key is not yet cached is planned on the connection thread
//!   (memoized per query text) and routed to the shard that owns the
//!   key, which materializes, publishes, and lets the connection
//!   answer from the fresh snapshot.
//!
//! * **Durability is optional and shard-owned.**  With
//!   [`ServeConfig::durability`] set, each shard logs its home
//!   predicates to its own WAL *before* publishing (`OK applied`
//!   means *logged and published*) and checkpoints its partition on
//!   the configured cadence.  Startup recovers per shard — checkpoint
//!   load, WAL-tail replay — then merges the disjoint partitions and
//!   re-materializes each shard's exported bindings over the merged
//!   base.  A store remembers its shard count (`shards.meta`) and
//!   refuses to reopen at a different one.
//!
//! * **Overload sheds, it never queues without bound.**  Each shard
//!   queue carries an atomic depth gauge; at
//!   [`ServeConfig::max_queue_depth`] new updates are refused up front
//!   with `ERR BUSY <retry-after-ms> …` (definitely not applied), and
//!   every writer round-trip is bounded by
//!   [`ServeConfig::writer_deadline`] (`ERR TIMEOUT …` = outcome
//!   unknown).  Reads are never shed.  Replication commands are
//!   neither counted nor shed — they are the writers' own traffic.
//!
//! * **Durable failures degrade the shard, they don't kill the
//!   server.**  When a shard's WAL append or checkpoint fails, that
//!   shard rolls the un-logged batch back, refuses its acks with `ERR
//!   DEGRADED …`, skips replication (its peers never see the rolled-
//!   back batch), and flips read-only while a background probe retries
//!   on capped exponential backoff (25ms → 2s).  Healthy shards keep
//!   accepting writes for their own predicates.  `STATS` reports both
//!   the aggregate and a per-shard breakdown.
//!
//! Every published shard snapshot is a program fixpoint over a prefix
//! of the applied update sequence for that shard's views, so responses
//! are transactionally consistent: a reader can never observe half of
//! a batch (no torn reads) — the property `tests/serve_consistency.rs`
//! checks against a from-scratch oracle, and
//! `crates/serve/tests/durable_restart.rs` extends to recovered state
//! after a mid-stream `SIGKILL`.

use crate::protocol::{
    op, parse_fact, parse_request, render_ack, render_answers, render_error, sniff, status, Frame,
    Request, ServerStats, ShardStats, Sniff, ViewStats, BINARY_MAGIC,
};
use magic_core::planner::{Planner, Strategy};
use magic_datalog::{parse_query, PredName, Program, Query, Value};
use magic_durable::{verify_shard_layout, ConnFault, DurableConfig, DurableStore, FaultPlan};
use magic_engine::{EvalStats, Limits};
use magic_incr::{Update, ViewCatalog, ViewSnapshot};
use magic_storage::Database;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Retry hint, in milliseconds, carried by every `BUSY` shed.  A
/// constant (rather than a measured estimate) keeps the wire contract
/// simple; clients treat it as a floor for their own backoff.
const BUSY_RETRY_AFTER_MS: u64 = 100;

/// First retry delay after entering degraded mode; doubles per failed
/// probe up to [`PROBE_BACKOFF_MAX`].
const PROBE_BACKOFF_MIN: Duration = Duration::from_millis(25);

/// Cap on the degraded-mode probe backoff: even a long outage is
/// re-checked at least every couple of seconds.
const PROBE_BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Upper bound on one request line; longer input is a protocol error.
const MAX_LINE: usize = 1 << 20;

/// How long the nonblocking accept loop sleeps when nothing is
/// arriving before re-checking the listener and the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Cap on distinct binding keys in the rendered-response cache; keys
/// past it simply re-render (the working set of a skewed read mix is
/// far smaller).
const RESPONSE_CACHE_MAX_KEYS: usize = 256;

/// Largest response body the cache will hold; a huge view's answer is
/// rendered per request rather than pinned in memory.
const RESPONSE_CACHE_MAX_BYTES: usize = 1 << 16;

/// Log2 buckets of the pipelining histogram (requests decoded per
/// connection pump); bucket `i` covers `2^i ..= 2^(i+1)-1`.
const BATCH_BUCKETS: usize = 16;

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Rewrite strategy for on-demand view materialization.
    pub strategy: Strategy,
    /// Evaluation limits applied to every view.
    pub limits: Limits,
    /// Maximum updates coalesced into one maintenance batch (and thus one
    /// published snapshot).
    pub batch_max: usize,
    /// Idle poll granularity of the connection reader pool: the ceiling
    /// on how long a reader sleeps when none of its connections made
    /// progress (clamped to at most 1ms — the pump is nonblocking, so
    /// this bounds added latency, it no longer parks a thread).
    pub read_timeout: Duration,
    /// Cap on cached views per writer shard (0 = unbounded): past it,
    /// the shard's catalog evicts the least-recently-queried binding,
    /// which then re-materializes on next sight.  See
    /// [`ViewCatalog::with_max_views`].
    pub max_views: usize,
    /// Idle lifetime of cached views (zero = no TTL): a binding no
    /// query has touched for this long is evicted by its shard's
    /// maintenance tick and re-materializes on next sight.  Composes
    /// with `max_views` — TTL bounds staleness in *time*, the cap in
    /// *count*.  See [`ViewCatalog::with_view_ttl`].
    pub view_ttl: Duration,
    /// Crash safety (off by default): when set, each writer shard
    /// appends every acked batch of its home predicates to its own
    /// write-ahead log in this store directory and checkpoints its
    /// partition on the configured cadence; [`Server::start`] recovers
    /// prior state from that directory before accepting connections.
    /// The directory records its shard count and refuses to reopen at
    /// a different [`ServeConfig::writer_shards`].
    pub durability: Option<DurableConfig>,
    /// Overload bound on each shard's writer queue (0 = unbounded).
    /// When the number of in-flight commands for a shard reaches this
    /// cap, new updates routed to it are *shed* before they enqueue:
    /// the client gets an `ERR BUSY <retry-after-ms> …` line and the
    /// fact is never applied or logged.  Reads are never shed — they
    /// keep serving from the published snapshots.
    pub max_queue_depth: usize,
    /// Deadline on every writer round-trip — update acks and on-demand
    /// materializations (zero = wait forever).  A round-trip that
    /// exceeds it returns `ERR TIMEOUT …` to the client; the command
    /// stays queued and **may still apply later**, so a timed-out
    /// update has *unknown* outcome (unlike a `BUSY` shed, which
    /// definitely did not apply).
    pub writer_deadline: Duration,
    /// Bound on stalled response writes (zero = unbounded).  A client
    /// that stops reading while a large response fills the kernel send
    /// buffer must not pin its connection forever; once no byte has
    /// moved for this long the response is torn mid-write and the
    /// connection closes.  The default (5s) is generous — it exists to
    /// bound shutdown, not to police slow links.
    pub write_timeout: Duration,
    /// Number of writer shards the base relations are hash-partitioned
    /// across (0 or 1 = the classic single-writer layout, byte-for-byte
    /// compatible with earlier stores).  More shards parallelize WAL
    /// appends and view maintenance across predicates; updates to one
    /// predicate always serialize through one shard.
    pub writer_shards: usize,
    /// Size of the connection reader pool (0 = auto: the machine's
    /// available parallelism, clamped to 2..=8).  Each reader pumps
    /// many connections; the pool replaces thread-per-connection.
    pub reader_threads: usize,
    /// Deterministic fault injection (testing only; `None` in
    /// production).  When unset, the `MAGIC_FAULTS` environment
    /// variable is consulted at startup — see
    /// [`magic_durable::faults`].  The plan is shared between every
    /// shard's durable store (fsync/append/rename faults) and the
    /// accept loop (connection stall/drop faults).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            strategy: Strategy::MagicSets,
            limits: Limits::default(),
            batch_max: 256,
            read_timeout: Duration::from_millis(50),
            max_views: 0,
            view_ttl: Duration::ZERO,
            durability: None,
            max_queue_depth: 1024,
            writer_deadline: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            writer_shards: 1,
            reader_threads: 0,
            faults: None,
        }
    }
}

/// FNV-1a — the workspace is dependency-free, and the partition only
/// needs a stable, well-mixed hash of short names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The home shard of a predicate or binding-key name.
fn shard_of(name: &str, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (fnv1a(name.as_bytes()) % shards as u64) as usize
    }
}

/// `db` restricted to the predicates homed on `shard` — what that
/// shard's checkpoint persists.  Relations are copy-on-write, so the
/// projection clones pointers, not tuples.
fn project_home(db: &Database, shard: usize, shards: usize) -> Database {
    let mut out = Database::new();
    for (pred, rel) in db.iter() {
        if shard_of(&pred.to_string(), shards) == shard {
            out.insert_relation(pred.clone(), rel.clone());
        }
    }
    out
}

/// An immutable published state: one frozen [`ViewSnapshot`] per cached
/// binding a shard owns, at one version.  Unchanged entries share their
/// `Arc` with the previous snapshot — republishing is O(changed views).
struct Snapshot {
    version: u64,
    views: BTreeMap<String, Arc<ViewSnapshot>>,
}

/// An update acknowledgment channel: Ok((state-changed, published
/// version)) or the rejection message.
type UpdateReply = Sender<Result<(bool, u64), String>>;
/// The connection-side end of an update acknowledgment.
type UpdateRx = Receiver<Result<(bool, u64), String>>;
/// The connection-side end of a materialization acknowledgment.
type MaterializeRx = Receiver<Result<String, String>>;

/// Completion barrier for one cross-shard update batch: the home shard
/// arms it with the client acks after logging and publishing locally,
/// every peer shard arrives once it has applied and published the
/// replicated batch, and the *last* arrival delivers the acks — so `OK
/// applied <v>` still means "visible on every shard".
struct BatchBarrier {
    remaining: AtomicUsize,
    max_version: AtomicU64,
    acks: Mutex<Vec<(UpdateReply, bool)>>,
}

impl BatchBarrier {
    fn new(peers: usize, home_version: u64, acks: Vec<(UpdateReply, bool)>) -> BatchBarrier {
        BatchBarrier {
            remaining: AtomicUsize::new(peers),
            max_version: AtomicU64::new(home_version),
            acks: Mutex::new(acks),
        }
    }

    /// One shard finished the batch at `version` (0 = it had nothing
    /// to publish).  The final arrival acks every client with the
    /// highest version any shard published the batch at.
    fn arrive(&self, version: u64) {
        self.max_version.fetch_max(version, Ordering::AcqRel);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let version = self.max_version.load(Ordering::Acquire);
            let acks = std::mem::take(&mut *self.acks.lock().expect("barrier acks lock"));
            for (reply, applied) in acks {
                let _ = reply.send(Ok((applied, version)));
            }
        }
    }
}

/// Commands on a shard's maintenance queue.
enum WriterCmd {
    /// Apply one update homed on this shard; acknowledge with
    /// (state-changed, published version) once the containing snapshot
    /// is live on every shard.
    Update { update: Update, reply: UpdateReply },
    /// Apply a batch another shard already logged and acked ownership
    /// of; arrive at the barrier once published locally.  Never
    /// counted against the queue-depth gauge and never shed.
    Replicate {
        updates: Arc<Vec<Update>>,
        barrier: Arc<BatchBarrier>,
    },
    /// Plan and materialize a view for `query`; acknowledge with the
    /// binding key once the snapshot containing it is live.
    Materialize {
        query: Query,
        reply: Sender<Result<String, String>>,
    },
    /// Stop the writer thread.
    Shutdown,
}

/// Per-shard shared state: the command queue, the published snapshot
/// slot for the views the shard owns, and the shard's own overload and
/// durability gauges.
struct ShardState {
    tx: Sender<WriterCmd>,
    published: Mutex<Arc<Snapshot>>,
    /// Commands currently in flight to this shard (enqueued but not
    /// yet popped).  Incremented *before* the channel send so the
    /// gauge can only over-count, never under-count — the shed check
    /// errs toward shedding at the boundary rather than letting the
    /// queue grow past its cap.
    queue_depth: AtomicU64,
    /// Updates refused with `BUSY` because this queue was at capacity.
    shed_updates: AtomicU64,
    /// Writer round-trips on this shard that exceeded the deadline.
    deadline_misses: AtomicU64,
    /// Read-only degraded mode for this shard: set by its writer when
    /// the durable path (WAL append or checkpoint) fails, cleared when
    /// a background probe proves it healthy again.
    degraded: AtomicBool,
    /// Times this shard has *entered* degraded mode (lifetime count).
    degraded_entered: AtomicU64,
    /// Mirror of [`DurableStore::wal_bytes`] for this shard's log.
    wal_bytes: AtomicU64,
    /// Mirror of [`DurableStore::last_checkpoint_seq`].
    last_checkpoint_seq: AtomicU64,
}

impl ShardState {
    fn snapshot(&self) -> Arc<Snapshot> {
        self.published.lock().expect("publish lock").clone()
    }

    fn publish(&self, snapshot: Snapshot) {
        *self.published.lock().expect("publish lock") = Arc::new(snapshot);
    }

    /// Book-keeping for a command the writer popped off its queue:
    /// every counted (client-originated) command decrements the depth
    /// gauge exactly once, at pop time.  `Shutdown` and `Replicate`
    /// are sent by the server itself and are never counted.
    fn note_pop(&self, cmd: &WriterCmd) {
        if matches!(
            cmd,
            WriterCmd::Update { .. } | WriterCmd::Materialize { .. }
        ) {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// State shared between the accept loop, the reader pool, the writer
/// shards and the handle.
struct Shared {
    program: Program,
    derived: BTreeSet<PredName>,
    strategy: Strategy,
    limits: Limits,
    shards: Vec<ShardState>,
    /// Global snapshot version counter: every publish on any shard
    /// takes the next value, so versions are unique and each shard's
    /// slot is monotonic.  At one shard this degenerates to the
    /// classic single-writer version sequence.
    version: AtomicU64,
    /// Memoized query-text → binding-key translation (one plan per
    /// distinct query text, server-wide).
    key_cache: Mutex<HashMap<String, String>>,
    /// Rendered-response cache: binding key → (published version, the
    /// full rendered response at that version).  Published snapshots
    /// are immutable, so a view's rendered answer is a pure function
    /// of `(key, version)` — the hot keys of a skewed read mix serve
    /// as one map probe and a memcpy instead of re-collecting and
    /// re-formatting hundreds of rows per request.  Only the latest
    /// version per key is kept; any publish that moves the view
    /// changes the version and misses naturally.
    response_cache: Mutex<HashMap<String, (u64, Vec<u8>)>>,
    shutdown: AtomicBool,
    queries_served: AtomicU64,
    updates_applied: AtomicU64,
    connections: AtomicU64,
    /// Views evicted because their maintenance failed (see
    /// [`magic_incr::ViewCatalog::apply_all`]) or because they idled
    /// past the view TTL; surfaced in `STATS`.
    views_evicted: AtomicU64,
    /// Response writes that failed (client gone mid-response); the
    /// connection is closed and the failure counted, never ignored.
    write_errors: AtomicU64,
    /// Decoded requests not yet answered, across every connection —
    /// the pipelining depth the server is actually holding.
    inflight_requests: AtomicU64,
    /// Log2 histogram of requests decoded per connection pump; the
    /// observed batch size the pipelined protocol achieves.
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    write_timeout: Duration,
    /// Overload knobs (see [`ServeConfig`]).
    max_queue_depth: usize,
    writer_deadline: Duration,
    /// Shared fault plan for the accept loop's connection faults.
    faults: Option<Arc<FaultPlan>>,
}

impl Shared {
    fn next_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn shard_of_key(&self, key: &str) -> usize {
        shard_of(key, self.shards.len())
    }

    /// The cached rendered response for `(key, version)`, if the cache
    /// holds exactly that version.
    fn cached_response(&self, key: &str, version: u64) -> Option<Vec<u8>> {
        let cache = self.response_cache.lock().expect("response cache lock");
        match cache.get(key) {
            Some((v, body)) if *v == version => Some(body.clone()),
            _ => None,
        }
    }

    /// Remember the rendered response for `(key, version)`, bounded in
    /// both key count and body size — an oversized answer or an
    /// overflowing key population degrades to per-request rendering,
    /// never to unbounded memory.
    fn cache_response(&self, key: &str, version: u64, body: &[u8]) {
        if body.len() > RESPONSE_CACHE_MAX_BYTES {
            return;
        }
        let mut cache = self.response_cache.lock().expect("response cache lock");
        if cache.len() >= RESPONSE_CACHE_MAX_KEYS && !cache.contains_key(key) {
            return;
        }
        cache.insert(key.to_string(), (version, body.to_vec()));
    }

    /// The binding key `key_cache` memoizes: identical to what the
    /// owning shard's catalog computes, because both run the same
    /// deterministic planner over the same program.
    fn binding_key(&self, query: &Query) -> Result<String, String> {
        let plan = Planner::new(self.strategy)
            .with_limits(self.limits)
            .plan(&self.program, query)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "{}@{}",
            plan.view_binding(),
            self.strategy.short_name()
        ))
    }

    fn slot_deadline(&self) -> Option<Instant> {
        (!self.writer_deadline.is_zero()).then(|| Instant::now() + self.writer_deadline)
    }

    fn record_batch(&self, decoded: usize) {
        let bucket = (usize::BITS - 1)
            .saturating_sub(decoded.leading_zeros())
            .min(BATCH_BUCKETS as u32 - 1) as usize;
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Median of the batch-size histogram, reported as its bucket's
    /// lower bound (1, 2, 4, …); 0 before any request was decoded.
    fn batch_p50(&self) -> u64 {
        let counts: Vec<u64> = self
            .batch_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let half = total.div_ceil(2);
        let mut seen = 0u64;
        for (bucket, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= half {
                return 1u64 << bucket;
            }
        }
        0
    }

    /// Raise the shutdown flag and stop every writer (idempotent).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            let _ = shard.tx.send(WriterCmd::Shutdown);
        }
    }
}

/// A running server.  Dropping the handle shuts the server down and joins
/// every thread; [`ServerHandle::shutdown`] does the same explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    writer_threads: Vec<JoinHandle<()>>,
    reader_threads: Vec<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

/// Everything one writer shard owns, handed to its thread at spawn.
struct WriterInit {
    idx: usize,
    rx: Receiver<WriterCmd>,
    catalog: ViewCatalog,
    db: Database,
    store: Option<DurableStore>,
    /// Send ends of every *other* shard's queue, for replication
    /// fan-out (empty in the single-shard layout).
    peer_txs: Vec<Sender<WriterCmd>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `program` over `edb` until the returned handle is shut down.
    ///
    /// The catalogs start empty: views materialize on demand as queries
    /// arrive, each keyed by its adorned binding and owned by the shard
    /// its key hashes to.  `edb` becomes the authoritative base-fact
    /// database (replicated across shards; each predicate's home shard
    /// serializes and logs its updates), maintained by every
    /// acknowledged update and used to materialize late-arriving
    /// bindings.
    ///
    /// With [`ServeConfig::durability`] set, startup first runs
    /// recovery against the store directory — per shard: newest
    /// checkpoint load and WAL-tail replay; then the disjoint
    /// partitions merge and each shard's exported view bindings
    /// re-materialize over the merged base — all *before* the listener
    /// accepts its first connection.  On a brand-new store `edb` is
    /// the seed and is checkpointed immediately; on an existing store
    /// the disk state wins and `edb` is ignored.
    pub fn start(
        program: Program,
        edb: Database,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shards = config.writer_shards.max(1);
        let durable_err = |e: magic_durable::DurableError| io::Error::other(e.to_string());
        // One fault plan instance for the whole server: explicit config
        // wins, else `MAGIC_FAULTS`.  Resolving it here (rather than
        // letting each store read the environment on its own) keeps
        // every durable store and the accept loop sharing the *same*
        // occurrence counters, so a spec like `conn-drop=2` counts
        // connections globally, not per subsystem.
        let faults = config.faults.clone().or_else(FaultPlan::from_env);
        let new_catalog = || {
            ViewCatalog::new(config.strategy)
                .with_limits(config.limits)
                .with_max_views(config.max_views)
                .with_view_ttl(config.view_ttl)
        };
        let (catalogs, dbs, stores) = match &config.durability {
            Some(durable) => {
                let mut durable = durable.clone();
                if durable.faults.is_none() {
                    durable.faults = faults.clone();
                }
                verify_shard_layout(&durable.dir, shards).map_err(durable_err)?;
                if shards == 1 {
                    // The classic path, byte-compatible with stores
                    // written by earlier single-writer servers.
                    let mut store = DurableStore::open(&durable).map_err(durable_err)?;
                    let recovered = store
                        .recover(&program, new_catalog(), &edb)
                        .map_err(durable_err)?;
                    (
                        vec![recovered.catalog],
                        vec![recovered.db],
                        vec![Some(store)],
                    )
                } else {
                    // Per-shard recovery: each store covers a disjoint
                    // predicate partition, so the merged union *is*
                    // the acked base state; views then re-materialize
                    // over it — the same fixpoint the single-store
                    // replay-through-maintenance reaches, because a
                    // view's state is a function of the base state.
                    let mut stores = Vec::with_capacity(shards);
                    let mut shard_bindings = Vec::with_capacity(shards);
                    let mut merged = Database::new();
                    for i in 0..shards {
                        let mut store =
                            DurableStore::open_shard(&durable, i, shards).map_err(durable_err)?;
                        let seed = project_home(&edb, i, shards);
                        let recovered = store.recover_base(&seed).map_err(durable_err)?;
                        merged.merge(&recovered.db);
                        shard_bindings.push(recovered.bindings);
                        stores.push(Some(store));
                    }
                    let mut catalogs: Vec<ViewCatalog> =
                        (0..shards).map(|_| new_catalog()).collect();
                    for (catalog, bindings) in catalogs.iter_mut().zip(shard_bindings) {
                        for (_key, text) in bindings {
                            // A binding whose query no longer plans
                            // (the program changed between runs) is
                            // dropped, not fatal: views are caches.
                            let Ok(query) = parse_query(&text) else {
                                continue;
                            };
                            let _ = catalog.materialize_keyed(&program, &query, &merged);
                        }
                    }
                    let dbs = (0..shards).map(|_| merged.clone()).collect();
                    (catalogs, dbs, stores)
                }
            }
            None => (
                (0..shards).map(|_| new_catalog()).collect(),
                (0..shards).map(|_| edb.clone()).collect(),
                (0..shards)
                    .map(|_| None)
                    .collect::<Vec<Option<DurableStore>>>(),
            ),
        };

        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let shard_states: Vec<ShardState> = txs
            .iter()
            .zip(&stores)
            .map(|(tx, store)| ShardState {
                tx: tx.clone(),
                published: Mutex::new(Arc::new(Snapshot {
                    version: 0,
                    views: BTreeMap::new(),
                })),
                queue_depth: AtomicU64::new(0),
                shed_updates: AtomicU64::new(0),
                deadline_misses: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                degraded_entered: AtomicU64::new(0),
                wal_bytes: AtomicU64::new(store.as_ref().map_or(0, DurableStore::wal_bytes)),
                last_checkpoint_seq: AtomicU64::new(
                    store.as_ref().map_or(0, DurableStore::last_checkpoint_seq),
                ),
            })
            .collect();
        let shared = Arc::new(Shared {
            derived: program.derived_preds(),
            program,
            strategy: config.strategy,
            limits: config.limits,
            shards: shard_states,
            version: AtomicU64::new(0),
            key_cache: Mutex::new(HashMap::new()),
            response_cache: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            queries_served: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            views_evicted: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            inflight_requests: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            write_timeout: config.write_timeout,
            max_queue_depth: config.max_queue_depth,
            writer_deadline: config.writer_deadline,
            faults,
        });

        let view_ttl = (config.view_ttl > Duration::ZERO).then_some(config.view_ttl);
        let mut writer_threads = Vec::with_capacity(shards);
        let shard_inits = rxs
            .into_iter()
            .zip(catalogs)
            .zip(dbs.into_iter().zip(stores));
        for (i, ((rx, catalog), (db, store))) in shard_inits.enumerate() {
            let peer_txs: Vec<Sender<WriterCmd>> = txs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, tx)| tx.clone())
                .collect();
            let init = WriterInit {
                idx: i,
                rx,
                catalog,
                db,
                store,
                peer_txs,
            };
            let writer_shared = Arc::clone(&shared);
            writer_threads.push(
                std::thread::Builder::new()
                    .name(format!("magic-serve-writer-{i}"))
                    .spawn(move || writer_loop(writer_shared, init, config.batch_max, view_ttl))?,
            );
        }

        let reader_count = if config.reader_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8)
        } else {
            config.reader_threads
        };
        let idle = config
            .read_timeout
            .clamp(Duration::from_micros(200), Duration::from_millis(1));
        let mut reader_txs = Vec::with_capacity(reader_count);
        let mut reader_threads = Vec::with_capacity(reader_count);
        for i in 0..reader_count {
            let (tx, rx) = channel::<NewConn>();
            reader_txs.push(tx);
            let reader_shared = Arc::clone(&shared);
            reader_threads.push(
                std::thread::Builder::new()
                    .name(format!("magic-serve-reader-{i}"))
                    .spawn(move || reader_loop(reader_shared, rx, idle))?,
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("magic-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, reader_txs))?;

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            writer_threads,
            reader_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far (across all connections).
    pub fn queries_served(&self) -> u64 {
        self.shared.queries_served.load(Ordering::Relaxed)
    }

    /// State-changing updates applied and published so far.
    pub fn updates_applied(&self) -> u64 {
        self.shared.updates_applied.load(Ordering::Relaxed)
    }

    /// Stop accepting, stop every writer shard, let the reader pool
    /// drop its connections and join every thread.  Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.writer_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.reader_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Which durable operation failed — and therefore what the degraded-mode
/// probe retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DegradedCause {
    /// A WAL append or fsync failed; the probe heals the log tail and
    /// proves an empty append round-trips.
    Wal,
    /// A checkpoint failed (acked state is still WAL-safe); the probe
    /// retries the checkpoint.
    Checkpoint,
}

impl DegradedCause {
    fn noun(self) -> &'static str {
        match self {
            DegradedCause::Wal => "WAL append",
            DegradedCause::Checkpoint => "checkpoint",
        }
    }
}

/// Flip one shard into read-only degraded mode (idempotent on the
/// counters: re-entering while already degraded only updates the cause).
fn enter_degraded(
    shard: &ShardState,
    degraded_cause: &mut Option<DegradedCause>,
    probe_backoff: &mut Duration,
    next_probe: &mut Option<Instant>,
    cause: DegradedCause,
) {
    if degraded_cause.is_none() {
        shard.degraded.store(true, Ordering::Release);
        shard.degraded_entered.fetch_add(1, Ordering::Relaxed);
    }
    *degraded_cause = Some(cause);
    *probe_backoff = PROBE_BACKOFF_MIN;
    *next_probe = Some(Instant::now() + *probe_backoff);
}

/// One maintenance writer shard: drains its queue in batches, applies
/// updates homed on it to its base replica and the views it owns,
/// replicates to its peers, materializes late bindings, and publishes a
/// fresh snapshot after every change.
///
/// Publishing is incremental: `published` mirrors the shard's catalog
/// as a map of frozen per-view snapshots, and each publish cycle
/// replaces only the entries [`ViewCatalog::apply_all`] reported
/// changed (plus drops for evicted bindings and inserts for fresh
/// materializations).  The map clone handed to readers bumps one `Arc`
/// per view; no view data is copied for views the batch did not move.
fn writer_loop(
    shared: Arc<Shared>,
    init: WriterInit,
    batch_max: usize,
    view_ttl: Option<Duration>,
) {
    let WriterInit {
        idx,
        rx,
        mut catalog,
        db: mut base_db,
        mut store,
        peer_txs,
    } = init;
    let me = &shared.shards[idx];
    let shard_count = shared.shards.len();
    let mut last_version: u64 = 0;
    let mut published: BTreeMap<String, Arc<ViewSnapshot>> = BTreeMap::new();
    // Recovery may have handed us a warm catalog (re-materialized from
    // a checkpoint's exported bindings).  Publish those views up front:
    // a reader whose first query hits a recovered binding goes through
    // the materialize path, gets a cache hit (`fresh == false`, so no
    // publish happens there) and then reads the snapshot — which must
    // therefore already contain the view.
    for (key, _) in catalog.export_bindings() {
        if let Some(snap) = catalog.snapshot_view(&key) {
            published.insert(key, Arc::new(snap));
        }
    }
    if !published.is_empty() {
        me.publish(Snapshot {
            version: 0,
            views: published.clone(),
        });
    }
    // How often an idle writer wakes to sweep TTL-expired views: often
    // enough that staleness past the deadline stays a small fraction
    // of the TTL, bounded so tiny test TTLs don't busy-spin.
    let ttl_tick =
        view_ttl.map(|ttl| (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)));
    // Arities the program declares; facts that disagree with the program
    // or with a stored relation are rejected before they can reach
    // storage (whose insert path treats a wrong-arity row as a caller
    // bug and panics).
    let declared_arities = shared.program.predicate_arities().unwrap_or_default();
    // A command popped out of a batch drain that must be handled next.
    let mut deferred: Option<WriterCmd> = None;
    // Degraded mode: while `Some`, this shard's durable path is broken
    // — updates homed here are refused and a probe retries the failing
    // operation on a capped exponential backoff.  Owned by the writer;
    // mirrored to the shard's `degraded` flag for the connection-side
    // front-door check.  Replicated batches from healthy peers still
    // apply: they are already logged by their home shard.
    let mut degraded_cause: Option<DegradedCause> = None;
    let mut probe_backoff = PROBE_BACKOFF_MIN;
    let mut next_probe: Option<Instant> = None;
    'main: loop {
        // While degraded, bound the blocking receive by the time until
        // the next probe so recovery is never starved by an idle queue.
        let probe_wait = next_probe.map(|at| {
            at.saturating_duration_since(Instant::now())
                .max(Duration::from_millis(5))
        });
        let tick = match (probe_wait, ttl_tick) {
            (Some(p), Some(t)) => Some(p.min(t)),
            (Some(p), None) => Some(p),
            (None, t) => t,
        };
        let cmd: Option<WriterCmd> = match deferred.take() {
            Some(cmd) => Some(cmd),
            None => match tick {
                None => match rx.recv() {
                    Ok(cmd) => {
                        me.note_pop(&cmd);
                        Some(cmd)
                    }
                    Err(_) => break, // every sender is gone
                },
                Some(tick) => match rx.recv_timeout(tick) {
                    Ok(cmd) => {
                        me.note_pop(&cmd);
                        Some(cmd)
                    }
                    Err(RecvTimeoutError::Disconnected) => break 'main,
                    Err(RecvTimeoutError::Timeout) => {
                        // Idle maintenance: sweep views past their TTL.
                        // Eviction is never an error — a dropped
                        // binding re-materializes from `base_db` on
                        // next sight.  (The probe, the other idle duty,
                        // runs at the bottom of the loop body.)
                        let expired = catalog.evict_expired();
                        if !expired.is_empty() {
                            shared
                                .views_evicted
                                .fetch_add(expired.len() as u64, Ordering::Relaxed);
                            for key in &expired {
                                published.remove(key);
                            }
                            last_version = shared.next_version();
                            me.publish(Snapshot {
                                version: last_version,
                                views: published.clone(),
                            });
                        }
                        None
                    }
                },
            },
        };
        match cmd {
            None => {}
            Some(WriterCmd::Shutdown) => break,
            Some(WriterCmd::Materialize { query, reply }) => {
                match catalog.materialize_keyed(&shared.program, &query, &base_db) {
                    Ok((key, fresh)) => {
                        // A cache hit (two connections racing the first
                        // sight of one binding) changes nothing — the
                        // published snapshot already contains the view,
                        // so skip the publish entirely.
                        if fresh {
                            // Materializing may also have evicted cold
                            // bindings past the `max_views` cap: drop any
                            // published entry the catalog no longer holds.
                            published.retain(|k, _| catalog.contains(k));
                            // Under a pathologically tiny `max_views`
                            // the eviction sweep can claw back the very
                            // binding just materialized; that is an
                            // answerable error (the client's retry loop
                            // re-materializes), never a writer panic.
                            match catalog.snapshot_view(&key) {
                                Some(snap) => {
                                    published.insert(key.clone(), Arc::new(snap));
                                    last_version = shared.next_version();
                                    me.publish(Snapshot {
                                        version: last_version,
                                        views: published.clone(),
                                    });
                                    let _ = reply.send(Ok(key));
                                }
                                None => {
                                    // Still publish the sweep's drops so
                                    // readers don't hold stale entries.
                                    last_version = shared.next_version();
                                    me.publish(Snapshot {
                                        version: last_version,
                                        views: published.clone(),
                                    });
                                    let _ = reply.send(Err(format!(
                                        "view {key} was evicted immediately after \
                                         materialization (max_views is too small for \
                                         the working set); retry"
                                    )));
                                }
                            }
                        } else {
                            let _ = reply.send(Ok(key));
                        }
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e.to_string()));
                    }
                }
            }
            Some(WriterCmd::Replicate { updates, barrier }) => {
                // A batch a peer shard owns: it is already validated,
                // logged and rolled forward there.  Apply it to the
                // local base replica and whatever views this shard
                // owns, publish if anything moved, and arrive at the
                // barrier so the acks can go out.  Never logged here —
                // each WAL covers only its shard's home predicates.
                for update in updates.iter() {
                    match update {
                        Update::Insert(f) => base_db.insert_fact(f),
                        Update::Retract(f) => base_db.remove_fact(f),
                    };
                }
                let outcome = catalog.apply_all(updates.as_slice());
                let mut moved = false;
                if !outcome.evicted.is_empty() {
                    shared
                        .views_evicted
                        .fetch_add(outcome.evicted.len() as u64, Ordering::Relaxed);
                    for (key, _) in &outcome.evicted {
                        published.remove(key);
                    }
                    moved = true;
                }
                for key in &outcome.changed {
                    match catalog.snapshot_view(key) {
                        Some(snap) => {
                            published.insert(key.clone(), Arc::new(snap));
                        }
                        None => {
                            published.remove(key);
                            shared.views_evicted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    moved = true;
                }
                if moved {
                    last_version = shared.next_version();
                    me.publish(Snapshot {
                        version: last_version,
                        views: published.clone(),
                    });
                    barrier.arrive(last_version);
                } else {
                    barrier.arrive(0);
                }
            }
            Some(WriterCmd::Update { update: _, reply }) if degraded_cause.is_some() => {
                // The front door refuses updates while degraded, but a
                // command already queued when the flag rose races past
                // it and lands here; refuse it truthfully too.
                let cause = degraded_cause.expect("guard checked");
                let _ = reply.send(Err(format!(
                    "DEGRADED read-only: the last {} failed; updates are refused \
                     until a background probe restores the durable path",
                    cause.noun()
                )));
            }
            Some(WriterCmd::Update { update, reply }) => {
                // Batch: greedily drain more queued updates (writes are
                // serialized per shard anyway, and coalescing insertions
                // lets each view run one fixpoint re-entry for the whole
                // batch).
                let mut batch = vec![(update, reply)];
                while batch.len() < batch_max {
                    match rx.try_recv() {
                        Ok(cmd) => {
                            me.note_pop(&cmd);
                            match cmd {
                                WriterCmd::Update { update, reply } => {
                                    batch.push((update, reply));
                                }
                                other => {
                                    deferred = Some(other);
                                    break;
                                }
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Apply to the base replica, validating each fact's
                // arity *at application time* — against the database as
                // the batch has mutated it so far, falling back to the
                // program's declared arity.  (A single pre-pass would
                // miss two same-batch inserts of a brand new predicate
                // at different arities, and storage treats a
                // wrong-arity row as a caller bug and panics.)
                // Mismatches are answered immediately and dropped; the
                // base database then decides which survivors are state
                // changes — no-ops are acknowledged but never reach the
                // views.
                let mut changed: Vec<Update> = Vec::new();
                let mut acks: Vec<(UpdateReply, bool)> = Vec::new();
                for (update, reply) in batch {
                    let fact = update.fact();
                    let expected = base_db
                        .relation(&fact.pred)
                        .map(|rel| rel.arity())
                        .or_else(|| declared_arities.get(&fact.pred).copied());
                    if let Some(arity) = expected {
                        if arity != fact.arity() {
                            let _ = reply.send(Err(format!(
                                "arity mismatch: {} is stored with arity {arity}, \
                                 fact has arity {}",
                                fact.pred,
                                fact.arity()
                            )));
                            continue;
                        }
                    }
                    let is_change = match &update {
                        Update::Insert(f) => base_db.insert_fact(f),
                        Update::Retract(f) => base_db.remove_fact(f),
                    };
                    if is_change {
                        changed.push(update);
                    }
                    acks.push((reply, is_change));
                }
                // Write-ahead: the batch must be on this shard's log
                // *before* its snapshot publishes and its clients are
                // acked — "OK applied" promises the write survives a
                // crash.  If the log itself fails, the failed append is
                // scrubbed from the log (see [`DurableStore::log_batch`])
                // and the batch is rolled back out of the base replica —
                // exact inverses in reverse order, sound because
                // `changed` holds only state-changers.  Memory, disk and
                // the refusal acks then agree: the batch never happened.
                // The views never see it, the peers are never told, and
                // this shard enters read-only degraded mode.
                let mut log_failure: Option<String> = None;
                if !changed.is_empty() {
                    if let Some(store) = store.as_mut() {
                        if let Err(e) = store.log_batch(&changed) {
                            for u in changed.iter().rev() {
                                match u {
                                    Update::Insert(f) => {
                                        base_db.remove_fact(f);
                                    }
                                    Update::Retract(f) => {
                                        base_db.insert_fact(f);
                                    }
                                }
                            }
                            log_failure = Some(e.to_string());
                        }
                        me.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
                    }
                }
                if log_failure.is_none() && !changed.is_empty() {
                    // A view whose maintenance fails is evicted by
                    // `apply_all` (it re-materializes from `base_db` on
                    // next sight), so the batch is never half-applied:
                    // every surviving view and the base database agree on
                    // the same update prefix, and the acknowledgments
                    // below stay truthful.
                    let outcome = catalog.apply_all(&changed);
                    if !outcome.evicted.is_empty() {
                        shared
                            .views_evicted
                            .fetch_add(outcome.evicted.len() as u64, Ordering::Relaxed);
                    }
                    // Incremental republish: drop evicted entries,
                    // re-freeze exactly the views this batch moved (each
                    // re-freeze is an O(relations) COW clone), keep every
                    // other published `Arc` as-is.
                    for (key, _) in &outcome.evicted {
                        published.remove(key);
                    }
                    for key in &outcome.changed {
                        // A changed binding should still be live, but if
                        // the catalog dropped it anyway (eviction racing
                        // maintenance), dropping the published entry is
                        // the correct degraded answer — the next query
                        // re-materializes — and beats a writer panic,
                        // which would wedge every future update.
                        match catalog.snapshot_view(key) {
                            Some(snap) => {
                                published.insert(key.clone(), Arc::new(snap));
                            }
                            None => {
                                published.remove(key);
                                shared.views_evicted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    last_version = shared.next_version();
                    me.publish(Snapshot {
                        version: last_version,
                        views: published.clone(),
                    });
                    shared
                        .updates_applied
                        .fetch_add(changed.len() as u64, Ordering::Relaxed);
                }
                // Enter degraded mode *before* the refusal acks go out:
                // a client that saw `ERR DEGRADED` must already find
                // the flag raised when it asks `STATS`.
                if let Some(detail) = &log_failure {
                    eprintln!(
                        "magic-serve: WAL append failed on shard {idx}, entering \
                         read-only degraded mode: {detail}"
                    );
                    enter_degraded(
                        me,
                        &mut degraded_cause,
                        &mut probe_backoff,
                        &mut next_probe,
                        DegradedCause::Wal,
                    );
                    for (reply, _) in acks {
                        let _ = reply.send(Err(format!(
                            "DEGRADED update refused: WAL append failed ({detail}); \
                             the batch was rolled back and the shard is read-only \
                             until the durable path recovers"
                        )));
                    }
                } else if changed.is_empty() || peer_txs.is_empty() {
                    // Nothing to replicate (all no-ops) or the classic
                    // single-shard layout: ack directly.
                    for (reply, applied) in acks {
                        let _ = reply.send(Ok((applied, last_version)));
                    }
                } else {
                    // Fan the batch out; the last peer to publish
                    // delivers the acks.  Forwarding from here (not the
                    // connection threads) keeps all of one predicate's
                    // updates flowing to every replica in home-shard
                    // order — std channels are per-sender FIFO.  Sends
                    // are nonblocking, so shards never wait on each
                    // other; a dead peer (shutdown race) counts as
                    // arrived so the acks still go out.
                    let barrier = Arc::new(BatchBarrier::new(peer_txs.len(), last_version, acks));
                    let updates = Arc::new(changed);
                    for tx in &peer_txs {
                        let cmd = WriterCmd::Replicate {
                            updates: Arc::clone(&updates),
                            barrier: Arc::clone(&barrier),
                        };
                        if tx.send(cmd).is_err() {
                            barrier.arrive(0);
                        }
                    }
                }
                // Checkpoint *after* acking: the cadence check rides
                // the batch that crossed it, but clients never wait
                // on a whole-partition freeze.
                if log_failure.is_none() {
                    if let Some(store) = store.as_mut() {
                        if store.should_checkpoint() {
                            let result = if peer_txs.is_empty() {
                                store.checkpoint(&base_db, &catalog.export_bindings())
                            } else {
                                store.checkpoint(
                                    &project_home(&base_db, idx, shard_count),
                                    &catalog.export_bindings(),
                                )
                            };
                            match result {
                                Ok(()) => {
                                    me.last_checkpoint_seq
                                        .store(store.last_checkpoint_seq(), Ordering::Relaxed);
                                }
                                Err(e) => {
                                    // The WAL is intact and every ack
                                    // sent was honest — durability still
                                    // holds, recovery just replays a
                                    // longer tail.  But a store that
                                    // cannot checkpoint is sick (disk
                                    // full, permissions), so enter
                                    // degraded mode and let the probe
                                    // retry on backoff rather than
                                    // piling more acked writes onto an
                                    // unbounded WAL tail.
                                    eprintln!(
                                        "magic-serve: checkpoint failed on shard {idx}, \
                                         entering read-only degraded mode: {e}"
                                    );
                                    enter_degraded(
                                        me,
                                        &mut degraded_cause,
                                        &mut probe_backoff,
                                        &mut next_probe,
                                        DegradedCause::Checkpoint,
                                    );
                                }
                            }
                            me.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        // Degraded-mode probe: when due, retry the failing durable
        // operation; on success clear the flag and resume accepting
        // updates, on failure back off (capped exponential).  Checked
        // after every command *and* on idle ticks, so neither a busy
        // read path nor an empty queue can starve recovery.
        if let Some(cause) = degraded_cause {
            let due = next_probe.is_none_or(|at| Instant::now() >= at);
            if due {
                if let Some(store) = store.as_mut() {
                    let outcome = match cause {
                        DegradedCause::Wal => store.probe(),
                        DegradedCause::Checkpoint => {
                            if peer_txs.is_empty() {
                                store.checkpoint(&base_db, &catalog.export_bindings())
                            } else {
                                store.checkpoint(
                                    &project_home(&base_db, idx, shard_count),
                                    &catalog.export_bindings(),
                                )
                            }
                        }
                    };
                    match outcome {
                        Ok(()) => {
                            eprintln!(
                                "magic-serve: durable path recovered on shard {idx} \
                                 ({} probe succeeded); leaving degraded mode",
                                cause.noun()
                            );
                            degraded_cause = None;
                            next_probe = None;
                            probe_backoff = PROBE_BACKOFF_MIN;
                            me.degraded.store(false, Ordering::Release);
                            me.last_checkpoint_seq
                                .store(store.last_checkpoint_seq(), Ordering::Relaxed);
                        }
                        Err(_) => {
                            next_probe = Some(Instant::now() + probe_backoff);
                            probe_backoff = (probe_backoff * 2).min(PROBE_BACKOFF_MAX);
                        }
                    }
                    me.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
                } else {
                    // No store: degraded mode is unreachable, but be
                    // safe and self-heal rather than probing forever.
                    degraded_cause = None;
                    next_probe = None;
                    me.degraded.store(false, Ordering::Release);
                }
            }
        }
    }
    // Clean exit: push whatever the fsync policy deferred to disk, so a
    // graceful shutdown under `FsyncPolicy::Never`/`EveryN` loses
    // nothing even to a machine crash right after.
    if let Some(store) = store.as_mut() {
        let _ = store.sync();
    }
}

/// A connection on its way from the accept loop to a reader thread.
struct NewConn {
    stream: TcpStream,
    /// Injected connection stall (tests only): the pump ignores the
    /// connection until this instant, without parking the thread.
    ready_at: Option<Instant>,
}

/// Accept connections (nonblocking, shutdown-aware) and deal them
/// round-robin to the reader pool.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, reader_txs: Vec<Sender<NewConn>>) {
    let mut next = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                // Injected connection faults (tests only —
                // `shared.faults` is `None` in production).  A drop
                // closes the socket before any request is read; a
                // stall defers the first pump without parking anything.
                let mut ready_at = None;
                if let Some(plan) = &shared.faults {
                    match plan.on_connection() {
                        ConnFault::Drop => {
                            drop(stream);
                            continue;
                        }
                        ConnFault::Stall(d) => ready_at = Some(Instant::now() + d),
                        ConnFault::None => {}
                    }
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                let mut conn = NewConn { stream, ready_at };
                // Round-robin; skip readers that already exited.
                for _ in 0..reader_txs.len() {
                    let tx = &reader_txs[next % reader_txs.len()];
                    next = next.wrapping_add(1);
                    match tx.send(conn) {
                        Ok(()) => break,
                        Err(returned) => conn = returned.0,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One reader-pool thread: pump every owned connection; sleep only
/// when a full pass over all of them made no progress.
fn reader_loop(shared: Arc<Shared>, rx: Receiver<NewConn>, idle: Duration) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            for conn in conns.drain(..) {
                conn.abandon(&shared);
            }
            return;
        }
        let mut progress = false;
        loop {
            match rx.try_recv() {
                Ok(new) => {
                    conns.push(Conn::new(new));
                    progress = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let (moved, alive) = conns[i].pump(&shared);
            progress |= moved;
            if alive {
                i += 1;
            } else {
                conns.swap_remove(i).abandon(&shared);
            }
        }
        if !progress {
            std::thread::sleep(idle);
        }
    }
}

/// Wire protocol of one pumped connection, decided by the first bytes.
enum ConnMode {
    /// Nothing (or only a proper prefix of the magic) received yet.
    Unknown,
    /// Line-oriented text protocol; responses in strict request order.
    Text,
    /// `MGWP01` framed protocol; responses in completion order.
    Binary,
}

/// One decoded request awaiting its response bytes.
struct Slot {
    /// Binary request id (0 and unused in text mode).
    req_id: u64,
    state: SlotState,
}

/// Lifecycle of a request: either its response bytes are ready, or it
/// is parked on a writer-shard reply channel the pump polls.
enum SlotState {
    /// Response bytes in text-protocol form, ready to stage.
    Ready(Vec<u8>),
    /// An update in flight to its home shard.
    AwaitUpdate {
        rx: UpdateRx,
        shard: usize,
        deadline: Option<Instant>,
    },
    /// A first-sight query waiting for its view to materialize.
    AwaitMaterialize {
        rx: MaterializeRx,
        query: Query,
        shard: usize,
        attempts: u32,
        deadline: Option<Instant>,
    },
}

/// One pumped connection: buffers, mode, and the in-flight request
/// window.
struct Conn {
    stream: TcpStream,
    mode: ConnMode,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    pending: VecDeque<Slot>,
    ready_at: Option<Instant>,
    eof: bool,
    /// `QUIT`/`SHUTDOWN` seen: stop decoding, flush, then close.
    closing: bool,
    write_stuck_since: Option<Instant>,
}

impl Conn {
    fn new(new: NewConn) -> Conn {
        Conn {
            stream: new.stream,
            mode: ConnMode::Unknown,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            pending: VecDeque::new(),
            ready_at: new.ready_at,
            eof: false,
            closing: false,
            write_stuck_since: None,
        }
    }

    /// Drop the connection, releasing whatever it still holds against
    /// the in-flight gauge.
    fn abandon(self, shared: &Shared) {
        shared
            .inflight_requests
            .fetch_sub(self.pending.len() as u64, Ordering::Relaxed);
    }

    /// One nonblocking service pass: read, decode, dispatch, poll
    /// writer replies, stage and write responses.  Returns (made
    /// progress, still alive); a dead connection must be handed to
    /// [`Conn::abandon`].
    fn pump(&mut self, shared: &Shared) -> (bool, bool) {
        if let Some(at) = self.ready_at {
            if Instant::now() < at {
                return (false, true);
            }
            self.ready_at = None;
        }
        let mut progress = false;
        // Pull whatever the socket holds (bounded per pass so one loud
        // client cannot starve its siblings on the same reader).
        if !self.eof && !self.closing {
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend_from_slice(&chunk[..n]);
                        progress = true;
                        if self.inbuf.len() >= MAX_LINE {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return (true, false),
                }
            }
        }
        // Protocol sniff: match the *full* binary magic (never a
        // first-byte heuristic — `M` is printable) before committing.
        if matches!(self.mode, ConnMode::Unknown) && !self.inbuf.is_empty() {
            match sniff(&self.inbuf) {
                Sniff::Binary => {
                    self.inbuf.drain(..BINARY_MAGIC.len());
                    self.mode = ConnMode::Binary;
                    progress = true;
                }
                Sniff::Text => {
                    self.mode = ConnMode::Text;
                    progress = true;
                }
                Sniff::Undecided => {
                    if self.eof {
                        return (progress, false);
                    }
                }
            }
        }
        // Decode and dispatch every complete request in the buffer —
        // this is the batching that amortizes the wire round-trip.
        let mut decoded = 0usize;
        match self.mode {
            ConnMode::Text => {
                while !self.closing {
                    let Some(i) = self.inbuf.iter().position(|&b| b == b'\n') else {
                        if self.inbuf.len() > MAX_LINE {
                            return (true, false);
                        }
                        break;
                    };
                    let mut line: Vec<u8> = self.inbuf.drain(..=i).collect();
                    line.pop(); // the newline
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let line = String::from_utf8_lossy(&line).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    decoded += 1;
                    self.handle_text(shared, &line);
                }
            }
            ConnMode::Binary => loop {
                match Frame::decode(&self.inbuf) {
                    Ok(Some((frame, used))) => {
                        self.inbuf.drain(..used);
                        decoded += 1;
                        self.handle_frame(shared, frame);
                    }
                    Ok(None) => break,
                    // Framing is beyond resync; nothing correlatable
                    // can be sent back.
                    Err(_) => return (true, false),
                }
            },
            ConnMode::Unknown => {}
        }
        if decoded > 0 {
            progress = true;
            shared.record_batch(decoded);
        }
        // Advance parked requests.
        for slot in self.pending.iter_mut() {
            if poll_slot(shared, slot) {
                progress = true;
            }
        }
        // Stage completed responses: text strictly in request order,
        // binary in completion order (each framed with its id).
        match self.mode {
            ConnMode::Binary => {
                let outbuf = &mut self.outbuf;
                let mut staged = 0u64;
                self.pending.retain_mut(|slot| {
                    if let SlotState::Ready(bytes) = &slot.state {
                        outbuf.extend_from_slice(&frame_response(slot.req_id, bytes));
                        staged += 1;
                        false
                    } else {
                        true
                    }
                });
                if staged > 0 {
                    shared
                        .inflight_requests
                        .fetch_sub(staged, Ordering::Relaxed);
                    progress = true;
                }
            }
            _ => {
                while matches!(
                    self.pending.front(),
                    Some(Slot {
                        state: SlotState::Ready(_),
                        ..
                    })
                ) {
                    let slot = self.pending.pop_front().expect("front checked");
                    let SlotState::Ready(bytes) = slot.state else {
                        unreachable!("front checked Ready")
                    };
                    self.outbuf.extend_from_slice(&bytes);
                    shared.inflight_requests.fetch_sub(1, Ordering::Relaxed);
                    progress = true;
                }
            }
        }
        if !self.outbuf.is_empty() {
            match self.flush(shared) {
                Ok(moved) => progress |= moved,
                Err(()) => return (true, false),
            }
        }
        let drained = self.pending.is_empty() && self.outbuf.is_empty();
        if (self.closing || self.eof) && drained {
            return (progress, false);
        }
        (progress, true)
    }

    /// Nonblocking write of the staged response bytes, with the
    /// stalled-client bound [`ServeConfig::write_timeout`] implements.
    fn flush(&mut self, shared: &Shared) -> Result<bool, ()> {
        let mut progress = false;
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    shared.write_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(());
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    self.write_stuck_since = None;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let now = Instant::now();
                    let since = *self.write_stuck_since.get_or_insert(now);
                    if !shared.write_timeout.is_zero()
                        && now.duration_since(since) > shared.write_timeout
                    {
                        shared.write_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "magic-serve: client write stalled past the write \
                             timeout, closing connection"
                        );
                        return Err(());
                    }
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.write_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("magic-serve: client write failed, closing connection: {e}");
                    return Err(());
                }
            }
        }
        Ok(progress)
    }

    /// Dispatch one text-protocol request line.
    fn handle_text(&mut self, shared: &Shared, line: &str) {
        let state = match parse_request(line) {
            Err(e) => ready_err(&e),
            Ok(Request::Ping) => SlotState::Ready(b"OK pong\n".to_vec()),
            Ok(Request::Quit) => {
                self.closing = true;
                SlotState::Ready(b"OK bye\n".to_vec())
            }
            Ok(Request::Shutdown) => {
                self.closing = true;
                shared.begin_shutdown();
                SlotState::Ready(b"OK bye\n".to_vec())
            }
            Ok(Request::Query(query)) => start_query(shared, query),
            Ok(Request::Insert(fact)) => start_update(shared, Update::Insert(fact)),
            Ok(Request::Retract(fact)) => start_update(shared, Update::Retract(fact)),
            Ok(Request::Stats) => SlotState::Ready(gather_stats(shared).render().into_bytes()),
        };
        self.push_slot(shared, 0, state);
    }

    /// Dispatch one binary-protocol request frame.
    fn handle_frame(&mut self, shared: &Shared, frame: Frame) {
        let state = match frame.tag {
            op::PING => SlotState::Ready(b"OK pong\n".to_vec()),
            op::STATS => SlotState::Ready(gather_stats(shared).render().into_bytes()),
            op::QUERY | op::INSERT | op::RETRACT => match std::str::from_utf8(&frame.body) {
                Err(_) => ready_err("request body is not UTF-8"),
                Ok(body) => match frame.tag {
                    op::QUERY => match parse_query(body.trim()) {
                        Ok(query) => start_query(shared, query),
                        Err(e) => ready_err(&format!("bad query: {e}")),
                    },
                    op::INSERT => match parse_fact(body.trim()) {
                        Ok(fact) => start_update(shared, Update::Insert(fact)),
                        Err(e) => ready_err(&e),
                    },
                    _ => match parse_fact(body.trim()) {
                        Ok(fact) => start_update(shared, Update::Retract(fact)),
                        Err(e) => ready_err(&e),
                    },
                },
            },
            other => ready_err(&format!(
                "unknown binary op {other} (expected QUERY=1, INSERT=2, RETRACT=3, \
                 STATS=4 or PING=5)"
            )),
        };
        self.push_slot(shared, frame.req_id, state);
    }

    fn push_slot(&mut self, shared: &Shared, req_id: u64, state: SlotState) {
        shared.inflight_requests.fetch_add(1, Ordering::Relaxed);
        self.pending.push_back(Slot { req_id, state });
    }
}

/// Wrap finished response bytes (text-protocol form) into a binary
/// response frame for `req_id`.
fn frame_response(req_id: u64, bytes: &[u8]) -> Vec<u8> {
    let (tag, body) = match bytes.strip_prefix(b"ERR ") {
        Some(msg) => (status::ERR, msg.strip_suffix(b"\n").unwrap_or(msg)),
        None => (status::OK, bytes),
    };
    Frame {
        req_id,
        tag,
        body: body.to_vec(),
    }
    .encode()
}

fn ready_err(message: &str) -> SlotState {
    SlotState::Ready(render_error(message).into_bytes())
}

/// The read path: translate the query to its binding key (planned on
/// this thread, memoized per query text), answer from the owning
/// shard's published snapshot, materializing through that shard only
/// on first sight of a binding.
fn start_query(shared: &Shared, query: Query) -> SlotState {
    let text = query.atom.to_string();
    let cached = shared
        .key_cache
        .lock()
        .expect("key cache lock")
        .get(&text)
        .cloned();
    let key = match cached {
        Some(key) => Some(key),
        None => match shared.binding_key(&query) {
            Ok(key) => {
                shared
                    .key_cache
                    .lock()
                    .expect("key cache lock")
                    .insert(text, key.clone());
                Some(key)
            }
            // A query that does not plan is routed through a writer
            // below so the refusal carries the catalog's canonical
            // message.
            Err(_) => None,
        },
    };
    if let Some(key) = &key {
        let shard = shared.shard_of_key(key);
        let snapshot = shared.shards[shard].snapshot();
        if let Some(view) = snapshot.views.get(key) {
            shared.queries_served.fetch_add(1, Ordering::Relaxed);
            if let Some(body) = shared.cached_response(key, snapshot.version) {
                return SlotState::Ready(body);
            }
            let rows: Vec<Vec<Value>> = view.answers().into_iter().collect();
            let body = render_answers(key, snapshot.version, &rows).into_bytes();
            shared.cache_response(key, snapshot.version, &body);
            return SlotState::Ready(body);
        }
        // Key known but the view is not in this snapshot: first sight,
        // an eviction (failed maintenance), or a raced materialization.
        // The owning shard's materialize path is idempotent for live
        // bindings and rebuilds evicted ones.
    }
    let shard = key.as_deref().map_or(0, |k| shared.shard_of_key(k));
    issue_materialize(shared, query, shard, 1)
}

/// Park a query on the owning shard's materialize path (attempt
/// `attempts` of 3 — materialize-then-read can race an eviction, and
/// each retry rebuilds from the current base facts).
fn issue_materialize(shared: &Shared, query: Query, shard: usize, attempts: u32) -> SlotState {
    let (tx, rx) = channel();
    let state = &shared.shards[shard];
    state.queue_depth.fetch_add(1, Ordering::Relaxed);
    let cmd = WriterCmd::Materialize {
        query: query.clone(),
        reply: tx,
    };
    if state.tx.send(cmd).is_err() {
        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        return ready_err("server is shutting down");
    }
    SlotState::AwaitMaterialize {
        rx,
        query,
        shard,
        attempts,
        deadline: shared.slot_deadline(),
    }
}

/// The write path: validate against the source program, shed if the
/// home shard is degraded or its queue is at capacity, otherwise
/// enqueue to the home shard; the slot then waits (bounded by the
/// writer deadline) until the containing snapshot is published on
/// every shard.
///
/// The three structured refusals a client can see here, and what they
/// promise:
/// * `ERR DEGRADED …` — not applied, and retrying now will not help;
///   wait for the shard to recover (poll `STATS degraded`).
/// * `ERR BUSY <retry-after-ms> …` — not applied; retry after the
///   hinted backoff.
/// * `ERR TIMEOUT …` — outcome *unknown*: the command is still queued
///   and may apply later.  Only idempotent retries are safe.
fn start_update(shared: &Shared, update: Update) -> SlotState {
    let fact = update.fact();
    if shared.derived.contains(&fact.pred) {
        return ready_err(&format!(
            "{} is derived by the program; derived predicates are maintained, not edited",
            fact.pred
        ));
    }
    let shard = shard_of(&fact.pred.to_string(), shared.shards.len());
    let state = &shared.shards[shard];
    if state.degraded.load(Ordering::Acquire) {
        return ready_err(
            "DEGRADED read-only: the durable path is failing; updates are \
             refused while a background probe retries it",
        );
    }
    if shared.max_queue_depth > 0
        && state.queue_depth.load(Ordering::Relaxed) >= shared.max_queue_depth as u64
    {
        state.shed_updates.fetch_add(1, Ordering::Relaxed);
        return ready_err(&format!(
            "BUSY {BUSY_RETRY_AFTER_MS} writer queue is at capacity ({}); \
             retry after the hinted backoff",
            shared.max_queue_depth
        ));
    }
    let (tx, rx) = channel();
    state.queue_depth.fetch_add(1, Ordering::Relaxed);
    if state
        .tx
        .send(WriterCmd::Update { update, reply: tx })
        .is_err()
    {
        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        return ready_err("server is shutting down");
    }
    SlotState::AwaitUpdate {
        rx,
        shard,
        deadline: shared.slot_deadline(),
    }
}

/// Deadline bookkeeping for a parked slot: `None` to keep waiting, or
/// the `TIMEOUT` refusal once the writer deadline passes.  On expiry
/// the command is *not* revoked — it stays queued and may apply later
/// — so the message says "outcome unknown", and the writer's eventual
/// reply lands on a disconnected channel (harmless).
fn deadline_check(shared: &Shared, shard: usize, deadline: Option<Instant>) -> Option<SlotState> {
    let at = deadline?;
    if Instant::now() < at {
        return None;
    }
    shared.shards[shard]
        .deadline_misses
        .fetch_add(1, Ordering::Relaxed);
    Some(ready_err(&format!(
        "TIMEOUT writer did not respond within {}ms; the command is \
         still queued and may yet apply",
        shared.writer_deadline.as_millis()
    )))
}

/// Advance one parked slot; true if its state changed.
fn poll_slot(shared: &Shared, slot: &mut Slot) -> bool {
    let next = match &mut slot.state {
        SlotState::Ready(_) => None,
        SlotState::AwaitUpdate {
            rx,
            shard,
            deadline,
        } => match rx.try_recv() {
            Ok(Ok((applied, version))) => {
                Some(SlotState::Ready(render_ack(applied, version).into_bytes()))
            }
            Ok(Err(e)) => Some(ready_err(&e)),
            Err(TryRecvError::Disconnected) => Some(ready_err("server is shutting down")),
            Err(TryRecvError::Empty) => deadline_check(shared, *shard, *deadline),
        },
        SlotState::AwaitMaterialize {
            rx,
            query,
            shard,
            attempts,
            deadline,
        } => match rx.try_recv() {
            Ok(Ok(key)) => {
                shared
                    .key_cache
                    .lock()
                    .expect("key cache lock")
                    .insert(query.atom.to_string(), key.clone());
                let vshard = shared.shard_of_key(&key);
                let snapshot = shared.shards[vshard].snapshot();
                if let Some(view) = snapshot.views.get(&key) {
                    shared.queries_served.fetch_add(1, Ordering::Relaxed);
                    if let Some(body) = shared.cached_response(&key, snapshot.version) {
                        Some(SlotState::Ready(body))
                    } else {
                        let rows: Vec<Vec<Value>> = view.answers().into_iter().collect();
                        let body = render_answers(&key, snapshot.version, &rows).into_bytes();
                        shared.cache_response(&key, snapshot.version, &body);
                        Some(SlotState::Ready(body))
                    }
                } else if *attempts < 3 {
                    Some(issue_materialize(
                        shared,
                        query.clone(),
                        vshard,
                        *attempts + 1,
                    ))
                } else {
                    Some(ready_err(&format!(
                        "view for {} was repeatedly evicted while answering; its \
                         maintenance is failing",
                        query.atom
                    )))
                }
            }
            Ok(Err(e)) => Some(ready_err(&e)),
            Err(TryRecvError::Disconnected) => Some(ready_err("server is shutting down")),
            Err(TryRecvError::Empty) => deadline_check(shared, *shard, *deadline),
        },
    };
    match next {
        Some(state) => {
            slot.state = state;
            true
        }
        None => false,
    }
}

/// Assemble the `STATS` response from the shared counters and every
/// shard's published snapshot.
fn gather_stats(shared: &Shared) -> ServerStats {
    let mut totals = EvalStats::default();
    let mut per_view_map: BTreeMap<String, ViewStats> = BTreeMap::new();
    let mut version = 0u64;
    let mut views = 0u64;
    let mut recompute_views = 0u64;
    for shard in &shared.shards {
        let snapshot = shard.snapshot();
        version = version.max(snapshot.version);
        views += snapshot.views.len() as u64;
        for (key, view) in &snapshot.views {
            totals.merge(view.stats());
            if view.recompute_reason().is_some() {
                recompute_views += 1;
            }
            per_view_map.insert(
                key.clone(),
                ViewStats {
                    key: key.clone(),
                    facts: view.database().total_facts() as u64,
                    rule_firings: view.stats().rule_firings as u64,
                    join_probes: view.stats().join_probes as u64,
                    recomputes: view.recompute_count(),
                    recompute_reason: view.recompute_reason().unwrap_or("").to_string(),
                },
            );
        }
    }
    let per_shard: Vec<ShardStats> = shared
        .shards
        .iter()
        .enumerate()
        .map(|(index, shard)| ShardStats {
            index: index as u64,
            queue_depth: shard.queue_depth.load(Ordering::Relaxed),
            shed_updates: shard.shed_updates.load(Ordering::Relaxed),
            deadline_misses: shard.deadline_misses.load(Ordering::Relaxed),
            degraded: shard.degraded.load(Ordering::Acquire) as u64,
            degraded_entered: shard.degraded_entered.load(Ordering::Relaxed),
            wal_bytes: shard.wal_bytes.load(Ordering::Relaxed),
            last_checkpoint: shard.last_checkpoint_seq.load(Ordering::Relaxed),
        })
        .collect();
    ServerStats {
        version,
        views,
        queries_served: shared.queries_served.load(Ordering::Relaxed),
        updates_applied: shared.updates_applied.load(Ordering::Relaxed),
        connections: shared.connections.load(Ordering::Relaxed),
        views_evicted: shared.views_evicted.load(Ordering::Relaxed),
        iterations: totals.iterations as u64,
        rule_firings: totals.rule_firings as u64,
        facts_derived: totals.facts_derived as u64,
        duplicate_derivations: totals.duplicate_derivations as u64,
        join_probes: totals.join_probes as u64,
        wal_bytes: per_shard.iter().map(|s| s.wal_bytes).sum(),
        last_checkpoint: per_shard
            .iter()
            .map(|s| s.last_checkpoint)
            .max()
            .unwrap_or(0),
        write_errors: shared.write_errors.load(Ordering::Relaxed),
        queue_depth: per_shard.iter().map(|s| s.queue_depth).sum(),
        shed_updates: per_shard.iter().map(|s| s.shed_updates).sum(),
        deadline_misses: per_shard.iter().map(|s| s.deadline_misses).sum(),
        degraded: per_shard.iter().map(|s| s.degraded).sum(),
        degraded_entered: per_shard.iter().map(|s| s.degraded_entered).sum(),
        writer_shards: shared.shards.len() as u64,
        inflight_requests: shared.inflight_requests.load(Ordering::Relaxed),
        batch_size_p50: shared.batch_p50(),
        recompute_views,
        per_view: per_view_map.into_values().collect(),
        per_shard,
    }
}
