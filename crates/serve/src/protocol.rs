//! The wire protocol: a minimal line-oriented request/response format.
//!
//! The build environment is intentionally dependency-free (no crates.io),
//! so the protocol is hand-rolled in-tree like the workspace's other
//! offline stubs: plain UTF-8 lines over TCP, one request per line,
//! human-typable with `nc`.
//!
//! # Requests
//!
//! ```text
//! QUERY anc(john, Y)        plan/materialize on first sight, then answer
//! INSERT par(john, mary)    enqueue a base-fact insertion (acked when live)
//! RETRACT par(john, mary)   enqueue a base-fact retraction
//! STATS                     snapshot version, counters, per-view totals
//! PING                      liveness probe
//! QUIT                      close this connection
//! SHUTDOWN                  stop the whole server
//! ```
//!
//! # Responses
//!
//! Every response starts with `OK …` or `ERR <message>`.  Multi-line
//! responses (`QUERY`, `STATS`) are terminated by a line reading `END`.
//!
//! Three error messages are *structured* — their first token is a
//! machine-readable word that tells a client what a refused update
//! means (see [`crate::ClientError`] for the client-side mapping):
//!
//! ```text
//! ERR BUSY <retry-after-ms> <detail>   shed: NOT applied; retry after the hint
//! ERR TIMEOUT <detail>                 outcome UNKNOWN: still queued, may apply
//! ERR DEGRADED <detail>                NOT applied; server is read-only until
//!                                      its durable path recovers (STATS degraded)
//! ```
//!
//! * `QUERY` → `OK <count> <version> <key>` followed by `<count>` lines
//!   `ROW<TAB>v1<TAB>v2…` (one tab-separated value per free variable of
//!   the query; a boolean query's single row is a bare `ROW`), then `END`.
//!   `<version>` is the snapshot the answers were read from, `<key>` the
//!   adorned binding key the view is cached under (it may contain spaces,
//!   so it is always the final header field).
//! * `INSERT` / `RETRACT` → `OK applied <version>` once the update is in
//!   the published snapshot `<version>`, or `OK noop <version>` when it
//!   was a no-op (duplicate insert / absent retract).
//! * `STATS` → `OK stats`, `name=value` lines, one
//!   `view<TAB><key><TAB>facts=<n><TAB>firings=<n><TAB>probes=<n>` line
//!   per cached view, then `END`.
//! * `PING` → `OK pong`; `QUIT`/`SHUTDOWN` → `OK bye`.
//!
//! Values use the Datalog term syntax on the wire in both directions
//! (symbols, integers, compound terms like `cons(a, nil)`), so
//! [`parse_term`](magic_datalog::parse_term) round-trips them; rows never
//! contain tabs or newlines, which is what makes the framing trivial.

use magic_datalog::{parse_query, Fact, Query, Value};

/// The binary protocol's connection preamble: a client that wants
/// pipelined framing opens its stream with exactly these six bytes.
///
/// The server sniffs the first bytes of every connection against this
/// magic **in full** — never just the first byte.  (`b'M'` is
/// printable, so a first-byte-only printability heuristic would
/// misclassify every binary connection as text; the full-magic check
/// is the regression guard.)  A text connection's first verb can never
/// collide: no request verb starts with `MGWP01`.
pub const BINARY_MAGIC: &[u8; 6] = b"MGWP01";

/// Hard cap on one binary frame's payload (16 MiB): a length prefix
/// past it is a protocol error, not an allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Binary request opcodes (the `tag` of a client→server [`Frame`]).
pub mod op {
    /// `QUERY` — body is the query atom text.
    pub const QUERY: u8 = 1;
    /// `INSERT` — body is the ground fact text.
    pub const INSERT: u8 = 2;
    /// `RETRACT` — body is the ground fact text.
    pub const RETRACT: u8 = 3;
    /// `STATS` — empty body.
    pub const STATS: u8 = 4;
    /// `PING` — empty body.
    pub const PING: u8 = 5;
}

/// Binary response status (the `tag` of a server→client [`Frame`]).
pub mod status {
    /// Success: the body is the text protocol's full `OK …` response
    /// for the request (including its `END` terminator when
    /// multi-line).
    pub const OK: u8 = 0;
    /// Refusal: the body is the error message, exactly the text after
    /// the text protocol's `ERR ` prefix (structured first tokens —
    /// `BUSY`/`TIMEOUT`/`DEGRADED` — included).
    pub const ERR: u8 = 1;
}

/// One binary frame, either direction:
///
/// ```text
/// [u32 LE payload-len][u64 LE request-id][u8 tag][body bytes]
/// ```
///
/// `payload-len` counts everything after the length word (so it is
/// `9 + body.len()`).  The request id is chosen by the client and
/// echoed verbatim in the response frame, which is what makes
/// pipelining work: a client may have any number of requests in
/// flight, and the server may answer them **out of order** — reads
/// complete from the published snapshot immediately while an update
/// ahead of them is still waiting on its writer shard.  The body is
/// UTF-8 text reusing the text protocol's grammar in both directions;
/// the frame layer adds what the text protocol lacks (request ids,
/// batching, out-of-order completion), not a second payload encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed in the response.
    pub req_id: u64,
    /// Request opcode ([`op`]) or response status ([`status`]).
    pub tag: u8,
    /// UTF-8 payload (request argument or response text).
    pub body: Vec<u8>,
}

impl Frame {
    /// Encode the frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let len = 9 + self.body.len();
        let mut out = Vec::with_capacity(4 + len);
        out.extend_from_slice(&(len as u32).to_le_bytes());
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.push(self.tag);
        out.extend_from_slice(&self.body);
        out
    }

    /// Decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a partial frame (read
    /// more and retry), `Ok(Some((frame, consumed)))` on success, and
    /// `Err` on an unframeable prefix (undersized or oversized length
    /// word) — the connection is beyond resync and should close.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, String> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len < 9 {
            return Err(format!("binary frame payload too short ({len} bytes)"));
        }
        if len > MAX_FRAME {
            return Err(format!(
                "binary frame payload of {len} bytes exceeds the {MAX_FRAME}-byte cap"
            ));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let mut req_id = [0u8; 8];
        req_id.copy_from_slice(&buf[4..12]);
        Ok(Some((
            Frame {
                req_id: u64::from_le_bytes(req_id),
                tag: buf[12],
                body: buf[13..4 + len].to_vec(),
            },
            4 + len,
        )))
    }
}

/// What a connection's opening bytes say about its protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sniff {
    /// Too few bytes to decide yet (everything so far is a proper
    /// prefix of [`BINARY_MAGIC`]): read more.
    Undecided,
    /// The stream opened with the full binary magic; the caller should
    /// consume [`BINARY_MAGIC`]`.len()` bytes and frame from there.
    Binary,
    /// Anything else: the line-oriented text protocol.
    Text,
}

/// Classify a connection's opening bytes.  The check matches the
/// *entire* magic, not a printability heuristic on the first byte —
/// `MGWP01` deliberately starts with a printable `M` so any sniff
/// shortcut fails loudly in tests rather than silently in production.
pub fn sniff(first_bytes: &[u8]) -> Sniff {
    let shared = first_bytes.len().min(BINARY_MAGIC.len());
    if first_bytes[..shared] != BINARY_MAGIC[..shared] {
        return Sniff::Text;
    }
    if first_bytes.len() >= BINARY_MAGIC.len() {
        Sniff::Binary
    } else {
        Sniff::Undecided
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `QUERY <atom>` — answer a (possibly non-ground) query.
    Query(Query),
    /// `INSERT <ground atom>` — insert a base fact.
    Insert(Fact),
    /// `RETRACT <ground atom>` — retract a base fact.
    Retract(Fact),
    /// `STATS` — report serving counters.
    Stats,
    /// `PING` — liveness probe.
    Ping,
    /// `QUIT` — close the connection.
    Quit,
    /// `SHUTDOWN` — stop the server.
    Shutdown,
}

/// Parse one request line (already stripped of its newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb {
        "QUERY" => {
            if rest.is_empty() {
                return Err("QUERY needs an atom, e.g. QUERY anc(john, Y)".into());
            }
            let query = parse_query(rest).map_err(|e| format!("bad query: {e}"))?;
            Ok(Request::Query(query))
        }
        "INSERT" => Ok(Request::Insert(parse_fact(rest)?)),
        "RETRACT" => Ok(Request::Retract(parse_fact(rest)?)),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown verb {other:?} (expected QUERY, INSERT, RETRACT, STATS, PING, QUIT or \
             SHUTDOWN)"
        )),
    }
}

/// Parse a ground atom like `par(john, mary)` into a [`Fact`].
pub fn parse_fact(text: &str) -> Result<Fact, String> {
    if text.is_empty() {
        return Err("expected a ground atom, e.g. par(john, mary)".into());
    }
    let query = parse_query(text).map_err(|e| format!("bad fact: {e}"))?;
    let values: Option<Vec<Value>> = query.atom.terms.iter().map(|t| t.to_value()).collect();
    match values {
        Some(values) => Ok(Fact::new(query.atom.pred, values)),
        None => Err(format!("fact must be ground: {text}")),
    }
}

/// Per-writer-shard counters reported by `STATS` (one `shard\t…` line
/// each).  The scalar overload fields on [`ServerStats`] are the
/// aggregates of these; the per-shard breakdown is what tells an
/// operator *which* partition is hot or degraded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index in `0..writer_shards`.
    pub index: u64,
    /// Commands currently enqueued for this shard's writer.
    pub queue_depth: u64,
    /// Updates refused `BUSY` because this shard's queue was full.
    pub shed_updates: u64,
    /// Writer round-trips on this shard that exceeded the deadline.
    pub deadline_misses: u64,
    /// 1 while this shard is in read-only degraded mode.
    pub degraded: u64,
    /// Lifetime transitions of this shard into degraded mode.
    pub degraded_entered: u64,
    /// Bytes in this shard's write-ahead log.
    pub wal_bytes: u64,
    /// WAL sequence this shard's newest checkpoint covers through.
    pub last_checkpoint: u64,
}

/// Per-view totals reported by `STATS`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// The adorned binding key the view is cached under.
    pub key: String,
    /// Total facts (base + derived) in the view's maintained database.
    pub facts: u64,
    /// Lifetime rule firings of the view (construction + maintenance).
    pub rule_firings: u64,
    /// Lifetime join probes of the view.
    pub join_probes: u64,
    /// Full recomputes forced by updates (non-zero only for views whose
    /// program uses negation or aggregates — the v1 recompute-on-update
    /// maintenance fallback).
    pub recomputes: u64,
    /// Why the view is maintained by recompute, if it is (empty for
    /// incrementally maintained views).
    pub recompute_reason: String,
}

/// The counters reported by `STATS`: the published snapshot, the serving
/// counters, and the maintenance totals aggregated over every cached view
/// (see [`ViewCatalog::aggregate_stats`](magic_incr::ViewCatalog::aggregate_stats)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Version of the currently published snapshot.
    pub version: u64,
    /// Number of cached (live, maintained) views.
    pub views: u64,
    /// Queries answered since the server started.
    pub queries_served: u64,
    /// State-changing updates applied and published.
    pub updates_applied: u64,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Views evicted because their maintenance failed (they
    /// re-materialize from the base facts on next sight).
    pub views_evicted: u64,
    /// Aggregated fixpoint iterations over all views.
    pub iterations: u64,
    /// Aggregated rule firings over all views.
    pub rule_firings: u64,
    /// Aggregated new facts derived over all views.
    pub facts_derived: u64,
    /// Aggregated duplicate derivations over all views.
    pub duplicate_derivations: u64,
    /// Aggregated join probes over all views.
    pub join_probes: u64,
    /// Bytes currently in the write-ahead log (0 when durability is
    /// off): the replay debt a crash right now would incur.
    pub wal_bytes: u64,
    /// WAL sequence number the newest checkpoint covers through (0
    /// when durability is off or nothing is checkpointed yet).
    pub last_checkpoint: u64,
    /// Failed response writes to clients (the connection is closed
    /// after the failure; the server carries on).
    pub write_errors: u64,
    /// Writer commands currently in flight (enqueued, not yet popped);
    /// the gauge the `BUSY` shed decision reads.
    pub queue_depth: u64,
    /// Updates refused with `ERR BUSY …` because the writer queue was
    /// at capacity.  Shed updates were never applied or logged.
    pub shed_updates: u64,
    /// Writer round-trips that exceeded the configured deadline and
    /// returned `ERR TIMEOUT …` (outcome unknown to that client).
    pub deadline_misses: u64,
    /// 1 while the server is in read-only degraded mode (updates
    /// refused with `ERR DEGRADED …`), 0 when healthy.
    pub degraded: u64,
    /// Lifetime count of transitions *into* degraded mode.
    pub degraded_entered: u64,
    /// Number of writer shards the base relations are partitioned
    /// across (1 = the classic single-writer layout).
    pub writer_shards: u64,
    /// Pipelined requests currently in flight across all connections
    /// (decoded but not yet answered).
    pub inflight_requests: u64,
    /// Median number of requests decoded per connection pump — the
    /// observed pipelining batch size (1 on a strictly synchronous
    /// client; larger means fewer syscalls per request).
    pub batch_size_p50: u64,
    /// Views maintained by full recompute instead of incrementally —
    /// programs with negation or aggregates (the v1 fallback, see the
    /// per-view `recompute_reason`).
    pub recompute_views: u64,
    /// Per-view totals, in catalog key order.
    pub per_view: Vec<ViewStats>,
    /// Per-writer-shard counters, in shard-index order.
    pub per_shard: Vec<ShardStats>,
}

impl ServerStats {
    /// Render the `STATS` response body (header, fields, views, `END`).
    pub fn render(&self) -> String {
        let mut out = String::from("OK stats\n");
        for (name, value) in self.fields() {
            out.push_str(&format!("{name}={value}\n"));
        }
        for view in &self.per_view {
            out.push_str(&format!(
                "view\t{}\tfacts={}\tfirings={}\tprobes={}\trecomputes={}\treason={}\n",
                view.key,
                view.facts,
                view.rule_firings,
                view.join_probes,
                view.recomputes,
                if view.recompute_reason.is_empty() {
                    "-"
                } else {
                    &view.recompute_reason
                }
            ));
        }
        for shard in &self.per_shard {
            out.push_str(&format!(
                "shard\t{}\tqueue_depth={}\tshed={}\tdeadline_misses={}\tdegraded={}\
                 \tdegraded_entered={}\twal_bytes={}\tlast_checkpoint={}\n",
                shard.index,
                shard.queue_depth,
                shard.shed_updates,
                shard.deadline_misses,
                shard.degraded,
                shard.degraded_entered,
                shard.wal_bytes,
                shard.last_checkpoint
            ));
        }
        out.push_str("END\n");
        out
    }

    /// Parse the body lines of a `STATS` response (everything between the
    /// `OK stats` header and `END`, exclusive).
    pub fn parse_body(lines: &[String]) -> Result<ServerStats, String> {
        let mut stats = ServerStats::default();
        for line in lines {
            if let Some(rest) = line.strip_prefix("view\t") {
                let mut parts = rest.split('\t');
                let key = parts
                    .next()
                    .ok_or_else(|| format!("bad view line: {line}"))?;
                let mut view = ViewStats {
                    key: key.to_string(),
                    ..ViewStats::default()
                };
                for part in parts {
                    let (name, value) = part
                        .split_once('=')
                        .ok_or_else(|| format!("bad view field {part:?} in: {line}"))?;
                    if name == "reason" {
                        if value != "-" {
                            view.recompute_reason = value.to_string();
                        }
                        continue;
                    }
                    let value: u64 = value
                        .parse()
                        .map_err(|_| format!("bad view number {value:?} in: {line}"))?;
                    match name {
                        "facts" => view.facts = value,
                        "firings" => view.rule_firings = value,
                        "probes" => view.join_probes = value,
                        "recomputes" => view.recomputes = value,
                        // Forward compatibility, same as the scalar
                        // fields: a newer server may report more.
                        _ => {}
                    }
                }
                stats.per_view.push(view);
                continue;
            }
            if let Some(rest) = line.strip_prefix("shard\t") {
                let mut parts = rest.split('\t');
                let index = parts
                    .next()
                    .ok_or_else(|| format!("bad shard line: {line}"))?;
                let mut shard = ShardStats {
                    index: index
                        .parse()
                        .map_err(|_| format!("bad shard index {index:?} in: {line}"))?,
                    ..ShardStats::default()
                };
                for part in parts {
                    let (name, value) = part
                        .split_once('=')
                        .ok_or_else(|| format!("bad shard field {part:?} in: {line}"))?;
                    let value: u64 = value
                        .parse()
                        .map_err(|_| format!("bad shard number {value:?} in: {line}"))?;
                    match name {
                        "queue_depth" => shard.queue_depth = value,
                        "shed" => shard.shed_updates = value,
                        "deadline_misses" => shard.deadline_misses = value,
                        "degraded" => shard.degraded = value,
                        "degraded_entered" => shard.degraded_entered = value,
                        "wal_bytes" => shard.wal_bytes = value,
                        "last_checkpoint" => shard.last_checkpoint = value,
                        // Forward compatibility, as for views.
                        _ => {}
                    }
                }
                stats.per_shard.push(shard);
                continue;
            }
            let (name, value) = line
                .split_once('=')
                .ok_or_else(|| format!("bad stats line: {line}"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("bad stats number {value:?} in: {line}"))?;
            match name {
                "version" => stats.version = value,
                "views" => stats.views = value,
                "queries" => stats.queries_served = value,
                "updates" => stats.updates_applied = value,
                "connections" => stats.connections = value,
                "views_evicted" => stats.views_evicted = value,
                "iterations" => stats.iterations = value,
                "rule_firings" => stats.rule_firings = value,
                "facts_derived" => stats.facts_derived = value,
                "duplicate_derivations" => stats.duplicate_derivations = value,
                "join_probes" => stats.join_probes = value,
                "wal_bytes" => stats.wal_bytes = value,
                "last_checkpoint" => stats.last_checkpoint = value,
                "write_errors" => stats.write_errors = value,
                "queue_depth" => stats.queue_depth = value,
                "shed_updates" => stats.shed_updates = value,
                "deadline_misses" => stats.deadline_misses = value,
                "degraded" => stats.degraded = value,
                "degraded_entered" => stats.degraded_entered = value,
                "writer_shards" => stats.writer_shards = value,
                "inflight_requests" => stats.inflight_requests = value,
                "batch_size_p50" => stats.batch_size_p50 = value,
                "recompute_views" => stats.recompute_views = value,
                // Forward compatibility: a newer server may report more.
                _ => {}
            }
        }
        Ok(stats)
    }

    /// The scalar fields, in wire order.
    fn fields(&self) -> [(&'static str, u64); 23] {
        [
            ("version", self.version),
            ("views", self.views),
            ("queries", self.queries_served),
            ("updates", self.updates_applied),
            ("connections", self.connections),
            ("views_evicted", self.views_evicted),
            ("iterations", self.iterations),
            ("rule_firings", self.rule_firings),
            ("facts_derived", self.facts_derived),
            ("duplicate_derivations", self.duplicate_derivations),
            ("join_probes", self.join_probes),
            ("wal_bytes", self.wal_bytes),
            ("last_checkpoint", self.last_checkpoint),
            ("write_errors", self.write_errors),
            ("queue_depth", self.queue_depth),
            ("shed_updates", self.shed_updates),
            ("deadline_misses", self.deadline_misses),
            ("degraded", self.degraded),
            ("degraded_entered", self.degraded_entered),
            ("writer_shards", self.writer_shards),
            ("inflight_requests", self.inflight_requests),
            ("batch_size_p50", self.batch_size_p50),
            ("recompute_views", self.recompute_views),
        ]
    }
}

/// Render a `QUERY` response: header, one `ROW` line per answer, `END`.
pub fn render_answers(key: &str, version: u64, rows: &[Vec<Value>]) -> String {
    let mut out = format!("OK {} {} {}\n", rows.len(), version, key);
    for row in rows {
        out.push_str("ROW");
        for value in row {
            out.push('\t');
            out.push_str(&value.to_string());
        }
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

/// Render an `INSERT`/`RETRACT` acknowledgment.
pub fn render_ack(applied: bool, version: u64) -> String {
    if applied {
        format!("OK applied {version}\n")
    } else {
        format!("OK noop {version}\n")
    }
}

/// Render an error response.  The message is flattened to one line so the
/// framing survives arbitrary error text.
pub fn render_error(message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {flat}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert!(matches!(
            parse_request("QUERY anc(john, Y)").unwrap(),
            Request::Query(_)
        ));
        let fact = Fact::plain("par", vec![Value::sym("a"), Value::sym("b")]);
        assert_eq!(
            parse_request("INSERT par(a, b)").unwrap(),
            Request::Insert(fact.clone())
        );
        assert_eq!(
            parse_request("  RETRACT par(a, b)  ").unwrap(),
            Request::Retract(fact)
        );
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert!(parse_request("").is_err());
        assert!(parse_request("EXPLAIN anc(X, Y)").is_err());
        assert!(parse_request("INSERT par(X, b)").is_err()); // not ground
        assert!(parse_request("QUERY ").is_err());
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServerStats {
            version: 7,
            views: 2,
            queries_served: 100,
            updates_applied: 31,
            connections: 4,
            views_evicted: 1,
            iterations: 12,
            rule_firings: 345,
            facts_derived: 200,
            duplicate_derivations: 9,
            join_probes: 9999,
            wal_bytes: 4096,
            last_checkpoint: 18,
            write_errors: 3,
            queue_depth: 5,
            shed_updates: 77,
            deadline_misses: 2,
            degraded: 1,
            degraded_entered: 6,
            writer_shards: 4,
            inflight_requests: 12,
            batch_size_p50: 8,
            recompute_views: 1,
            per_view: vec![ViewStats {
                key: "anc[bf](a, b)@gms".into(),
                facts: 42,
                rule_firings: 17,
                join_probes: 2048,
                recomputes: 3,
                recompute_reason: "guarded program: negation".into(),
            }],
            per_shard: vec![
                ShardStats {
                    index: 0,
                    queue_depth: 3,
                    shed_updates: 70,
                    deadline_misses: 2,
                    degraded: 1,
                    degraded_entered: 6,
                    wal_bytes: 4000,
                    last_checkpoint: 18,
                },
                ShardStats {
                    index: 1,
                    queue_depth: 2,
                    shed_updates: 7,
                    deadline_misses: 0,
                    degraded: 0,
                    degraded_entered: 0,
                    wal_bytes: 96,
                    last_checkpoint: 11,
                },
            ],
        };
        let rendered = stats.render();
        let lines: Vec<String> = rendered
            .lines()
            .skip(1) // OK stats
            .take_while(|l| *l != "END")
            .map(String::from)
            .collect();
        assert_eq!(ServerStats::parse_body(&lines).unwrap(), stats);
    }

    #[test]
    fn answers_render_tab_separated_rows() {
        let rows = vec![
            vec![Value::sym("mary"), Value::Int(3)],
            vec![Value::sym("ann"), Value::Int(4)],
        ];
        let text = render_answers("anc[bf](john)@gms", 9, &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "OK 2 9 anc[bf](john)@gms");
        assert_eq!(lines[1], "ROW\tmary\t3");
        assert_eq!(lines[2], "ROW\tann\t4");
        assert_eq!(lines[3], "END");
        // A boolean (fully bound) query's row carries no values.
        assert_eq!(render_answers("k", 1, &[vec![]]), "OK 1 1 k\nROW\nEND\n");
    }

    #[test]
    fn frames_round_trip_and_reject_bad_lengths() {
        let frame = Frame {
            req_id: 0xDEAD_BEEF_CAFE_F00D,
            tag: op::QUERY,
            body: b"anc(john, Y)".to_vec(),
        };
        let bytes = frame.encode();
        // Partial prefixes decode to "need more", byte by byte.
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut={cut}");
        }
        let (decoded, consumed) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(consumed, bytes.len());
        // Two frames back to back: the first decode consumes exactly one.
        let mut two = bytes.clone();
        let second = Frame {
            req_id: 2,
            tag: status::OK,
            body: b"OK pong\n".to_vec(),
        };
        two.extend_from_slice(&second.encode());
        let (first, consumed) = Frame::decode(&two).unwrap().unwrap();
        assert_eq!(first, frame);
        let (next, _) = Frame::decode(&two[consumed..]).unwrap().unwrap();
        assert_eq!(next, second);
        // An empty body is legal (STATS/PING).
        let empty = Frame {
            req_id: 9,
            tag: op::STATS,
            body: vec![],
        };
        let (decoded, _) = Frame::decode(&empty.encode()).unwrap().unwrap();
        assert_eq!(decoded, empty);
        // Undersized and oversized length words are hard errors.
        assert!(Frame::decode(&3u32.to_le_bytes()).is_err());
        assert!(Frame::decode(&(MAX_FRAME as u32 + 1).to_le_bytes()).is_err());
    }

    #[test]
    fn sniff_requires_the_full_magic_not_a_printable_first_byte() {
        // Regression: a binary frame starts with printable bytes
        // ('M'), so a first-byte printability heuristic would call
        // every binary connection text.  The sniff must match the
        // whole magic.
        assert_eq!(sniff(b""), Sniff::Undecided);
        assert_eq!(sniff(b"M"), Sniff::Undecided);
        assert_eq!(sniff(b"MGWP0"), Sniff::Undecided);
        assert_eq!(sniff(b"MGWP01"), Sniff::Binary);
        assert_eq!(sniff(b"MGWP01\x15\0\0\0"), Sniff::Binary);
        // Text requests diverge from the magic early — even ones that
        // share a first byte with it.
        assert_eq!(sniff(b"QUERY anc(a, Y)\n"), Sniff::Text);
        assert_eq!(sniff(b"MGWP02"), Sniff::Text); // wrong version byte
        assert_eq!(sniff(b"MG"), Sniff::Undecided);
        assert_eq!(sniff(b"MX"), Sniff::Text);
        assert_eq!(sniff(b"PING\n"), Sniff::Text);
    }
}
