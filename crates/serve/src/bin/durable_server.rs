//! A small durable server process: the kill target of the
//! crash-recovery tests (`crates/serve/tests/durable_restart.rs`) and
//! the CI recovery smoke.
//!
//! Usage: `durable_server <store-dir> [checkpoint-every]`
//!
//! Serves the classic ancestor program over a 16-edge `par` chain seed
//! with durability rooted at `<store-dir>`, prints one line
//! `ADDR <ip:port>` to stdout once recovery finished and the listener
//! is live, then parks forever — the parent test decides when (and
//! how rudely) the process dies.  On a restart over the same
//! directory, the seed is ignored and the recovered disk state wins.
//!
//! Environment knobs (all optional), so the overload and chaos suites
//! can shape the server without growing the positional interface:
//!
//! * `MAGIC_SERVE_FSYNC` — `never` (default), `always`, or `every=<n>`.
//! * `MAGIC_SERVE_QUEUE_DEPTH` — writer queue bound (`max_queue_depth`).
//! * `MAGIC_SERVE_WRITER_DEADLINE_MS` — writer round-trip deadline.
//! * `MAGIC_SERVE_WRITER_SHARDS` — writer shard count (`writer_shards`);
//!   a store directory remembers it, so restarts must repeat it.
//! * `MAGIC_FAULTS` — read by the serve layer itself; listed here
//!   because this binary is its usual carrier in tests.

use magic_datalog::parse_program;
use magic_durable::{DurableConfig, FsyncPolicy};
use magic_serve::{ServeConfig, Server};
use magic_storage::Database;
use std::io::Write;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let dir = args
        .next()
        .expect("usage: durable_server <store-dir> [checkpoint-every]");
    let checkpoint_every: u64 = args
        .next()
        .map(|s| s.parse().expect("checkpoint-every must be an integer"))
        .unwrap_or(8);

    // `edge` mirrors the base `par` relation one-to-one: the recovery
    // tests query `edge(X, Y)` to read the exact recovered base state
    // back out through an ordinary derived view.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).
         edge(X, Y) :- par(X, Y).",
    )
    .expect("the built-in program parses");
    let mut edb = Database::new();
    for i in 0..16 {
        edb.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
    }

    // `FsyncPolicy::Never` is the default: the tests kill with SIGKILL,
    // which loses nothing the page cache already holds, so skipping
    // fsync keeps the kill loop fast while still exercising the full
    // log/checkpoint/recover machinery.  The fault suites override to
    // `always` so injected fsync failures strike the batch that caused
    // them.
    let fsync = match std::env::var("MAGIC_SERVE_FSYNC").as_deref() {
        Ok("always") => FsyncPolicy::Always,
        Ok(s) if s.starts_with("every=") => FsyncPolicy::EveryN(
            s["every=".len()..]
                .parse()
                .expect("MAGIC_SERVE_FSYNC=every=<n> needs an integer"),
        ),
        Ok("never") | Err(_) => FsyncPolicy::Never,
        Ok(other) => panic!("MAGIC_SERVE_FSYNC={other:?}: expected never, always or every=<n>"),
    };
    let env_u64 = |name: &str| {
        std::env::var(name).ok().map(|s| {
            s.parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} must be an integer"))
        })
    };
    let mut config = ServeConfig {
        durability: Some(
            DurableConfig::new(&dir)
                .with_fsync(fsync)
                .with_checkpoint_every(checkpoint_every),
        ),
        ..ServeConfig::default()
    };
    if let Some(depth) = env_u64("MAGIC_SERVE_QUEUE_DEPTH") {
        config.max_queue_depth = depth as usize;
    }
    if let Some(ms) = env_u64("MAGIC_SERVE_WRITER_DEADLINE_MS") {
        config.writer_deadline = Duration::from_millis(ms);
    }
    if let Some(shards) = env_u64("MAGIC_SERVE_WRITER_SHARDS") {
        config.writer_shards = shards as usize;
    }
    let server = Server::start(program, edb, "127.0.0.1:0", config)?;
    println!("ADDR {}", server.addr());
    std::io::stdout().flush()?;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
