//! A small durable server process: the kill target of the
//! crash-recovery tests (`crates/serve/tests/durable_restart.rs`) and
//! the CI recovery smoke.
//!
//! Usage: `durable_server <store-dir> [checkpoint-every]`
//!
//! Serves the classic ancestor program over a 16-edge `par` chain seed
//! with durability rooted at `<store-dir>`, prints one line
//! `ADDR <ip:port>` to stdout once recovery finished and the listener
//! is live, then parks forever — the parent test decides when (and
//! how rudely) the process dies.  On a restart over the same
//! directory, the seed is ignored and the recovered disk state wins.

use magic_datalog::parse_program;
use magic_durable::{DurableConfig, FsyncPolicy};
use magic_serve::{ServeConfig, Server};
use magic_storage::Database;
use std::io::Write;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let dir = args
        .next()
        .expect("usage: durable_server <store-dir> [checkpoint-every]");
    let checkpoint_every: u64 = args
        .next()
        .map(|s| s.parse().expect("checkpoint-every must be an integer"))
        .unwrap_or(8);

    // `edge` mirrors the base `par` relation one-to-one: the recovery
    // tests query `edge(X, Y)` to read the exact recovered base state
    // back out through an ordinary derived view.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).
         edge(X, Y) :- par(X, Y).",
    )
    .expect("the built-in program parses");
    let mut edb = Database::new();
    for i in 0..16 {
        edb.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
    }

    // `FsyncPolicy::Never` is deliberate: the tests kill with SIGKILL,
    // which loses nothing the page cache already holds, so skipping
    // fsync keeps the kill loop fast while still exercising the full
    // log/checkpoint/recover machinery.  A production config would
    // pick `Always` or `EveryN`.
    let config = ServeConfig {
        durability: Some(
            DurableConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_checkpoint_every(checkpoint_every),
        ),
        ..ServeConfig::default()
    };
    let server = Server::start(program, edb, "127.0.0.1:0", config)?;
    println!("ADDR {}", server.addr());
    std::io::stdout().flush()?;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
