//! # magic-serve
//!
//! A concurrent query-serving front end over
//! [`magic_incr::ViewCatalog`]: the workspace's "heavy live traffic"
//! layer, turning the paper's per-query-binding magic-set views into a
//! network service.
//!
//! The paper's whole point is answering *bound* queries cheaply — an
//! adorned magic-set view is a per-query-binding artifact, which is
//! exactly the shape of a request/response serving layer.  Because the
//! magic transformation preserves answers exactly (Drabent's correctness
//! proof, arXiv:1012.2299), a maintained view can stand in for
//! from-scratch evaluation for every query that shares its binding; this
//! crate keeps a catalog of such views live under a stream of updates and
//! serves them over TCP.
//!
//! * [`Server`] / [`ServerHandle`] — a thread-per-connection
//!   [`std::net::TcpListener`] server: N concurrent reader threads answer
//!   queries from immutable snapshot-and-swap catalog clones while a
//!   single writer thread drains the maintenance queue, applies batched
//!   insert/retract through the catalog and publishes fresh snapshots.
//!   Readers never block on maintenance; writes are serialized and
//!   acknowledged only once the snapshot containing them is live.
//! * [`protocol`] — the minimal line-oriented wire protocol
//!   (`QUERY anc(john, Y)`, `INSERT par(a, b)`, `RETRACT …`, `STATS`),
//!   hand-rolled in-tree because the build environment has no crates.io
//!   access.
//! * [`Client`] — a blocking protocol client, used by the
//!   `serve_*` benchmark scenarios, the consistency test suite and the
//!   `serve_quickstart` example.
//!
//! See the repository's top-level `README.md` for the quickstart and
//! `ARCHITECTURE.md` for how the serving path fits the engine underneath.
//!
//! ```
//! use magic_core::planner::Strategy;
//! use magic_datalog::parse_program;
//! use magic_serve::{Client, ServeConfig, Server};
//! use magic_storage::Database;
//!
//! let program = parse_program(
//!     "anc(X, Y) :- par(X, Y).
//!      anc(X, Y) :- par(X, Z), anc(Z, Y).",
//! )
//! .unwrap();
//! let mut db = Database::new();
//! db.insert_pair("par", "john", "mary");
//!
//! let mut server =
//!     Server::start(program, db, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! assert_eq!(client.query("anc(john, Y)").unwrap().rows.len(), 1);
//! client.insert("par(mary, ann)").unwrap();
//! assert_eq!(client.query("anc(john, Y)").unwrap().rows.len(), 2);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, QueryReply, UpdateAck};
pub use protocol::{Request, ServerStats, ViewStats};
pub use server::{ServeConfig, Server, ServerHandle};
