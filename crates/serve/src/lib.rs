//! # magic-serve
//!
//! A concurrent query-serving front end over
//! [`magic_incr::ViewCatalog`]: the workspace's "heavy live traffic"
//! layer, turning the paper's per-query-binding magic-set views into a
//! network service.
//!
//! The paper's whole point is answering *bound* queries cheaply — an
//! adorned magic-set view is a per-query-binding artifact, which is
//! exactly the shape of a request/response serving layer.  Because the
//! magic transformation preserves answers exactly (Drabent's correctness
//! proof, arXiv:1012.2299), a maintained view can stand in for
//! from-scratch evaluation for every query that shares its binding; this
//! crate keeps a catalog of such views live under a stream of updates and
//! serves them over TCP.
//!
//! * [`Server`] / [`ServerHandle`] — a pooled, pipelined TCP server: a
//!   nonblocking accept loop deals connections to a fixed pool of
//!   reader threads that pump them (read, decode every buffered
//!   request, poll writer replies, write responses), while the base
//!   relations are hash-partitioned across
//!   [`ServeConfig::writer_shards`] maintenance writers — each with
//!   its own bounded queue, write-ahead log and published snapshot
//!   slot, replicating applied batches to its peers behind a per-batch
//!   ack barrier.  Readers never block on maintenance; writes
//!   serialize per predicate through its home shard and are
//!   acknowledged only once the containing snapshot is live on every
//!   shard.
//! * [`protocol`] — two wire protocols on one port, hand-rolled
//!   in-tree because the build environment has no crates.io access:
//!   the line-oriented text protocol (`QUERY anc(john, Y)`,
//!   `INSERT par(a, b)`, `RETRACT …`, `STATS`), and the pipelined
//!   `MGWP01` binary framing ([`protocol::Frame`]) with client request
//!   ids and out-of-order responses, selected by a full-magic preamble
//!   sniff.
//! * [`Client`] / [`PipeClient`] — a blocking text-protocol client
//!   (the protocol's reference implementation) and the pipelined
//!   binary-protocol client the throughput benchmarks drive the server
//!   with.
//!
//! See the repository's top-level `README.md` for the quickstart and
//! `ARCHITECTURE.md` for how the serving path fits the engine underneath.
//!
//! ```
//! use magic_core::planner::Strategy;
//! use magic_datalog::parse_program;
//! use magic_serve::{Client, ServeConfig, Server};
//! use magic_storage::Database;
//!
//! let program = parse_program(
//!     "anc(X, Y) :- par(X, Y).
//!      anc(X, Y) :- par(X, Z), anc(Z, Y).",
//! )
//! .unwrap();
//! let mut db = Database::new();
//! db.insert_pair("par", "john", "mary");
//!
//! let mut server =
//!     Server::start(program, db, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! assert_eq!(client.query("anc(john, Y)").unwrap().rows.len(), 1);
//! client.insert("par(mary, ann)").unwrap();
//! assert_eq!(client.query("anc(john, Y)").unwrap().rows.len(), 2);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, PipeClient, QueryReply, UpdateAck};
pub use protocol::{Frame, Request, ServerStats, ShardStats, Sniff, ViewStats, BINARY_MAGIC};
pub use server::{ServeConfig, Server, ServerHandle};
