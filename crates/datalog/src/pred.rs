//! Structured predicate names.
//!
//! The rewriting algorithms of the paper introduce whole families of new
//! predicates — adorned versions `p^a`, magic predicates `magic_p^a`,
//! supplementary magic predicates `supmagic^r_i`, indexed predicates
//! `p_ind^a`, counting predicates `cnt_p_ind^a`, supplementary counting
//! predicates `supcnt^r_i` and (for multi-arc sips) label predicates.
//! Representing these structurally rather than by string mangling keeps the
//! rewrites testable and lets the pretty-printer reproduce the paper's
//! notation.

use crate::adornment::Adornment;
use crate::symbol::Symbol;
use std::fmt;

/// A (possibly rewritten) predicate name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PredName {
    /// An ordinary predicate from the source program or database, e.g. `par`.
    Plain(Symbol),
    /// An adorned derived predicate `p^a` (Section 3).
    Adorned {
        /// The underlying predicate.
        base: Symbol,
        /// Its adornment.
        adornment: Adornment,
    },
    /// A magic predicate `magic_p^a` (Section 4).
    Magic {
        /// The underlying predicate.
        base: Symbol,
        /// The adornment of the adorned predicate this magic set feeds.
        adornment: Adornment,
    },
    /// A label predicate `label_q_j` used when several sip arcs enter the
    /// same body literal (Section 4).
    Label {
        /// The underlying predicate of the target literal.
        base: Symbol,
        /// The adornment of the target literal.
        adornment: Adornment,
        /// The index of the adorned rule the label belongs to.
        rule: usize,
        /// The index of the arc among those entering the literal.
        arc: usize,
    },
    /// A supplementary magic predicate `supmagic^r_i` (Section 5).
    Supplementary {
        /// The head predicate of the adorned rule.
        base: Symbol,
        /// The head adornment of the adorned rule.
        adornment: Adornment,
        /// The index of the adorned rule.
        rule: usize,
        /// The position `i` within the rule body (1-based, as in the paper).
        position: usize,
    },
    /// An indexed adorned predicate `p_ind^a` with three index arguments
    /// prepended (Section 6).
    Indexed {
        /// The underlying predicate.
        base: Symbol,
        /// Its adornment (over the non-index arguments).
        adornment: Adornment,
    },
    /// A counting predicate `cnt_p_ind^a` (Section 6).
    Count {
        /// The underlying predicate.
        base: Symbol,
        /// Its adornment (over the non-index arguments).
        adornment: Adornment,
    },
    /// A supplementary counting predicate `supcnt^r_i` (Section 7).
    SupCount {
        /// The head predicate of the adorned rule.
        base: Symbol,
        /// The head adornment of the adorned rule.
        adornment: Adornment,
        /// The index of the adorned rule.
        rule: usize,
        /// The position `i` within the rule body (1-based).
        position: usize,
    },
}

impl PredName {
    /// A plain predicate name.
    pub fn plain(name: &str) -> PredName {
        PredName::Plain(Symbol::new(name))
    }

    /// An adorned predicate `p^a`.
    pub fn adorned(name: &str, adornment: Adornment) -> PredName {
        PredName::Adorned {
            base: Symbol::new(name),
            adornment,
        }
    }

    /// A magic predicate `magic_p^a`.
    pub fn magic(name: &str, adornment: Adornment) -> PredName {
        PredName::Magic {
            base: Symbol::new(name),
            adornment,
        }
    }

    /// An indexed predicate `p_ind^a`.
    pub fn indexed(name: &str, adornment: Adornment) -> PredName {
        PredName::Indexed {
            base: Symbol::new(name),
            adornment,
        }
    }

    /// A counting predicate `cnt_p_ind^a`.
    pub fn count(name: &str, adornment: Adornment) -> PredName {
        PredName::Count {
            base: Symbol::new(name),
            adornment,
        }
    }

    /// The underlying source-program predicate symbol.
    pub fn base(&self) -> Symbol {
        match self {
            PredName::Plain(s) => *s,
            PredName::Adorned { base, .. }
            | PredName::Magic { base, .. }
            | PredName::Label { base, .. }
            | PredName::Supplementary { base, .. }
            | PredName::Indexed { base, .. }
            | PredName::Count { base, .. }
            | PredName::SupCount { base, .. } => *base,
        }
    }

    /// The adornment carried by the name, if any.
    pub fn adornment(&self) -> Option<&Adornment> {
        match self {
            PredName::Plain(_) => None,
            PredName::Adorned { adornment, .. }
            | PredName::Magic { adornment, .. }
            | PredName::Label { adornment, .. }
            | PredName::Supplementary { adornment, .. }
            | PredName::Indexed { adornment, .. }
            | PredName::Count { adornment, .. }
            | PredName::SupCount { adornment, .. } => Some(adornment),
        }
    }

    /// True for auxiliary predicates introduced by a rewrite (magic, label,
    /// supplementary, counting, supplementary counting).
    pub fn is_auxiliary(&self) -> bool {
        matches!(
            self,
            PredName::Magic { .. }
                | PredName::Label { .. }
                | PredName::Supplementary { .. }
                | PredName::Count { .. }
                | PredName::SupCount { .. }
        )
    }

    /// True for magic or counting predicates (the "subquery" predicates whose
    /// contents correspond to generated subqueries in Section 9).
    pub fn is_subquery_predicate(&self) -> bool {
        matches!(self, PredName::Magic { .. } | PredName::Count { .. })
    }

    /// True for the adorned / indexed versions of a source predicate (the
    /// predicates whose tuples correspond to answers of subqueries).
    pub fn is_answer_predicate(&self) -> bool {
        matches!(
            self,
            PredName::Plain(_) | PredName::Adorned { .. } | PredName::Indexed { .. }
        )
    }
}

impl From<&str> for PredName {
    fn from(s: &str) -> Self {
        PredName::plain(s)
    }
}

impl fmt::Display for PredName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredName::Plain(s) => write!(f, "{s}"),
            PredName::Adorned { base, adornment } => write!(f, "{base}_{adornment}"),
            PredName::Magic { base, adornment } => write!(f, "magic_{base}_{adornment}"),
            PredName::Label {
                base,
                adornment,
                rule,
                arc,
            } => write!(f, "label_{base}_{adornment}_r{rule}_a{arc}"),
            PredName::Supplementary {
                base,
                adornment,
                rule,
                position,
            } => write!(f, "supmagic_r{rule}_{position}_{base}_{adornment}"),
            PredName::Indexed { base, adornment } => write!(f, "{base}_ind_{adornment}"),
            PredName::Count { base, adornment } => write!(f, "cnt_{base}_ind_{adornment}"),
            PredName::SupCount {
                base,
                adornment,
                rule,
                position,
            } => write!(f, "supcnt_r{rule}_{position}_{base}_{adornment}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf() -> Adornment {
        "bf".parse().unwrap()
    }

    #[test]
    fn display_matches_paper_conventions() {
        assert_eq!(PredName::plain("par").to_string(), "par");
        assert_eq!(PredName::adorned("sg", bf()).to_string(), "sg_bf");
        assert_eq!(PredName::magic("sg", bf()).to_string(), "magic_sg_bf");
        assert_eq!(PredName::indexed("sg", bf()).to_string(), "sg_ind_bf");
        assert_eq!(PredName::count("sg", bf()).to_string(), "cnt_sg_ind_bf");
    }

    #[test]
    fn base_and_adornment_accessors() {
        let p = PredName::magic("anc", bf());
        assert_eq!(p.base().as_str(), "anc");
        assert_eq!(p.adornment().unwrap().to_string(), "bf");
        assert!(p.is_auxiliary());
        assert!(p.is_subquery_predicate());
        assert!(!p.is_answer_predicate());
    }

    #[test]
    fn plain_predicates_are_answers() {
        let p = PredName::plain("anc");
        assert!(p.is_answer_predicate());
        assert!(!p.is_auxiliary());
        assert!(p.adornment().is_none());
    }

    #[test]
    fn structured_names_are_distinct() {
        let a = PredName::adorned("sg", bf());
        let m = PredName::magic("sg", bf());
        let i = PredName::indexed("sg", bf());
        assert_ne!(a, m);
        assert_ne!(a, i);
        assert_ne!(m, i);
    }
}
