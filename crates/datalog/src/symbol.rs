//! Global string interner and the [`Symbol`] handle type.
//!
//! Predicate names, constants, variables and function symbols are all
//! interned once and referred to by a small copyable [`Symbol`].  Interning
//! keeps tuples compact (a `u32` per symbolic value) and makes equality and
//! hashing O(1), which matters because the bottom-up engine compares and
//! hashes values in every join step.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// `Symbol` is a cheap, copyable handle into the process-wide interner.  Two
/// symbols are equal iff the strings they intern are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    /// Map from string to index in `strings`.
    map: HashMap<&'static str, u32>,
    /// All interned strings.  Strings are leaked; the set of distinct symbols
    /// in any workload is small and bounded by the program and data.
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }

    fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Intern `s` and return its symbol.
    pub fn new(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let guard = interner().read().unwrap();
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        Symbol(interner().write().unwrap().intern(s))
    }

    /// The interned string.
    pub fn as_str(&self) -> &'static str {
        interner().read().unwrap().resolve(self.0)
    }

    /// A stable numeric id (useful for dense tables keyed by symbol).
    pub fn id(&self) -> u32 {
        self.0
    }

    /// The symbol with the given interner id.  The inverse of
    /// [`Symbol::id`]; the id must have been produced by this process's
    /// interner — crate-private because only the value arena's
    /// inline-symbol encoding (`crate::arena`) can uphold that.
    pub(crate) fn from_id(id: u32) -> Symbol {
        Symbol(id)
    }
}

/// Every interned string, in id order — the symbol half of
/// [`crate::arena::ArenaSnapshot`]'s watermark capture.  The returned
/// vector is a point-in-time prefix: symbols interned after the call get
/// larger ids and are simply absent from it.
pub(crate) fn all_strings() -> Vec<&'static str> {
    interner().read().unwrap().strings.clone()
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("anc");
        let b = Symbol::new("anc");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "anc");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::new("par");
        let b = Symbol::new("anc");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn display_round_trips() {
        let a = Symbol::new("same_generation");
        assert_eq!(a.to_string(), "same_generation");
    }

    #[test]
    fn from_string_and_str_agree() {
        let a: Symbol = "flat".into();
        let b: Symbol = String::from("flat").into();
        assert_eq!(a, b);
    }

    #[test]
    fn many_symbols_resolve_correctly() {
        let syms: Vec<Symbol> = (0..200).map(|i| Symbol::new(&format!("s{i}"))).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("s{i}"));
        }
    }
}
