//! Terms, ground values, bindings, matching and unification.
//!
//! A term is a variable, a constant (symbolic or integer), a function symbol
//! applied to terms, or — in programs produced by the *counting* rewrites —
//! a linear index expression `var * mul + add` (see Section 6 of the paper).
//!
//! Ground terms are represented separately as [`Value`]s so that relations
//! store compact, hash-friendly rows.

use crate::symbol::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// The reserved functor used for list cells (`[H|T]` is `cons(H, T)`).
pub const LIST_CONS: &str = "cons";
/// The reserved constant used for the empty list `[]`.
pub const LIST_NIL: &str = "nil";

/// A logic variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub Symbol);

impl Variable {
    /// Create a variable from its name.
    pub fn new(name: &str) -> Variable {
        Variable(Symbol::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Variable({})", self.name())
    }
}

/// A linear index expression `var * mul + add`.
///
/// The generalized counting and supplementary counting rewrites (Sections 6
/// and 7) attach three index arguments to derived predicates and manipulate
/// them with expressions of this shape (`I + 1`, `K × m + i`, `H × t + j`).
/// The engine evaluates such an expression forwards when `var` is bound, and
/// inverts it (with a divisibility check) when matching against a known
/// integer value — which is required after the Lemma 8.1 deletions remove the
/// literal that would otherwise have bound `var`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinearExpr {
    /// The variable the expression is linear in.
    pub var: Variable,
    /// Multiplier (must be non-zero).
    pub mul: i64,
    /// Additive constant.
    pub add: i64,
}

impl LinearExpr {
    /// Evaluate the expression given a value for `var`.
    ///
    /// The arithmetic saturates: the counting rewrites multiply the
    /// rule-sequence index by the number of rules at every derivation level,
    /// so a divergent run (Section 10) would otherwise overflow `i64` after
    /// ~60 levels.  Saturation keeps evaluation panic-free; the engine's
    /// resource limits are the intended way to surface such divergence.
    pub fn eval(&self, v: i64) -> i64 {
        LinearExpr::eval_parts(self.mul, self.add, v)
    }

    /// Invert the expression: find `x` with `x * mul + add == value`,
    /// if such an integer exists.
    pub fn invert(&self, value: i64) -> Option<i64> {
        LinearExpr::invert_parts(self.mul, self.add, value)
    }

    /// [`LinearExpr::eval`] without a variable: `v * mul + add`, saturating.
    /// Used by the slot-compiled form, which stores only the coefficients.
    pub fn eval_parts(mul: i64, add: i64, v: i64) -> i64 {
        v.saturating_mul(mul).saturating_add(add)
    }

    /// [`LinearExpr::invert`] without a variable: find `x` with
    /// `x * mul + add == value`, if such an integer exists.
    ///
    /// Checked arithmetic throughout: `eval_parts` saturates, so values
    /// near `i64::MAX`/`i64::MIN` do occur (divergent counting runs,
    /// Section 10), and an inversion that would overflow has no exact
    /// integer preimage — it answers `None` rather than wrapping.
    pub fn invert_parts(mul: i64, add: i64, value: i64) -> Option<i64> {
        let num = value.checked_sub(add)?;
        if mul == 0 {
            return if num == 0 { Some(0) } else { None };
        }
        // checked_rem/checked_div also reject i64::MIN / -1 overflow.
        if num.checked_rem(mul)? != 0 {
            return None;
        }
        num.checked_div(mul)
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mul, self.add) {
            (1, 0) => write!(f, "{}", self.var),
            (1, a) if a >= 0 => write!(f, "{}+{}", self.var, a),
            (1, a) => write!(f, "{}-{}", self.var, -a),
            (m, 0) => write!(f, "{}*{}", self.var, m),
            (m, a) if a >= 0 => write!(f, "{}*{}+{}", self.var, m, a),
            (m, a) => write!(f, "{}*{}-{}", self.var, m, -a),
        }
    }
}

/// A term: the arguments of atoms in rules and queries.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable.
    Var(Variable),
    /// An integer constant.
    Int(i64),
    /// A symbolic constant.
    Sym(Symbol),
    /// A function symbol applied to argument terms, e.g. `cons(H, T)`.
    App(Symbol, Vec<Term>),
    /// A linear index expression (counting rewrites only).
    Linear(LinearExpr),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Variable::new(name))
    }

    /// Convenience constructor for a symbolic constant.
    pub fn sym(name: &str) -> Term {
        Term::Sym(Symbol::new(name))
    }

    /// Convenience constructor for an integer constant.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Convenience constructor for a compound term.
    pub fn app(functor: &str, args: Vec<Term>) -> Term {
        Term::App(Symbol::new(functor), args)
    }

    /// The empty-list constant `[]`.
    pub fn nil() -> Term {
        Term::sym(LIST_NIL)
    }

    /// A list cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::app(LIST_CONS, vec![head, tail])
    }

    /// A proper list `[t0, t1, ...]` built from `items`, ending in `tail`
    /// (use [`Term::nil`] for a proper list).
    pub fn list(items: Vec<Term>, tail: Term) -> Term {
        items
            .into_iter()
            .rev()
            .fold(tail, |acc, item| Term::cons(item, acc))
    }

    /// A linear index expression `var * mul + add`.
    pub fn linear(var: Variable, mul: i64, add: i64) -> Term {
        if mul == 1 && add == 0 {
            Term::Var(var)
        } else {
            Term::Linear(LinearExpr { var, mul, add })
        }
    }

    /// Collect the variables of this term into `out`, in first-occurrence
    /// order (duplicates skipped).
    pub fn collect_vars(&self, out: &mut Vec<Variable>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Linear(l) => {
                if !out.contains(&l.var) {
                    out.push(l.var);
                }
            }
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::Int(_) | Term::Sym(_) => {}
        }
    }

    /// The set of variables of this term.
    pub fn vars(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// The set of variables as a `BTreeSet`.
    pub fn var_set(&self) -> BTreeSet<Variable> {
        self.vars().into_iter().collect()
    }

    /// True iff the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) | Term::Linear(_) => false,
            Term::Int(_) | Term::Sym(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Convert a ground term to a [`Value`]; `None` if the term is not ground.
    pub fn to_value(&self) -> Option<Value> {
        match self {
            Term::Var(_) | Term::Linear(_) => None,
            Term::Int(i) => Some(Value::Int(*i)),
            Term::Sym(s) => Some(Value::Sym(*s)),
            Term::App(f, args) => {
                let vals: Option<Vec<Value>> = args.iter().map(Term::to_value).collect();
                Some(Value::app(*f, vals?))
            }
        }
    }

    /// Apply a (ground) binding environment, producing a term in which bound
    /// variables are replaced by their values.  Unbound variables remain.
    pub fn apply(&self, bindings: &Bindings) -> Term {
        match self {
            Term::Var(v) => match bindings.get(v) {
                Some(val) => val.to_term(),
                None => self.clone(),
            },
            Term::Linear(l) => match bindings.get(&l.var) {
                Some(Value::Int(i)) => Term::Int(l.eval(*i)),
                _ => self.clone(),
            },
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| a.apply(bindings)).collect()),
            Term::Int(_) | Term::Sym(_) => self.clone(),
        }
    }

    /// Evaluate the term to a ground [`Value`] under `bindings`.
    ///
    /// Returns `None` if any variable of the term is unbound (or a linear
    /// expression is applied to a non-integer value).
    pub fn eval(&self, bindings: &Bindings) -> Option<Value> {
        match self {
            Term::Var(v) => bindings.get(v).cloned(),
            Term::Int(i) => Some(Value::Int(*i)),
            Term::Sym(s) => Some(Value::Sym(*s)),
            Term::Linear(l) => match bindings.get(&l.var) {
                Some(Value::Int(i)) => Some(Value::Int(l.eval(*i))),
                _ => None,
            },
            Term::App(f, args) => {
                let vals: Option<Vec<Value>> = args.iter().map(|a| a.eval(bindings)).collect();
                Some(Value::app(*f, vals?))
            }
        }
    }

    /// Match this term against a ground value, extending `bindings`.
    ///
    /// This is one-way unification: the value is ground, the term may contain
    /// variables.  On success the bindings are extended (consistently with
    /// any existing bindings) and `true` is returned; on failure `bindings`
    /// may contain partial additions and should be discarded by the caller
    /// (the engine clones environments per candidate tuple).
    pub fn match_value(&self, value: &Value, bindings: &mut Bindings) -> bool {
        match self {
            Term::Var(v) => match bindings.get(v) {
                Some(existing) => existing == value,
                None => {
                    bindings.insert(*v, value.clone());
                    true
                }
            },
            Term::Int(i) => matches!(value, Value::Int(j) if i == j),
            Term::Sym(s) => matches!(value, Value::Sym(t) if s == t),
            Term::Linear(l) => match value {
                Value::Int(observed) => match bindings.get(&l.var) {
                    Some(Value::Int(bound)) => l.eval(*bound) == *observed,
                    Some(_) => false,
                    None => match l.invert(*observed) {
                        Some(x) => {
                            bindings.insert(l.var, Value::Int(x));
                            true
                        }
                        None => false,
                    },
                },
                _ => false,
            },
            Term::App(f, args) => match value {
                Value::App(cell) => {
                    let (vf, vargs) = (&cell.0, &cell.1);
                    if vf != f || vargs.len() != args.len() {
                        return false;
                    }
                    args.iter()
                        .zip(vargs.iter())
                        .all(|(t, v)| t.match_value(v, bindings))
                }
                _ => false,
            },
        }
    }

    /// Rename every variable `v` to `f(v)`.
    pub fn rename_vars(&self, f: &mut impl FnMut(Variable) -> Variable) -> Term {
        match self {
            Term::Var(v) => Term::Var(f(*v)),
            Term::Linear(l) => Term::Linear(LinearExpr {
                var: f(l.var),
                mul: l.mul,
                add: l.add,
            }),
            Term::App(functor, args) => {
                Term::App(*functor, args.iter().map(|a| a.rename_vars(f)).collect())
            }
            Term::Int(_) | Term::Sym(_) => self.clone(),
        }
    }

    /// The maximum function-symbol nesting depth of the term (constants and
    /// variables have depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Term::App(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// The *symbolic length* of the term per Section 10 of the paper:
    /// `|t| = 1` for a constant, `|f(t1..tn)| = 1 + Σ|ti|`, and variables
    /// contribute their (unknown, ≥ 1) lengths symbolically.
    pub fn symbolic_length(&self) -> SymbolicLength {
        match self {
            Term::Var(v) => SymbolicLength::var(*v),
            Term::Linear(l) => SymbolicLength::var(l.var),
            Term::Int(_) | Term::Sym(_) => SymbolicLength::constant(1),
            Term::App(_, args) => {
                let mut total = SymbolicLength::constant(1);
                for a in args {
                    total = total.plus(&a.symbolic_length());
                }
                total
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Sym(s) if s.as_str() == LIST_NIL => write!(f, "[]"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Linear(l) => write!(f, "{l}"),
            Term::App(functor, args) => {
                if functor.as_str() == LIST_CONS && args.len() == 2 {
                    return fmt_list_term(f, &args[0], &args[1]);
                }
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn fmt_list_term(f: &mut fmt::Formatter<'_>, head: &Term, tail: &Term) -> fmt::Result {
    write!(f, "[{head}")?;
    let mut current = tail;
    loop {
        match current {
            Term::Sym(s) if s.as_str() == LIST_NIL => break,
            Term::App(functor, args) if functor.as_str() == LIST_CONS && args.len() == 2 => {
                write!(f, ", {}", args[0])?;
                current = &args[1];
            }
            other => {
                write!(f, " | {other}")?;
                break;
            }
        }
    }
    write!(f, "]")
}

/// A symbolic term length: an integer constant plus a multiset of variable
/// lengths (each unknown but ≥ 1).  Used by the safety analysis
/// (Theorem 10.1) to bound binding-graph arc lengths.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SymbolicLength {
    /// The constant part of the length.
    pub constant: i64,
    /// Multiplicity of each variable's (unknown) length.
    pub vars: BTreeMap<Variable, i64>,
}

impl SymbolicLength {
    /// A purely constant length.
    pub fn constant(c: i64) -> SymbolicLength {
        SymbolicLength {
            constant: c,
            vars: BTreeMap::new(),
        }
    }

    /// The length of a single variable occurrence.
    pub fn var(v: Variable) -> SymbolicLength {
        let mut vars = BTreeMap::new();
        vars.insert(v, 1);
        SymbolicLength { constant: 0, vars }
    }

    /// Sum of two symbolic lengths.
    pub fn plus(&self, other: &SymbolicLength) -> SymbolicLength {
        let mut vars = self.vars.clone();
        for (v, m) in &other.vars {
            *vars.entry(*v).or_insert(0) += m;
        }
        SymbolicLength {
            constant: self.constant + other.constant,
            vars,
        }
    }

    /// Difference `self - other`.
    pub fn minus(&self, other: &SymbolicLength) -> SymbolicLength {
        let mut vars = self.vars.clone();
        for (v, m) in &other.vars {
            *vars.entry(*v).or_insert(0) -= m;
        }
        vars.retain(|_, m| *m != 0);
        SymbolicLength {
            constant: self.constant - other.constant,
            vars,
        }
    }

    /// A conservative lower bound of the length, assuming each variable's
    /// length is at least 1 (positive coefficients contribute their
    /// coefficient, negative coefficients are unbounded below and make the
    /// result `None`).
    pub fn lower_bound(&self, upper_bounds: &BTreeMap<Variable, i64>) -> Option<i64> {
        let mut total = self.constant;
        for (v, m) in &self.vars {
            if *m >= 0 {
                total += m; // each |v| >= 1
            } else if let Some(ub) = upper_bounds.get(v) {
                total += m * ub;
            } else {
                return None; // unbounded below
            }
        }
        Some(total)
    }
}

/// A ground value: what relations store.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A symbolic constant.
    Sym(Symbol),
    /// A ground compound term, reference-counted so rows stay cheap to clone.
    App(Arc<(Symbol, Vec<Value>)>),
}

impl Value {
    /// A symbolic constant value.
    pub fn sym(name: &str) -> Value {
        Value::Sym(Symbol::new(name))
    }

    /// An integer value.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// A ground compound value.
    pub fn app(functor: Symbol, args: Vec<Value>) -> Value {
        Value::App(Arc::new((functor, args)))
    }

    /// The empty list.
    pub fn nil() -> Value {
        Value::sym(LIST_NIL)
    }

    /// A list cell.
    pub fn cons(head: Value, tail: Value) -> Value {
        Value::app(Symbol::new(LIST_CONS), vec![head, tail])
    }

    /// A proper list of the given items.
    pub fn list(items: Vec<Value>) -> Value {
        items
            .into_iter()
            .rev()
            .fold(Value::nil(), |acc, item| Value::cons(item, acc))
    }

    /// If this value is a proper list, return its elements.
    pub fn as_list(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut current = self.clone();
        loop {
            match current {
                Value::Sym(s) if s.as_str() == LIST_NIL => return Some(out),
                Value::App(cell) if cell.0.as_str() == LIST_CONS && cell.1.len() == 2 => {
                    out.push(cell.1[0].clone());
                    current = cell.1[1].clone();
                }
                _ => return None,
            }
        }
    }

    /// Convert back into a (ground) term.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Int(i) => Term::Int(*i),
            Value::Sym(s) => Term::Sym(*s),
            Value::App(cell) => Term::App(cell.0, cell.1.iter().map(Value::to_term).collect()),
        }
    }

    /// The ground length of the value per Section 10 (`|c| = 1`,
    /// `|f(t1..tn)| = 1 + Σ|ti|`).
    pub fn length(&self) -> i64 {
        match self {
            Value::Int(_) | Value::Sym(_) => 1,
            Value::App(cell) => 1 + cell.1.iter().map(Value::length).sum::<i64>(),
        }
    }

    /// The maximum nesting depth of the value.
    pub fn depth(&self) -> usize {
        match self {
            Value::Int(_) | Value::Sym(_) => 0,
            Value::App(cell) => 1 + cell.1.iter().map(Value::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_term())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

/// A binding environment mapping variables to ground values.
pub type Bindings = HashMap<Variable, Value>;

/// A substitution mapping variables to (possibly non-ground) terms, used by
/// full unification.
pub type Substitution = HashMap<Variable, Term>;

/// Apply a substitution to a term (recursively resolving bound variables).
pub fn apply_subst(term: &Term, subst: &Substitution) -> Term {
    match term {
        Term::Var(v) => match subst.get(v) {
            Some(t) => apply_subst(t, subst),
            None => term.clone(),
        },
        Term::Linear(l) => match subst.get(&l.var) {
            Some(Term::Int(i)) => Term::Int(l.eval(*i)),
            Some(Term::Var(v2)) => Term::Linear(LinearExpr {
                var: *v2,
                mul: l.mul,
                add: l.add,
            }),
            _ => term.clone(),
        },
        Term::App(f, args) => Term::App(*f, args.iter().map(|a| apply_subst(a, subst)).collect()),
        Term::Int(_) | Term::Sym(_) => term.clone(),
    }
}

fn occurs(v: Variable, term: &Term, subst: &Substitution) -> bool {
    match term {
        Term::Var(u) => {
            if *u == v {
                true
            } else if let Some(t) = subst.get(u) {
                occurs(v, t, subst)
            } else {
                false
            }
        }
        Term::Linear(l) => l.var == v,
        Term::App(_, args) => args.iter().any(|a| occurs(v, a, subst)),
        Term::Int(_) | Term::Sym(_) => false,
    }
}

fn resolve<'a>(term: &'a Term, subst: &'a Substitution) -> &'a Term {
    let mut current = term;
    while let Term::Var(v) = current {
        match subst.get(v) {
            Some(t) => current = t,
            None => break,
        }
    }
    current
}

/// Unify two terms, extending `subst`; returns `false` (leaving `subst` in an
/// unspecified extended state) on failure.  Performs the occurs check.
///
/// Linear expressions unify only with integer constants or when their
/// variables resolve to integers.
pub fn unify(a: &Term, b: &Term, subst: &mut Substitution) -> bool {
    let a = resolve(a, subst).clone();
    let b = resolve(b, subst).clone();
    match (&a, &b) {
        (Term::Var(v), Term::Var(u)) if v == u => true,
        (Term::Var(v), other) | (other, Term::Var(v)) => {
            if occurs(*v, other, subst) {
                false
            } else {
                subst.insert(*v, other.clone());
                true
            }
        }
        (Term::Int(i), Term::Int(j)) => i == j,
        (Term::Sym(s), Term::Sym(t)) => s == t,
        (Term::Linear(l), Term::Int(i)) | (Term::Int(i), Term::Linear(l)) => {
            match resolve(&Term::Var(l.var), subst) {
                Term::Int(bound) => l.eval(*bound) == *i,
                Term::Var(v) => match l.invert(*i) {
                    Some(x) => {
                        subst.insert(*v, Term::Int(x));
                        true
                    }
                    None => false,
                },
                _ => false,
            }
        }
        (Term::App(f, fa), Term::App(g, ga)) => {
            f == g && fa.len() == ga.len() && fa.iter().zip(ga).all(|(x, y)| unify(x, y, subst))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_term_to_value_roundtrip() {
        let t = Term::app("f", vec![Term::sym("a"), Term::int(3)]);
        let v = t.to_value().unwrap();
        assert_eq!(v.to_term(), t);
        assert!(t.is_ground());
    }

    #[test]
    fn non_ground_term_has_no_value() {
        let t = Term::app("f", vec![Term::var("X")]);
        assert!(t.to_value().is_none());
        assert!(!t.is_ground());
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let t = Term::app(
            "f",
            vec![
                Term::var("X"),
                Term::app("g", vec![Term::var("Y"), Term::var("X")]),
            ],
        );
        let vars = t.vars();
        assert_eq!(vars, vec![Variable::new("X"), Variable::new("Y")]);
    }

    #[test]
    fn match_binds_variables() {
        let t = Term::app("f", vec![Term::var("X"), Term::var("X")]);
        let v = Value::app(Symbol::new("f"), vec![Value::sym("a"), Value::sym("a")]);
        let mut b = Bindings::new();
        assert!(t.match_value(&v, &mut b));
        assert_eq!(b.get(&Variable::new("X")), Some(&Value::sym("a")));

        let v2 = Value::app(Symbol::new("f"), vec![Value::sym("a"), Value::sym("b")]);
        let mut b2 = Bindings::new();
        assert!(!t.match_value(&v2, &mut b2));
    }

    #[test]
    fn match_respects_existing_bindings() {
        let t = Term::var("X");
        let mut b = Bindings::new();
        b.insert(Variable::new("X"), Value::sym("a"));
        assert!(t.match_value(&Value::sym("a"), &mut b));
        assert!(!t.match_value(&Value::sym("b"), &mut b));
    }

    #[test]
    fn linear_forward_and_inverse() {
        let l = LinearExpr {
            var: Variable::new("K"),
            mul: 2,
            add: 2,
        };
        assert_eq!(l.eval(3), 8);
        assert_eq!(l.invert(8), Some(3));
        assert_eq!(l.invert(7), None);

        let t = Term::Linear(l);
        let mut b = Bindings::new();
        assert!(t.match_value(&Value::Int(8), &mut b));
        assert_eq!(b.get(&Variable::new("K")), Some(&Value::Int(3)));
        // Bound case: must agree.
        assert!(t.match_value(&Value::Int(8), &mut b));
        assert!(!t.match_value(&Value::Int(10), &mut b));
    }

    #[test]
    fn linear_inversion_near_saturation_does_not_overflow() {
        // eval_parts saturates, so extreme values occur in divergent runs;
        // inverting them must answer None, not wrap or panic.
        assert_eq!(LinearExpr::invert_parts(1, -1, i64::MAX), None);
        assert_eq!(LinearExpr::invert_parts(-1, 0, i64::MIN), None);
        assert_eq!(LinearExpr::invert_parts(2, i64::MIN, i64::MAX), None);
        // Ordinary inversion still works.
        assert_eq!(LinearExpr::invert_parts(3, 1, 10), Some(3));
    }

    #[test]
    fn linear_eval_under_bindings() {
        let t = Term::linear(Variable::new("H"), 5, 4);
        let mut b = Bindings::new();
        b.insert(Variable::new("H"), Value::Int(7));
        assert_eq!(t.eval(&b), Some(Value::Int(39)));
    }

    #[test]
    fn linear_identity_collapses_to_var() {
        assert_eq!(Term::linear(Variable::new("I"), 1, 0), Term::var("I"));
    }

    #[test]
    fn list_display() {
        let t = Term::list(vec![Term::sym("a"), Term::sym("b")], Term::nil());
        assert_eq!(t.to_string(), "[a, b]");
        let open = Term::list(vec![Term::var("V")], Term::var("X"));
        assert_eq!(open.to_string(), "[V | X]");
    }

    #[test]
    fn value_list_roundtrip() {
        let v = Value::list(vec![Value::sym("a"), Value::int(2), Value::sym("c")]);
        assert_eq!(
            v.as_list().unwrap(),
            vec![Value::sym("a"), Value::int(2), Value::sym("c")]
        );
        assert_eq!(v.length(), 7); // 3 cons cells + 3 elements + nil
    }

    #[test]
    fn symbolic_length_matches_paper_example() {
        // |X.X| = 2|X| + 1 in the paper; here cons(X, X).
        let t = Term::cons(Term::var("X"), Term::var("X"));
        let len = t.symbolic_length();
        assert_eq!(len.constant, 1);
        assert_eq!(len.vars.get(&Variable::new("X")), Some(&2));
        // lower bound assuming |X| >= 1 is 3.
        assert_eq!(len.lower_bound(&BTreeMap::new()), Some(3));
    }

    #[test]
    fn symbolic_length_difference() {
        let a = Term::cons(Term::var("V"), Term::var("X")).symbolic_length();
        let b = Term::var("X").symbolic_length();
        let d = a.minus(&b);
        assert_eq!(d.constant, 1);
        assert_eq!(d.vars.get(&Variable::new("V")), Some(&1));
        assert_eq!(d.lower_bound(&BTreeMap::new()), Some(2));
    }

    #[test]
    fn unify_basic() {
        let mut s = Substitution::new();
        let a = Term::app("f", vec![Term::var("X"), Term::sym("b")]);
        let b = Term::app("f", vec![Term::sym("a"), Term::var("Y")]);
        assert!(unify(&a, &b, &mut s));
        assert_eq!(apply_subst(&a, &s), apply_subst(&b, &s));
    }

    #[test]
    fn unify_occurs_check() {
        let mut s = Substitution::new();
        let a = Term::var("X");
        let b = Term::app("f", vec![Term::var("X")]);
        assert!(!unify(&a, &b, &mut s));
    }

    #[test]
    fn rename_vars() {
        let t = Term::app("f", vec![Term::var("X"), Term::var("Y")]);
        let renamed = t.rename_vars(&mut |v| Variable::new(&format!("{}_1", v.name())));
        assert_eq!(
            renamed,
            Term::app("f", vec![Term::var("X_1"), Term::var("Y_1")])
        );
    }

    #[test]
    fn depths() {
        assert_eq!(Term::sym("a").depth(), 0);
        assert_eq!(Term::cons(Term::sym("a"), Term::nil()).depth(), 1);
        assert_eq!(Value::list(vec![Value::int(1), Value::int(2)]).depth(), 2);
    }
}
