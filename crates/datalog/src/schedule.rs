//! Stratified rule schedules: the predicate dependency graph condensed
//! into a topologically ordered sequence of *strata*.
//!
//! A [`Schedule`] is the static shape the engine's fixpoint scheduler and
//! the planner's safety pre-checks share.  [`Schedule::build`] constructs
//! the rule/predicate dependency graph of a (possibly rewritten) program,
//! computes its strongly connected components
//! ([`DependencyGraph::sccs`]), and emits one [`Stratum`] per SCC that
//! defines at least one rule, in dependency (reverse topological) order:
//! every derived predicate a stratum's rules read is defined in the same
//! stratum or an earlier one, never a later one.
//!
//! # What consumers do with it
//!
//! * The engine's `FixpointRunner` walks strata in order each iteration,
//!   retires a stratum permanently once it and everything below it have
//!   converged (no rule outside a stratum can ever feed it again — all
//!   rules deriving a predicate live in that predicate's stratum), and
//!   fans the active strata's rule evaluations out across worker threads.
//! * The planner's counting safety pre-check asks which strata are
//!   *recursive through counting-indexed predicates*
//!   ([`Schedule::recursive_counting_strata`]) — the cones whose
//!   bottom-up evaluation diverges when the paper's Theorem 10.3 argument
//!   graph is cyclic.
//! * The incremental layer seeds resumed deltas into the lowest dirty
//!   stratum: strata below the seeds retire on the first iteration
//!   instead of re-checking the full rule list forever.
//!
//! # Determinism contract
//!
//! The schedule is a *pure function of the program*: strata are ordered
//! by the SCC condensation (ties broken by the deterministic Tarjan
//! traversal over `BTreeSet`-ordered predicates), rules within a stratum
//! stay in program order, and independence groups are emitted in
//! first-rule order.  Combined with the engine's deterministic merge
//! (stratum order, then rule index, then shard index) this is what makes
//! evaluation counters — answers, `rule_firings`, summed `join_probes` —
//! independent of how many worker threads execute the schedule.

use crate::analysis::DependencyGraph;
use crate::pred::PredName;
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};

/// One stratum of a [`Schedule`]: a strongly connected component of the
/// predicate dependency graph together with the rules that define its
/// predicates.
#[derive(Clone, Debug)]
pub struct Stratum {
    /// The derived predicates defined by this stratum (the SCC members
    /// that have rules).
    pub preds: BTreeSet<PredName>,
    /// Indices (into `program.rules`) of the rules whose head predicate
    /// belongs to this stratum, in program order.
    pub rules: Vec<usize>,
    /// True iff the stratum is recursive: its SCC has more than one
    /// predicate, or its single predicate depends on itself.
    pub recursive: bool,
    /// True iff some rule of this stratum is *guarded* — carries a negated
    /// atom or an aggregate head.  Guarded strata force the engine into
    /// sequential stratified mode: every lower stratum must be finished
    /// (so negation can complement against it and aggregates fold complete
    /// groups) before this stratum starts.
    pub guarded: bool,
    /// Partition of [`Stratum::rules`] into mutually *independent* groups:
    /// two rules land in the same group iff they are (transitively)
    /// connected by a shared stratum-local predicate — a head they both
    /// derive, or one's head read in the other's body.  Rules in different
    /// groups touch disjoint writable predicates, so even an engine with
    /// in-place writes could run them concurrently; the engine's
    /// deferred-write merge makes *all* rules of a stratum safe to
    /// evaluate concurrently, and uses these groups for diagnostics and
    /// scheduling tests.  Groups are ordered by their first rule index,
    /// rules ascending within each group.
    pub groups: Vec<Vec<usize>>,
}

/// A stratification violation: a negated or aggregated dependency edge
/// that stays *inside* a strongly connected component, so the callee can
/// never be finished before the caller needs to complement against it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StratificationViolation {
    /// The rule-head predicate whose guarded edge closes the cycle.
    pub head: PredName,
    /// The negated (or aggregated) predicate it depends on.
    pub pred: PredName,
    /// The members of the offending SCC, in `BTreeSet` order.
    pub cycle: Vec<PredName>,
}

impl std::fmt::Display for StratificationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cycle = self
            .cycle
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        write!(
            f,
            "{} depends on {} through negation/aggregation inside the cycle [{}]",
            self.head, self.pred, cycle
        )
    }
}

/// A stratified evaluation schedule for a program.  See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    strata: Vec<Stratum>,
    /// Rule index -> stratum index.
    stratum_of_rule: Vec<usize>,
    /// Derived predicate -> stratum index.
    stratum_of_pred: BTreeMap<PredName, usize>,
    /// Guarded edges that stay inside one SCC (unstratifiable cycles).
    violations: Vec<StratificationViolation>,
}

impl Schedule {
    /// Build the schedule of `program`: dependency graph, SCC
    /// condensation, one stratum per rule-defining SCC in dependency
    /// order, plus the per-stratum independence groups.
    pub fn build(program: &Program) -> Schedule {
        let graph = DependencyGraph::build(program);
        // Every rule needs a stratum, so cover all head predicates — a
        // superset of `derived_preds()`, which excludes ground fact rules.
        let derived: BTreeSet<PredName> =
            program.rules.iter().map(|r| r.head.pred.clone()).collect();
        let mut strata: Vec<Stratum> = Vec::new();
        let mut stratum_of_pred: BTreeMap<PredName, usize> = BTreeMap::new();
        // `sccs()` yields components in reverse topological order (callees
        // before callers): exactly evaluation order.  Base predicates have
        // no outgoing edges, so they always form rule-less singleton SCCs
        // and are filtered out here.
        for scc in graph.sccs() {
            let preds: BTreeSet<PredName> = scc.intersection(&derived).cloned().collect();
            if preds.is_empty() {
                continue;
            }
            let recursive = scc.len() > 1 || {
                let only = scc.iter().next().expect("SCCs are non-empty");
                graph.successors(only).contains(only)
            };
            let index = strata.len();
            for pred in &preds {
                stratum_of_pred.insert(pred.clone(), index);
            }
            strata.push(Stratum {
                preds,
                rules: Vec::new(),
                recursive,
                guarded: false,
                groups: Vec::new(),
            });
        }
        let mut stratum_of_rule = Vec::with_capacity(program.rules.len());
        for rule in &program.rules {
            let s = stratum_of_pred[&rule.head.pred];
            strata[s].rules.push(stratum_of_rule.len());
            stratum_of_rule.push(s);
            if rule.is_guarded() {
                strata[s].guarded = true;
            }
        }
        for stratum in &mut strata {
            stratum.groups = independence_groups(program, stratum);
        }
        // A strict (negated/aggregated) edge whose endpoints share an SCC
        // can never be satisfied by evaluating strata in order: record the
        // violation so planners and the engine can refuse with a typed
        // error instead of computing a wrong fixpoint.
        let mut violations = Vec::new();
        for (head, pred) in &graph.strict_edges {
            let (Some(&sh), Some(&sp)) = (stratum_of_pred.get(head), stratum_of_pred.get(pred))
            else {
                continue; // base predicates are always in stratum "minus one"
            };
            if sh == sp {
                violations.push(StratificationViolation {
                    head: head.clone(),
                    pred: pred.clone(),
                    cycle: strata[sh].preds.iter().cloned().collect(),
                });
            }
        }
        Schedule {
            strata,
            stratum_of_rule,
            stratum_of_pred,
            violations,
        }
    }

    /// The stratification violations of the program (empty iff the program
    /// is stratifiable).  Each entry names the guarded edge and the SCC it
    /// closes; consumers surface the first as the typed refusal reason.
    pub fn stratification_violations(&self) -> &[StratificationViolation] {
        &self.violations
    }

    /// True iff every negated/aggregated dependency crosses strictly
    /// downward between strata.
    pub fn is_stratified(&self) -> bool {
        self.violations.is_empty()
    }

    /// True iff some stratum carries negation or aggregation (the engine
    /// switches to sequential stratified mode when so).
    pub fn has_guarded_strata(&self) -> bool {
        self.strata.iter().any(|s| s.guarded)
    }

    /// The strata in evaluation (dependency) order.
    pub fn strata(&self) -> &[Stratum] {
        &self.strata
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// True iff the program had no rules.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// The stratum index of rule `rule_idx`.
    pub fn stratum_of_rule(&self, rule_idx: usize) -> usize {
        self.stratum_of_rule[rule_idx]
    }

    /// The stratum index deriving `pred`, if the program derives it.
    pub fn stratum_of_pred(&self, pred: &PredName) -> Option<usize> {
        self.stratum_of_pred.get(pred).copied()
    }

    /// The strata that are recursive *through counting-indexed
    /// predicates* — an SCC containing an indexed, counting, or
    /// supplementary-counting predicate (the rewrite outputs of Sections
    /// 6–7).  When the query's argument graph is cyclic (Theorem 10.3),
    /// these are exactly the cones whose counting indexes grow without
    /// bound, so the planner refuses such plans up front.
    pub fn recursive_counting_strata(&self) -> impl Iterator<Item = &Stratum> + '_ {
        self.strata.iter().filter(|s| {
            s.recursive
                && s.preds.iter().any(|p| {
                    matches!(
                        p,
                        PredName::Indexed { .. }
                            | PredName::Count { .. }
                            | PredName::SupCount { .. }
                    )
                })
        })
    }
}

/// Partition `stratum.rules` into independence groups (see
/// [`Stratum::groups`]): union-find over the rules, keyed by the
/// stratum-local predicates each rule touches (its head, plus any body
/// predicate defined in this stratum).  Predicates of *lower* strata are
/// frozen by the time a stratum runs, so sharing them read-only does not
/// couple two rules.
fn independence_groups(program: &Program, stratum: &Stratum) -> Vec<Vec<usize>> {
    let n = stratum.rules.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut owner: BTreeMap<&PredName, usize> = BTreeMap::new();
    for (slot, &rule_idx) in stratum.rules.iter().enumerate() {
        let rule = &program.rules[rule_idx];
        let touched = std::iter::once(&rule.head.pred)
            .chain(rule.body.iter().map(|a| &a.pred))
            .chain(rule.negated.iter().map(|a| &a.pred))
            .filter(|p| stratum.preds.contains(*p));
        for pred in touched {
            match owner.get(pred) {
                Some(&prev) => {
                    let (a, b) = (find(&mut parent, prev), find(&mut parent, slot));
                    if a != b {
                        // Union toward the smaller slot so the
                        // representative is the group's first rule.
                        let (lo, hi) = (a.min(b), a.max(b));
                        parent[hi] = lo;
                    }
                }
                None => {
                    owner.insert(pred, slot);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for slot in 0..n {
        let root = find(&mut parent, slot);
        groups.entry(root).or_default().push(stratum.rules[slot]);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn single_scc_program_is_one_stratum() {
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        assert_eq!(schedule.len(), 1);
        let stratum = &schedule.strata()[0];
        assert_eq!(stratum.rules, vec![0, 1]);
        assert!(stratum.recursive);
        // Both rules derive anc: one group.
        assert_eq!(stratum.groups, vec![vec![0, 1]]);
        assert_eq!(schedule.stratum_of_pred(&PredName::plain("anc")), Some(0));
        assert_eq!(schedule.stratum_of_pred(&PredName::plain("par")), None);
    }

    #[test]
    fn strata_respect_dependency_order() {
        // sg feeds p; sg's stratum must come first.
        let program = parse_program(
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        assert_eq!(schedule.len(), 2);
        let sg = schedule.stratum_of_pred(&PredName::plain("sg")).unwrap();
        let p = schedule.stratum_of_pred(&PredName::plain("p")).unwrap();
        assert!(sg < p, "callee stratum must precede caller stratum");
        assert_eq!(schedule.stratum_of_rule(2), sg);
        assert_eq!(schedule.stratum_of_rule(0), p);
        // Every derived body predicate's stratum <= the head's stratum.
        for (i, rule) in program.rules.iter().enumerate() {
            for atom in &rule.body {
                if let Some(s) = schedule.stratum_of_pred(&atom.pred) {
                    assert!(s <= schedule.stratum_of_rule(i));
                }
            }
        }
    }

    #[test]
    fn non_recursive_rules_form_independent_groups() {
        // label and tag2 share nothing: same stratum only if mutually
        // recursive (they are not), so they form separate singleton strata;
        // two heads in ONE stratum needs mutual recursion.
        let program = parse_program(
            "a(X) :- b(X), c(X).
             c(X) :- a(X).
             d(X) :- e(X).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        // a and c are mutually recursive: one stratum with one group; d is
        // its own stratum.
        let ac = schedule.stratum_of_pred(&PredName::plain("a")).unwrap();
        assert_eq!(schedule.stratum_of_pred(&PredName::plain("c")), Some(ac));
        let stratum = &schedule.strata()[ac];
        assert!(stratum.recursive);
        assert_eq!(stratum.groups.len(), 1);
        let d = schedule.stratum_of_pred(&PredName::plain("d")).unwrap();
        assert_ne!(d, ac);
        assert!(!schedule.strata()[d].recursive);
    }

    #[test]
    fn independent_rules_within_a_stratum_split_into_groups() {
        // Mutually recursive pair (p, q) plus an unrelated recursive r in
        // ITS own stratum; within the (p, q) stratum the two rule chains
        // are coupled through the shared heads.
        let program = parse_program(
            "p(X) :- base(X).
             p(X) :- q(X).
             q(X) :- p(X), b2(X).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        assert_eq!(schedule.len(), 1);
        assert_eq!(schedule.strata()[0].groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_program_has_no_strata() {
        let schedule = Schedule::build(&Program::from_rules(Vec::new()));
        assert!(schedule.is_empty());
        assert_eq!(schedule.len(), 0);
        assert!(schedule.is_stratified());
        assert!(!schedule.has_guarded_strata());
    }

    #[test]
    fn win_lose_program_stratifies_with_guarded_stratum() {
        // The classic win/lose game: win is positive, lose complements it.
        let program = parse_program(
            "win(X) :- move(X, Y), not win(Y).
             lose(X) :- pos(X), not win(X).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        // win negates *itself* through move: unstratifiable.
        assert!(!schedule.is_stratified());
        let v = &schedule.stratification_violations()[0];
        assert_eq!(v.head, PredName::plain("win"));
        assert_eq!(v.pred, PredName::plain("win"));
        assert!(v.to_string().contains("win"));

        // The standard stratified variant over a DAG of moves: reached/win
        // positive, lose in a strictly higher stratum.
        let program = parse_program(
            "can_move(X) :- move(X, Y).
             lose(X) :- pos(X), not can_move(X).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        assert!(schedule.is_stratified());
        assert!(schedule.has_guarded_strata());
        let cm = schedule
            .stratum_of_pred(&PredName::plain("can_move"))
            .unwrap();
        let lose = schedule.stratum_of_pred(&PredName::plain("lose")).unwrap();
        assert!(cm < lose, "negated callee must sit strictly lower");
        assert!(!schedule.strata()[cm].guarded);
        assert!(schedule.strata()[lose].guarded);
    }

    #[test]
    fn aggregate_rules_make_guarded_strata_and_cycles_are_violations() {
        let program = parse_program(
            "cost(P, sum<C>) :- part(P, S), price(S, C).
             price(S, C) :- base_price(S, C).",
        )
        .unwrap();
        let schedule = Schedule::build(&program);
        assert!(schedule.is_stratified());
        assert!(schedule.has_guarded_strata());
        let price = schedule.stratum_of_pred(&PredName::plain("price")).unwrap();
        let cost = schedule.stratum_of_pred(&PredName::plain("cost")).unwrap();
        assert!(price < cost);

        // Aggregate through its own recursion: refused.
        let program = parse_program("total(P, sum<C>) :- sub(P, Q), total(Q, C).").unwrap();
        let schedule = Schedule::build(&program);
        assert!(!schedule.is_stratified());
        assert_eq!(
            schedule.stratification_violations()[0].pred,
            PredName::plain("total")
        );
    }
}
