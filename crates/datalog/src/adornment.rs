//! Adornments: bound/free annotations on predicate argument positions
//! (Section 3 of the paper).

use std::fmt;
use std::str::FromStr;

/// A single argument position annotation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Binding {
    /// The argument is bound (all its variables are bound).
    Bound,
    /// The argument is free (at least one of its variables is free).
    Free,
}

impl Binding {
    /// `true` for [`Binding::Bound`].
    pub fn is_bound(self) -> bool {
        matches!(self, Binding::Bound)
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::Bound => write!(f, "b"),
            Binding::Free => write!(f, "f"),
        }
    }
}

/// An adornment for an `n`-ary predicate: a string of `b`/`f` of length `n`
/// (Section 3).  `p^bf` denotes "first argument bound, second free".
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Adornment(Vec<Binding>);

impl Adornment {
    /// Build an adornment from explicit bindings.
    pub fn new(bindings: Vec<Binding>) -> Adornment {
        Adornment(bindings)
    }

    /// An all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![Binding::Free; arity])
    }

    /// An all-bound adornment of the given arity.
    pub fn all_bound(arity: usize) -> Adornment {
        Adornment(vec![Binding::Bound; arity])
    }

    /// Build an adornment from the set of bound positions.
    pub fn from_bound_positions(arity: usize, bound: &[usize]) -> Adornment {
        let mut v = vec![Binding::Free; arity];
        for &i in bound {
            v[i] = Binding::Bound;
        }
        Adornment(v)
    }

    /// The arity of the adorned predicate.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The binding at position `i`.
    pub fn get(&self, i: usize) -> Binding {
        self.0[i]
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = Binding> + '_ {
        self.0.iter().copied()
    }

    /// Indices of the bound positions, in order.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.is_bound().then_some(i))
            .collect()
    }

    /// Indices of the free positions, in order.
    pub fn free_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, b)| (!b.is_bound()).then_some(i))
            .collect()
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| b.is_bound()).count()
    }

    /// True iff every position is free.
    pub fn is_all_free(&self) -> bool {
        self.0.iter().all(|b| !b.is_bound())
    }

    /// True iff every position is bound.
    pub fn is_all_bound(&self) -> bool {
        self.0.iter().all(|b| b.is_bound())
    }

    /// True iff every position bound in `self` is also bound in `other`
    /// (i.e. `other` passes at least as much information).
    pub fn is_weaker_or_equal(&self, other: &Adornment) -> bool {
        self.arity() == other.arity()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| !a.is_bound() || b.is_bound())
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromStr for Adornment {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                'b' => Ok(Binding::Bound),
                'f' => Ok(Binding::Free),
                other => Err(format!("invalid adornment character: {other:?}")),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Adornment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let a: Adornment = "bf".parse().unwrap();
        assert_eq!(a.to_string(), "bf");
        assert_eq!(a.arity(), 2);
        assert!(a.get(0).is_bound());
        assert!(!a.get(1).is_bound());
        assert!("bx".parse::<Adornment>().is_err());
    }

    #[test]
    fn positions() {
        let a: Adornment = "bfb".parse().unwrap();
        assert_eq!(a.bound_positions(), vec![0, 2]);
        assert_eq!(a.free_positions(), vec![1]);
        assert_eq!(a.bound_count(), 2);
    }

    #[test]
    fn all_free_all_bound() {
        assert!(Adornment::all_free(3).is_all_free());
        assert!(Adornment::all_bound(2).is_all_bound());
        assert_eq!(Adornment::all_free(3).to_string(), "fff");
    }

    #[test]
    fn from_bound_positions() {
        let a = Adornment::from_bound_positions(3, &[2]);
        assert_eq!(a.to_string(), "ffb");
    }

    #[test]
    fn weaker_or_equal() {
        let bf: Adornment = "bf".parse().unwrap();
        let bb: Adornment = "bb".parse().unwrap();
        let ff: Adornment = "ff".parse().unwrap();
        assert!(ff.is_weaker_or_equal(&bf));
        assert!(bf.is_weaker_or_equal(&bb));
        assert!(!bb.is_weaker_or_equal(&bf));
        assert!(bf.is_weaker_or_equal(&bf));
    }
}
