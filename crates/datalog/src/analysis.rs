//! Program analyses: predicate dependency graph, strongly connected
//! components ("blocks" of mutually recursive predicates, Section 8), and
//! recursion classification.

use crate::pred::PredName;
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};

/// The predicate dependency graph of a program: an edge `p -> q` exists when
/// some rule with head `p` mentions `q` in its body (positively or under
/// `not`).
///
/// Edges through a negated atom, and *every* body edge of an aggregate rule
/// (an aggregate must see its input relation complete), are additionally
/// recorded as *strict*: stratified semantics requires the callee to sit in
/// a strictly lower stratum, so a strict edge inside a strongly connected
/// component is a stratification violation.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Adjacency: head predicate -> body predicates it depends on.
    pub edges: BTreeMap<PredName, BTreeSet<PredName>>,
    /// All predicates mentioned by the program.
    pub nodes: BTreeSet<PredName>,
    /// Edges `(head, callee)` that must cross strata downward: negated body
    /// atoms, and all body atoms of aggregate rules.
    pub strict_edges: BTreeSet<(PredName, PredName)>,
}

impl DependencyGraph {
    /// Build the dependency graph of `program`.
    pub fn build(program: &Program) -> DependencyGraph {
        let mut edges: BTreeMap<PredName, BTreeSet<PredName>> = BTreeMap::new();
        let mut nodes = BTreeSet::new();
        let mut strict_edges = BTreeSet::new();
        for rule in &program.rules {
            nodes.insert(rule.head.pred.clone());
            let entry = edges.entry(rule.head.pred.clone()).or_default();
            for atom in &rule.body {
                nodes.insert(atom.pred.clone());
                entry.insert(atom.pred.clone());
                if rule.aggregate.is_some() {
                    strict_edges.insert((rule.head.pred.clone(), atom.pred.clone()));
                }
            }
            for atom in &rule.negated {
                nodes.insert(atom.pred.clone());
                entry.insert(atom.pred.clone());
                strict_edges.insert((rule.head.pred.clone(), atom.pred.clone()));
            }
        }
        DependencyGraph {
            edges,
            nodes,
            strict_edges,
        }
    }

    /// Successors of a predicate (empty set if it has no rules).
    pub fn successors(&self, pred: &PredName) -> BTreeSet<PredName> {
        self.edges.get(pred).cloned().unwrap_or_default()
    }

    /// Predicates reachable from `start` (including `start` itself).
    pub fn reachable_from(&self, start: &PredName) -> BTreeSet<PredName> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start.clone()];
        while let Some(p) = stack.pop() {
            if seen.insert(p.clone()) {
                for q in self.successors(&p) {
                    if !seen.contains(&q) {
                        stack.push(q);
                    }
                }
            }
        }
        seen
    }

    /// The strongly connected components of the graph, in reverse
    /// topological order (callees before callers).  Each component is a
    /// *block* of mutually recursive predicates in the sense of Section 8.
    pub fn sccs(&self) -> Vec<BTreeSet<PredName>> {
        // Iterative Tarjan's algorithm.
        #[derive(Clone)]
        struct NodeState {
            index: Option<usize>,
            lowlink: usize,
            on_stack: bool,
        }
        let nodes: Vec<PredName> = self.nodes.iter().cloned().collect();
        let id_of: BTreeMap<PredName, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        let succs: Vec<Vec<usize>> = nodes
            .iter()
            .map(|p| {
                self.successors(p)
                    .iter()
                    .filter_map(|q| id_of.get(q).copied())
                    .collect()
            })
            .collect();

        let mut state = vec![
            NodeState {
                index: None,
                lowlink: 0,
                on_stack: false,
            };
            nodes.len()
        ];
        let mut index = 0usize;
        let mut stack: Vec<usize> = Vec::new();
        let mut components: Vec<BTreeSet<PredName>> = Vec::new();

        for start in 0..nodes.len() {
            if state[start].index.is_some() {
                continue;
            }
            // Explicit DFS stack of (node, next-successor-position).
            let mut work: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut pos)) = work.last_mut() {
                if *pos == 0 {
                    state[v].index = Some(index);
                    state[v].lowlink = index;
                    index += 1;
                    stack.push(v);
                    state[v].on_stack = true;
                }
                if *pos < succs[v].len() {
                    let w = succs[v][*pos];
                    *pos += 1;
                    match state[w].index {
                        None => work.push((w, 0)),
                        Some(widx) => {
                            if state[w].on_stack {
                                state[v].lowlink = state[v].lowlink.min(widx);
                            }
                        }
                    }
                } else {
                    // Finished v.
                    if state[v].lowlink == state[v].index.unwrap() {
                        let mut component = BTreeSet::new();
                        loop {
                            let w = stack.pop().expect("scc stack non-empty");
                            state[w].on_stack = false;
                            component.insert(nodes[w].clone());
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                    work.pop();
                    if let Some(&mut (parent, _)) = work.last_mut() {
                        let child_low = state[v].lowlink;
                        state[parent].lowlink = state[parent].lowlink.min(child_low);
                    }
                }
            }
        }
        components
    }

    /// The block (maximal set of mutually recursive predicates) containing
    /// `pred`, per Section 8.  A non-recursive predicate forms a singleton.
    pub fn block_of(&self, pred: &PredName) -> BTreeSet<PredName> {
        self.sccs()
            .into_iter()
            .find(|c| c.contains(pred))
            .unwrap_or_else(|| std::iter::once(pred.clone()).collect())
    }

    /// True iff `pred` is (directly or mutually) recursive.
    pub fn is_recursive(&self, pred: &PredName) -> bool {
        let block = self.block_of(pred);
        if block.len() > 1 {
            return true;
        }
        // A singleton SCC is recursive only if it has a self loop.
        self.successors(pred).contains(pred)
    }
}

/// Classification of a program's recursion structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecursionKind {
    /// No derived predicate depends on a derived predicate.
    NonRecursive,
    /// Every recursive rule has at most one occurrence of a predicate from
    /// its head's block in its body (e.g. the ancestor program).
    Linear,
    /// Some rule has two or more occurrences of predicates from its head's
    /// block (e.g. the nonlinear same-generation program).
    NonLinear,
}

/// Classify the recursion structure of a program.
pub fn recursion_kind(program: &Program) -> RecursionKind {
    let graph = DependencyGraph::build(program);
    let mut any_recursive = false;
    let mut nonlinear = false;
    for rule in &program.rules {
        let block = graph.block_of(&rule.head.pred);
        let head_recursive = graph.is_recursive(&rule.head.pred);
        if !head_recursive {
            continue;
        }
        let in_block = rule.body.iter().filter(|a| block.contains(&a.pred)).count();
        if in_block >= 1 {
            any_recursive = true;
        }
        if in_block >= 2 {
            nonlinear = true;
        }
    }
    if nonlinear {
        RecursionKind::NonLinear
    } else if any_recursive {
        RecursionKind::Linear
    } else {
        RecursionKind::NonRecursive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::rule::Rule;
    use crate::term::Term;

    fn pred(s: &str) -> PredName {
        PredName::plain(s)
    }

    fn linear_ancestor() -> Program {
        Program::from_rules(vec![
            Rule::new(
                Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::plain("par", vec![Term::var("X"), Term::var("Y")])],
            ),
            Rule::new(
                Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Atom::plain("par", vec![Term::var("X"), Term::var("Z")]),
                    Atom::plain("anc", vec![Term::var("Z"), Term::var("Y")]),
                ],
            ),
        ])
    }

    fn nonlinear_ancestor() -> Program {
        Program::from_rules(vec![
            Rule::new(
                Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::plain("par", vec![Term::var("X"), Term::var("Y")])],
            ),
            Rule::new(
                Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Atom::plain("anc", vec![Term::var("X"), Term::var("Z")]),
                    Atom::plain("anc", vec![Term::var("Z"), Term::var("Y")]),
                ],
            ),
        ])
    }

    fn nested_sg() -> Program {
        // p depends on sg and itself; sg depends on itself.
        Program::from_rules(vec![
            Rule::new(
                Atom::plain("p", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::plain("b1", vec![Term::var("X"), Term::var("Y")])],
            ),
            Rule::new(
                Atom::plain("p", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Atom::plain("sg", vec![Term::var("X"), Term::var("Z1")]),
                    Atom::plain("p", vec![Term::var("Z1"), Term::var("Z2")]),
                    Atom::plain("b2", vec![Term::var("Z2"), Term::var("Y")]),
                ],
            ),
            Rule::new(
                Atom::plain("sg", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::plain("flat", vec![Term::var("X"), Term::var("Y")])],
            ),
            Rule::new(
                Atom::plain("sg", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Atom::plain("up", vec![Term::var("X"), Term::var("Z1")]),
                    Atom::plain("sg", vec![Term::var("Z1"), Term::var("Z2")]),
                    Atom::plain("down", vec![Term::var("Z2"), Term::var("Y")]),
                ],
            ),
        ])
    }

    #[test]
    fn dependency_graph_edges() {
        let g = DependencyGraph::build(&linear_ancestor());
        assert!(g.successors(&pred("anc")).contains(&pred("par")));
        assert!(g.successors(&pred("anc")).contains(&pred("anc")));
        assert!(g.successors(&pred("par")).is_empty());
    }

    #[test]
    fn reachability() {
        let g = DependencyGraph::build(&nested_sg());
        let reach = g.reachable_from(&pred("p"));
        assert!(reach.contains(&pred("sg")));
        assert!(reach.contains(&pred("up")));
        assert!(reach.contains(&pred("b1")));
        let reach_sg = g.reachable_from(&pred("sg"));
        assert!(!reach_sg.contains(&pred("p")));
    }

    #[test]
    fn sccs_and_blocks() {
        let g = DependencyGraph::build(&nested_sg());
        assert!(g.is_recursive(&pred("p")));
        assert!(g.is_recursive(&pred("sg")));
        assert!(!g.is_recursive(&pred("up")));
        assert_eq!(g.block_of(&pred("p")).len(), 1);
        assert_eq!(g.block_of(&pred("sg")).len(), 1);
        // Reverse topological order: sg's block must come before p's block.
        let sccs = g.sccs();
        let pos_sg = sccs.iter().position(|c| c.contains(&pred("sg"))).unwrap();
        let pos_p = sccs.iter().position(|c| c.contains(&pred("p"))).unwrap();
        assert!(pos_sg < pos_p);
    }

    #[test]
    fn mutual_recursion_forms_one_block() {
        let p = Program::from_rules(vec![
            Rule::new(
                Atom::plain("even", vec![Term::var("X")]),
                vec![
                    Atom::plain("succ", vec![Term::var("Y"), Term::var("X")]),
                    Atom::plain("odd", vec![Term::var("Y")]),
                ],
            ),
            Rule::new(
                Atom::plain("odd", vec![Term::var("X")]),
                vec![
                    Atom::plain("succ", vec![Term::var("Y"), Term::var("X")]),
                    Atom::plain("even", vec![Term::var("Y")]),
                ],
            ),
        ]);
        let g = DependencyGraph::build(&p);
        let block = g.block_of(&pred("even"));
        assert_eq!(block.len(), 2);
        assert!(block.contains(&pred("odd")));
        assert!(g.is_recursive(&pred("even")));
    }

    #[test]
    fn recursion_kinds() {
        assert_eq!(recursion_kind(&linear_ancestor()), RecursionKind::Linear);
        assert_eq!(
            recursion_kind(&nonlinear_ancestor()),
            RecursionKind::NonLinear
        );
        let flat = Program::from_rules(vec![Rule::new(
            Atom::plain("q", vec![Term::var("X")]),
            vec![Atom::plain("b", vec![Term::var("X")])],
        )]);
        assert_eq!(recursion_kind(&flat), RecursionKind::NonRecursive);
    }
}
