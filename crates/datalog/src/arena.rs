//! The global value arena: hash-consed ground values as `Copy` u32 handles.
//!
//! Relations used to store rows as `Vec<Value>`: every insert, dedup probe
//! and index lookup hashed and cloned enum-tagged heap values.  The arena
//! interns every ground [`Value`] to a [`ValId`] once, so the storage and
//! join layers work entirely on `u32`s: equality is an integer compare,
//! hashing is a word multiply, and binding a join variable copies four
//! bytes instead of cloning an `Arc`.
//!
//! # Encoding
//!
//! A [`ValId`] packs a 2-bit tag and a 30-bit payload:
//!
//! * `00` — an **inline integer**: payload = value + 2^29, covering
//!   `-2^29 .. 2^29`.  Every integer the workloads produce short of the
//!   saturated counting indexes fits here and never touches the table.
//! * `01` — an **inline symbol**: payload = the [`Symbol`] interner id.
//!   Symbolic constants are ids already; the arena just re-tags them.
//! * `10` — a **table node**: payload indexes the global node table, which
//!   holds out-of-range integers, overflow symbols, and compound terms
//!   (functor + child `ValId`s + cached depth), hash-consed so structural
//!   equality coincides with id equality all the way down.
//! * `11` — reserved for the single [`ValId::NULL`] sentinel, which the
//!   engine's binding frames use for "unbound".
//!
//! The table is append-only and immutable once written, so reads are
//! lock-free: nodes live in power-of-two chunks behind `AtomicPtr`s (no
//! reallocation ever moves a node), and only interning misses take the
//! write lock.  This mirrors the [`Symbol`] interner one level up.
//!
//! Like the symbol interner, the arena is process-wide and grows
//! monotonically; the set of distinct ground values in a workload is
//! bounded by the data and the derived fixpoint.  Note that *lookups*
//! intern too: probing a relation with a never-stored constant (a query
//! for an unknown key) adds that constant to the arena — the same
//! accepted trade the symbol interner makes for parsed names.  Inline
//! ints/symbols cost nothing; only novel compound constants allocate a
//! node, a few dozen bytes per distinct term, which stays negligible
//! unless a serving workload streams unbounded *distinct* compound query
//! constants (revisit with an epoch/scoped arena if that workload ever
//! materializes).

use crate::symbol::Symbol;
use crate::term::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{OnceLock, RwLock};

const TAG_SHIFT: u32 = 30;
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_INT: u32 = 0;
const TAG_SYM: u32 = 1;
const TAG_REF: u32 = 2;

/// Bias added to inline integers: payload = value + 2^29.
const INT_BIAS: i64 = 1 << 29;

/// An interned ground value: a cheap, copyable handle such that two ids are
/// equal iff the values they intern are structurally equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValId(u32);

/// One entry of the global node table (the non-inline values).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Node {
    /// An integer outside the inline range.
    Int(i64),
    /// A symbol whose interner id exceeds the inline payload (practically
    /// unreachable; kept for correctness).
    Sym(Symbol),
    /// A compound value: functor, interned children, cached nesting depth.
    App(Symbol, Box<[ValId]>, u32),
}

/// Chunked, append-only node storage with lock-free reads.
///
/// Chunk `k` holds `1024 << k` nodes; a node's address never changes after
/// it is written, and every published [`ValId`] refers to a fully written
/// slot (ids escape the interner only after the release-store below).
struct Chunks {
    chunks: [AtomicPtr<AtomicPtr<Node>>; CHUNK_COUNT],
}

const FIRST_CHUNK_BITS: u32 = 10; // chunk 0 holds 1024 nodes
const CHUNK_COUNT: usize = (TAG_SHIFT - FIRST_CHUNK_BITS + 1) as usize;

/// `(chunk index, offset within chunk)` of node `idx`.
#[inline]
fn chunk_of(idx: u32) -> (usize, usize) {
    let adjusted = idx as u64 + (1 << FIRST_CHUNK_BITS);
    let k = 63 - adjusted.leading_zeros();
    (
        (k - FIRST_CHUNK_BITS) as usize,
        (adjusted - (1u64 << k)) as usize,
    )
}

#[inline]
fn chunk_len(chunk: usize) -> usize {
    1 << (FIRST_CHUNK_BITS as usize + chunk)
}

impl Chunks {
    fn new() -> Chunks {
        Chunks {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Read node `idx`.  Safe for any id the interner has published.
    #[inline]
    fn get(&self, idx: u32) -> &'static Node {
        let (chunk, offset) = chunk_of(idx);
        let base = self.chunks[chunk].load(Ordering::Acquire);
        debug_assert!(!base.is_null(), "ValId refers past the node table");
        // SAFETY: a published id's chunk was allocated and its slot written
        // (with release ordering) before the id escaped the write lock.
        let slot = unsafe { &*base.add(offset) };
        let node = slot.load(Ordering::Acquire);
        unsafe { &*node }
    }

    /// Store `node` at `idx` (called with the interner write lock held)
    /// and return the leaked, immortal reference to it.
    fn set(&self, idx: u32, node: Node) -> &'static Node {
        let (chunk, offset) = chunk_of(idx);
        let mut base = self.chunks[chunk].load(Ordering::Acquire);
        if base.is_null() {
            let fresh: Box<[AtomicPtr<Node>]> = (0..chunk_len(chunk))
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            base = Box::leak(fresh).as_mut_ptr();
            self.chunks[chunk].store(base, Ordering::Release);
        }
        let leaked: &'static Node = Box::leak(Box::new(node));
        // SAFETY: offset < chunk_len(chunk) by construction of chunk_of.
        unsafe { &*base.add(offset) }.store(leaked as *const Node as *mut Node, Ordering::Release);
        leaked
    }
}

struct ArenaState {
    /// Node -> table index, for hash-consing.  The keys borrow the leaked
    /// table nodes themselves (they never move or die), so each node is
    /// stored exactly once.
    map: HashMap<&'static Node, u32>,
    /// Number of nodes stored.
    len: u32,
}

struct Arena {
    state: RwLock<ArenaState>,
    nodes: Chunks,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena {
        state: RwLock::new(ArenaState {
            map: HashMap::new(),
            len: 0,
        }),
        nodes: Chunks::new(),
    })
}

fn intern_node(node: Node) -> ValId {
    let a = arena();
    {
        let state = a.state.read().unwrap();
        if let Some(&idx) = state.map.get(&node) {
            return ValId::from_parts(TAG_REF, idx);
        }
    }
    let mut state = a.state.write().unwrap();
    if let Some(&idx) = state.map.get(&node) {
        return ValId::from_parts(TAG_REF, idx);
    }
    let idx = state.len;
    assert!(idx <= PAYLOAD_MASK, "value arena exceeds 2^30 nodes");
    let leaked = a.nodes.set(idx, node);
    state.map.insert(leaked, idx);
    state.len = idx + 1;
    ValId::from_parts(TAG_REF, idx)
}

impl ValId {
    /// The "unbound" sentinel (never a valid interned value).
    pub const NULL: ValId = ValId(u32::MAX);

    #[inline]
    fn from_parts(tag: u32, payload: u32) -> ValId {
        debug_assert!(payload <= PAYLOAD_MASK);
        ValId((tag << TAG_SHIFT) | payload)
    }

    #[inline]
    fn tag(self) -> u32 {
        self.0 >> TAG_SHIFT
    }

    #[inline]
    fn payload(self) -> u32 {
        self.0 & PAYLOAD_MASK
    }

    /// The raw encoded word (stable within a process run; used for
    /// hashing).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// True iff this is the [`ValId::NULL`] sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == ValId::NULL
    }

    /// Intern an integer.
    #[inline]
    pub fn from_int(v: i64) -> ValId {
        if (-INT_BIAS..INT_BIAS).contains(&v) {
            ValId::from_parts(TAG_INT, (v + INT_BIAS) as u32)
        } else {
            intern_node(Node::Int(v))
        }
    }

    /// Intern a symbolic constant.
    #[inline]
    pub fn from_sym(s: Symbol) -> ValId {
        if s.id() <= PAYLOAD_MASK {
            ValId::from_parts(TAG_SYM, s.id())
        } else {
            intern_node(Node::Sym(s))
        }
    }

    /// Intern a compound value from already-interned children.
    pub fn from_app(functor: Symbol, args: &[ValId]) -> ValId {
        let depth = 1 + args.iter().map(|a| a.depth() as u32).max().unwrap_or(0);
        intern_node(Node::App(functor, args.into(), depth))
    }

    /// Intern a ground [`Value`] (recursively).
    pub fn intern(value: &Value) -> ValId {
        match value {
            Value::Int(i) => ValId::from_int(*i),
            Value::Sym(s) => ValId::from_sym(*s),
            Value::App(cell) => {
                let args: Vec<ValId> = cell.1.iter().map(ValId::intern).collect();
                ValId::from_app(cell.0, &args)
            }
        }
    }

    /// The integer this id interns, if it interns one.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self.tag() {
            TAG_INT => Some(self.payload() as i64 - INT_BIAS),
            TAG_REF => match arena().nodes.get(self.payload()) {
                Node::Int(i) => Some(*i),
                _ => None,
            },
            _ => None,
        }
    }

    /// The symbol this id interns, if it interns one.
    #[inline]
    pub fn as_sym(self) -> Option<Symbol> {
        match self.tag() {
            TAG_SYM => Some(Symbol::from_id(self.payload())),
            TAG_REF => match arena().nodes.get(self.payload()) {
                Node::Sym(s) => Some(*s),
                _ => None,
            },
            _ => None,
        }
    }

    /// The functor and children of the compound value this id interns, if
    /// it interns one.  The returned references are `'static`: nodes are
    /// immutable and never deallocated.
    #[inline]
    pub fn as_app(self) -> Option<(Symbol, &'static [ValId])> {
        if self.tag() != TAG_REF {
            return None;
        }
        match arena().nodes.get(self.payload()) {
            Node::App(f, args, _) => Some((*f, args)),
            _ => None,
        }
    }

    /// The nesting depth of the interned value (constants are 0), cached at
    /// intern time so the engine's term-depth limit check is O(1).
    #[inline]
    pub fn depth(self) -> usize {
        if self.tag() != TAG_REF {
            return 0;
        }
        match arena().nodes.get(self.payload()) {
            Node::App(_, _, depth) => *depth as usize,
            _ => 0,
        }
    }

    /// Decode back into an owned [`Value`].
    ///
    /// # Panics
    ///
    /// Panics on [`ValId::NULL`] — the unbound sentinel interns nothing
    /// (callers must check [`ValId::is_null`] first; a panic here is a
    /// deterministic failure, where indexing the node table with the
    /// sentinel payload would not be).
    pub fn value(self) -> Value {
        match self.tag() {
            TAG_INT => Value::Int(self.payload() as i64 - INT_BIAS),
            TAG_SYM => Value::Sym(Symbol::from_id(self.payload())),
            TAG_REF => match arena().nodes.get(self.payload()) {
                Node::Int(i) => Value::Int(*i),
                Node::Sym(s) => Value::Sym(*s),
                Node::App(f, args, _) => Value::app(*f, args.iter().map(|a| a.value()).collect()),
            },
            _ => panic!("decoding the NULL (unbound) ValId sentinel"),
        }
    }
}

/// One node of an [`ArenaSnapshot`]: a process-independent description of
/// a node-table entry, referring to other values only through *snapshot*
/// coordinates (symbol ids and raw [`ValId`] words as they were in the
/// capturing process).  [`ArenaSnapshot::install`] translates these back
/// into live handles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapNode {
    /// An integer outside the inline range.
    Int(i64),
    /// An overflow symbol, by its interner id *in the capturing process*.
    Sym(u32),
    /// A compound value.
    App {
        /// The functor's interner id in the capturing process.
        functor: u32,
        /// The children's raw [`ValId`] words in the capturing process.
        /// Table references always point at lower node indexes (children
        /// are interned before their parent), so installing in order
        /// resolves them.
        children: Vec<u32>,
    },
}

/// A watermark snapshot of the process-wide interners: every symbol
/// string (in id order) and every node-table entry (in index order) that
/// existed when [`ArenaSnapshot::capture`] ran.
///
/// Raw [`ValId`] words and [`Symbol`] ids are only meaningful within one
/// process run — inline symbols carry interner ids, table references
/// index the process-global arena, and both depend on interning order.
/// A snapshot is the *portable* form: strings and structural node
/// descriptions, good to serialize.  [`ArenaSnapshot::install`] re-interns
/// everything (in order, so children precede parents) and returns a
/// [`ValIdRemap`] translating captured raw words into live ids.  Within
/// the capturing process itself, hash-consing makes installation
/// idempotent: every id remaps to itself.
///
/// The interners are append-only, so a snapshot is a consistent prefix
/// even if other threads keep interning during capture: the node
/// watermark is read first, and every node below it is fully published.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaSnapshot {
    symbols: Vec<String>,
    nodes: Vec<SnapNode>,
}

impl ArenaSnapshot {
    /// Capture the current interner contents: all symbol strings and all
    /// node-table entries up to this instant's watermarks.
    pub fn capture() -> ArenaSnapshot {
        // Node watermark first: every node below `len` is fully written,
        // and its symbols/children were interned (= have smaller ids /
        // indexes) before it, so reading symbols afterwards can only see
        // *more* than the nodes need.
        let len = arena().state.read().unwrap().len;
        let nodes = (0..len)
            .map(|idx| match arena().nodes.get(idx) {
                Node::Int(i) => SnapNode::Int(*i),
                Node::Sym(s) => SnapNode::Sym(s.id()),
                Node::App(f, args, _) => SnapNode::App {
                    functor: f.id(),
                    children: args.iter().map(|a| a.raw()).collect(),
                },
            })
            .collect();
        let symbols = crate::symbol::all_strings()
            .into_iter()
            .map(str::to_owned)
            .collect();
        ArenaSnapshot { symbols, nodes }
    }

    /// Reassemble a snapshot from externally stored parts (the inverse of
    /// [`ArenaSnapshot::symbols`] / [`ArenaSnapshot::nodes`] — what a
    /// checkpoint loader does after decoding its file format).
    pub fn from_parts(symbols: Vec<String>, nodes: Vec<SnapNode>) -> ArenaSnapshot {
        ArenaSnapshot { symbols, nodes }
    }

    /// The captured symbol strings, in capturing-process id order.
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// The captured node entries, in capturing-process index order.
    pub fn nodes(&self) -> &[SnapNode] {
        &self.nodes
    }

    /// Re-intern every captured symbol and node into the *current*
    /// process and return the translation table for captured raw words.
    ///
    /// Returns `None` if the snapshot is internally inconsistent (a node
    /// or symbol reference points outside the snapshot) — the signal a
    /// checkpoint loader treats as corruption.
    pub fn install(&self) -> Option<ValIdRemap> {
        let syms: Vec<Symbol> = self.symbols.iter().map(|s| Symbol::new(s)).collect();
        let mut nodes: Vec<ValId> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let id = match node {
                SnapNode::Int(v) => ValId::from_int(*v),
                SnapNode::Sym(old) => ValId::from_sym(*syms.get(*old as usize)?),
                SnapNode::App { functor, children } => {
                    let f = *syms.get(*functor as usize)?;
                    let kids = children
                        .iter()
                        .map(|&raw| remap_raw(raw, &syms, &nodes))
                        .collect::<Option<Vec<ValId>>>()?;
                    ValId::from_app(f, &kids)
                }
            };
            nodes.push(id);
        }
        Some(ValIdRemap { syms, nodes })
    }
}

/// Translate a captured raw [`ValId`] word into a live id, given the
/// already-installed symbol and node tables.  Inline integers are
/// value-encoded and pass through unchanged; inline symbols and table
/// references go through the respective remap tables.
fn remap_raw(raw: u32, syms: &[Symbol], nodes: &[ValId]) -> Option<ValId> {
    let old = ValId(raw);
    if old.is_null() {
        return Some(ValId::NULL);
    }
    match old.tag() {
        TAG_INT => Some(old),
        TAG_SYM => syms
            .get(old.payload() as usize)
            .map(|&s| ValId::from_sym(s)),
        TAG_REF => nodes.get(old.payload() as usize).copied(),
        _ => None,
    }
}

/// The translation table [`ArenaSnapshot::install`] produces: captured
/// raw [`ValId`] words → live ids in the current process.
#[derive(Clone, Debug)]
pub struct ValIdRemap {
    syms: Vec<Symbol>,
    nodes: Vec<ValId>,
}

impl ValIdRemap {
    /// The live id for a [`ValId`] captured by the snapshot, or `None` if
    /// the word refers outside the snapshot (corrupt input).  In the
    /// capturing process this is the identity on every id the snapshot
    /// covers (hash-consing re-derives the same handles).
    pub fn remap(&self, old: ValId) -> Option<ValId> {
        remap_raw(old.raw(), &self.syms, &self.nodes)
    }

    /// Remap a whole packed row (see [`ValIdRemap::remap`]).
    pub fn remap_row(&self, row: &[ValId]) -> Option<Vec<ValId>> {
        row.iter().map(|&id| self.remap(id)).collect()
    }

    /// [`ValIdRemap::remap`] from the raw encoded word — the form ids
    /// take on disk (checkpoints store [`ValId::raw`] words verbatim).
    pub fn remap_raw(&self, raw: u32) -> Option<ValId> {
        remap_raw(raw, &self.syms, &self.nodes)
    }
}

/// Intern a whole row of values.
pub fn intern_row(row: &[Value]) -> Vec<ValId> {
    row.iter().map(ValId::intern).collect()
}

/// Decode a whole packed row.
pub fn decode_row(ids: &[ValId]) -> Vec<Value> {
    ids.iter().map(|id| id.value()).collect()
}

impl fmt::Display for ValId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "<null>")
        } else {
            write!(f, "{}", self.value())
        }
    }
}

impl fmt::Debug for ValId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_ints_round_trip() {
        for v in [0i64, 1, -1, 42, INT_BIAS - 1, -INT_BIAS] {
            let id = ValId::from_int(v);
            assert_eq!(id.as_int(), Some(v), "int {v}");
            assert_eq!(id.value(), Value::Int(v));
            assert_eq!(id.depth(), 0);
        }
    }

    #[test]
    fn out_of_range_ints_go_through_the_table() {
        for v in [INT_BIAS, -INT_BIAS - 1, i64::MAX, i64::MIN] {
            let id = ValId::from_int(v);
            assert_eq!(id.as_int(), Some(v), "int {v}");
            assert_eq!(id.value(), Value::Int(v));
            assert_eq!(ValId::from_int(v), id, "hash-consing must dedupe");
        }
        assert_ne!(ValId::from_int(i64::MAX), ValId::from_int(i64::MIN));
    }

    #[test]
    fn symbols_are_inline() {
        let id = ValId::from_sym(Symbol::new("john"));
        assert_eq!(id.as_sym(), Some(Symbol::new("john")));
        assert_eq!(id.value(), Value::sym("john"));
        assert_eq!(id, ValId::intern(&Value::sym("john")));
        assert!(id.as_int().is_none());
        assert!(id.as_app().is_none());
    }

    #[test]
    fn compound_values_hash_cons() {
        let list = Value::list(vec![Value::sym("a"), Value::int(2), Value::sym("c")]);
        let a = ValId::intern(&list);
        let b = ValId::intern(&list);
        assert_eq!(a, b);
        assert_eq!(a.value(), list);
        assert_eq!(a.depth(), list.depth());
        let (f, args) = a.as_app().unwrap();
        assert_eq!(f, Symbol::new(crate::term::LIST_CONS));
        assert_eq!(args.len(), 2);
        assert_eq!(args[0], ValId::intern(&Value::sym("a")));
        // A structurally different list gets a different id.
        let other = Value::list(vec![Value::sym("a"), Value::int(2)]);
        assert_ne!(ValId::intern(&other), a);
    }

    #[test]
    fn null_is_distinct_from_everything() {
        assert!(ValId::NULL.is_null());
        assert!(!ValId::from_int(0).is_null());
        assert_ne!(ValId::NULL, ValId::from_sym(Symbol::new("nil")));
        // The sentinel decodes to nothing through every accessor.
        assert_eq!(ValId::NULL.as_int(), None);
        assert_eq!(ValId::NULL.as_sym(), None);
        assert!(ValId::NULL.as_app().is_none());
        assert_eq!(ValId::NULL.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn decoding_the_null_sentinel_panics() {
        let _ = ValId::NULL.value();
    }

    #[test]
    fn row_round_trip() {
        let row = vec![
            Value::sym("x"),
            Value::Int(7),
            Value::list(vec![Value::sym("y")]),
        ];
        assert_eq!(decode_row(&intern_row(&row)), row);
    }

    #[test]
    fn snapshot_round_trips_and_ids_stay_stable_in_process() {
        // Cover every encoding class: inline int, table int, inline
        // symbol, and nested compounds (table refs whose children mix
        // all of the above).
        let values = vec![
            Value::Int(17),
            Value::Int(i64::MAX - 3),
            Value::sym("snapshot_sym"),
            Value::list(vec![
                Value::sym("snapshot_nested"),
                Value::Int(i64::MIN + 9),
                Value::list(vec![Value::Int(5)]),
            ]),
        ];
        let ids: Vec<ValId> = values.iter().map(ValId::intern).collect();
        let snap = ArenaSnapshot::capture();
        // Serialize-shaped round trip through the public parts.
        let snap2 = ArenaSnapshot::from_parts(snap.symbols().to_vec(), snap.nodes().to_vec());
        assert_eq!(snap, snap2);
        let remap = snap2.install().expect("snapshot is consistent");
        for (id, value) in ids.iter().zip(&values) {
            let new = remap.remap(*id).expect("id is covered");
            assert_eq!(new, *id, "in-process remap must be the identity");
            assert_eq!(new.value(), *value);
        }
        assert_eq!(remap.remap(ValId::NULL), Some(ValId::NULL));
    }

    #[test]
    fn snapshot_install_rejects_dangling_references() {
        // A node referring to a symbol id past the snapshot is corrupt.
        let snap = ArenaSnapshot::from_parts(vec!["only".into()], vec![SnapNode::Sym(7)]);
        assert!(snap.install().is_none());
        // Likewise a compound whose child points past the node table.
        let bad_child = ValId::from_parts(TAG_REF, 99).raw();
        let snap = ArenaSnapshot::from_parts(
            vec!["f".into()],
            vec![SnapNode::App {
                functor: 0,
                children: vec![bad_child],
            }],
        );
        assert!(snap.install().is_none());
    }

    #[test]
    fn chunk_addressing_is_dense_and_in_bounds() {
        let mut prev = (0usize, usize::MAX);
        for idx in 0..10_000u32 {
            let (chunk, offset) = chunk_of(idx);
            assert!(offset < chunk_len(chunk));
            // Consecutive ids advance by one slot or move to a new chunk.
            if chunk == prev.0 {
                assert_eq!(offset, prev.1.wrapping_add(1));
            } else {
                assert_eq!(chunk, prev.0 + 1);
                assert_eq!(offset, 0);
            }
            prev = (chunk, offset);
        }
    }
}
