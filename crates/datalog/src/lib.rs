//! # magic-datalog
//!
//! The Horn-clause / Datalog language substrate for the *Power of Magic*
//! reproduction: terms with function symbols, atoms, rules, programs,
//! adornments, structured predicate names, a parser, and the structural
//! analyses (connectivity, dependency graph, recursion classification) that
//! the sideways-information-passing machinery builds on.
//!
//! The crate is deliberately independent of any evaluation strategy: it
//! describes *programs*, not how to run them.  See `magic-engine` for
//! bottom-up evaluation and `magic-core` for the paper's rewrites.
//!
//! ## Quick example
//!
//! ```
//! use magic_datalog::parser::parse_source;
//!
//! let parsed = parse_source(
//!     "anc(X, Y) :- par(X, Y).
//!      anc(X, Y) :- par(X, Z), anc(Z, Y).
//!      par(john, mary).
//!      ?- anc(john, Y).",
//! )
//! .unwrap();
//! assert_eq!(parsed.program.len(), 2);
//! assert_eq!(parsed.facts.len(), 1);
//! assert_eq!(parsed.queries[0].adornment().to_string(), "bf");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adornment;
pub mod analysis;
pub mod arena;
pub mod atom;
pub mod error;
pub mod parser;
pub mod pred;
pub mod program;
pub mod rule;
pub mod schedule;
pub mod slots;
pub mod symbol;
pub mod term;

pub use adornment::{Adornment, Binding};
pub use analysis::{recursion_kind, DependencyGraph, RecursionKind};
pub use arena::{ArenaSnapshot, SnapNode, ValId, ValIdRemap};
pub use atom::{Atom, Fact};
pub use error::DatalogError;
pub use parser::{parse_program, parse_query, parse_rule, parse_source, parse_term, ParsedSource};
pub use pred::PredName;
pub use program::Program;
pub use rule::{AggFunc, Aggregate, Query, Rule};
pub use schedule::{Schedule, StratificationViolation, Stratum};
pub use slots::{Frame, SlotTerm, Trail};
pub use symbol::Symbol;
pub use term::{Bindings, LinearExpr, SymbolicLength, Term, Value, Variable};
