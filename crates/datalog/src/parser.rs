//! A parser for Horn-clause programs in conventional Datalog/Prolog-like
//! syntax.
//!
//! Supported forms:
//!
//! ```text
//! % ancestors
//! anc(X, Y) :- par(X, Y).
//! anc(X, Y) :- par(X, Z), anc(Z, Y).
//! par(john, mary).              % an embedded fact
//! ?- anc(john, Y).              % the query
//! ```
//!
//! Variables start with an uppercase letter or `_`; constants, predicate and
//! function symbols start with a lowercase letter (or are quoted with single
//! quotes, or are integers).  Lists use Prolog syntax: `[]`, `[a, b, c]`,
//! `[H | T]`; they desugar to the reserved `cons`/`nil` functors.
//!
//! Stratified extensions: a body atom may be negated with the `not` keyword
//! (`stuck(X) :- pos(X), not can_move(X).` — `not` is only a keyword when
//! followed by a predicate name, so a predicate called `not` with a
//! parenthesized argument list still parses), and one head position may be
//! an aggregate (`total(P, sum<C>) :- part(P, S), cost(S, C).` with
//! `count`/`sum`/`min`/`max`).

use crate::atom::{Atom, Fact};
use crate::error::DatalogError;
use crate::program::Program;
use crate::rule::{AggFunc, Aggregate, Query, Rule};
use crate::term::{Term, Variable};

/// The result of parsing a source text: the rules, the embedded ground
/// facts, and any queries (`?- ...`) in order of appearance.
#[derive(Clone, Debug, Default)]
pub struct ParsedSource {
    /// The program rules (facts excluded).
    pub program: Program,
    /// Ground facts that appeared in the source.
    pub facts: Vec<Fact>,
    /// The queries, in order of appearance.
    pub queries: Vec<Query>,
}

impl ParsedSource {
    /// The first query, if any.
    pub fn query(&self) -> Option<&Query> {
        self.queries.first()
    }
}

#[derive(Clone, PartialEq, Debug)]
enum Token {
    LowerIdent(String),
    UpperIdent(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Pipe,
    Lt,          // < (aggregate heads only)
    Gt,          // > (aggregate heads only)
    Implies,     // :-
    QueryPrefix, // ?-
}

#[derive(Clone, Debug)]
struct Spanned {
    token: Token,
    line: usize,
    column: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, DatalogError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.chars.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('%') => {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    }
                    Some('/') => {
                        // Possible `//` comment; otherwise an error later.
                        let mut clone = self.chars.clone();
                        clone.next();
                        if clone.peek() == Some(&'/') {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            let (line, column) = (self.line, self.column);
            let Some(&c) = self.chars.peek() else { break };
            let token = match c {
                '(' => {
                    self.bump();
                    Token::LParen
                }
                ')' => {
                    self.bump();
                    Token::RParen
                }
                '[' => {
                    self.bump();
                    Token::LBracket
                }
                ']' => {
                    self.bump();
                    Token::RBracket
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '.' => {
                    self.bump();
                    Token::Dot
                }
                '|' => {
                    self.bump();
                    Token::Pipe
                }
                '<' => {
                    self.bump();
                    Token::Lt
                }
                '>' => {
                    self.bump();
                    Token::Gt
                }
                ':' => {
                    self.bump();
                    if self.chars.peek() == Some(&'-') {
                        self.bump();
                        Token::Implies
                    } else {
                        return Err(self.error("expected '-' after ':'"));
                    }
                }
                '?' => {
                    self.bump();
                    if self.chars.peek() == Some(&'-') {
                        self.bump();
                        Token::QueryPrefix
                    } else {
                        return Err(self.error("expected '-' after '?'"));
                    }
                }
                '\'' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('\'') => break,
                            Some(c) => s.push(c),
                            None => return Err(self.error("unterminated quoted constant")),
                        }
                    }
                    Token::LowerIdent(s)
                }
                '-' => {
                    self.bump();
                    let mut digits = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_digit() {
                            digits.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if digits.is_empty() {
                        return Err(self.error("expected digits after '-'"));
                    }
                    let v: i64 = digits
                        .parse()
                        .map_err(|_| self.error("integer literal out of range"))?;
                    Token::Int(-v)
                }
                d if d.is_ascii_digit() => {
                    let mut digits = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_digit() {
                            digits.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let v: i64 = digits
                        .parse()
                        .map_err(|_| self.error("integer literal out of range"))?;
                    Token::Int(v)
                }
                a if a.is_alphabetic() || a == '_' => {
                    let mut ident = String::new();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_alphanumeric() || d == '_' {
                            ident.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if a.is_uppercase() || a == '_' {
                        Token::UpperIdent(ident)
                    } else {
                        Token::LowerIdent(ident)
                    }
                }
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            };
            out.push(Spanned {
                token,
                line,
                column,
            });
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn location(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| (s.line, s.column))
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        let (line, column) = self.location();
        DatalogError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), DatalogError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.bump();
                Ok(())
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn parse_term(&mut self) -> Result<Term, DatalogError> {
        match self.bump() {
            Some(Token::UpperIdent(name)) => Ok(Term::var(&name)),
            Some(Token::Int(v)) => Ok(Term::Int(v)),
            Some(Token::LowerIdent(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    let args = self.parse_term_list(Token::RParen)?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(Term::app(&name, args))
                } else {
                    Ok(Term::sym(&name))
                }
            }
            Some(Token::LBracket) => self.parse_list(),
            _ => Err(self.error("expected a term")),
        }
    }

    fn parse_list(&mut self) -> Result<Term, DatalogError> {
        if self.peek() == Some(&Token::RBracket) {
            self.bump();
            return Ok(Term::nil());
        }
        let mut items = vec![self.parse_term()?];
        loop {
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                    items.push(self.parse_term()?);
                }
                Some(Token::Pipe) => {
                    self.bump();
                    let tail = self.parse_term()?;
                    self.expect(&Token::RBracket, "']'")?;
                    return Ok(Term::list(items, tail));
                }
                Some(Token::RBracket) => {
                    self.bump();
                    return Ok(Term::list(items, Term::nil()));
                }
                _ => return Err(self.error("expected ',', '|' or ']' in list")),
            }
        }
    }

    fn parse_term_list(&mut self, terminator: Token) -> Result<Vec<Term>, DatalogError> {
        let mut terms = Vec::new();
        if self.peek() == Some(&terminator) {
            return Ok(terms);
        }
        terms.push(self.parse_term()?);
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            terms.push(self.parse_term()?);
        }
        Ok(terms)
    }

    fn parse_atom(&mut self) -> Result<Atom, DatalogError> {
        match self.bump() {
            Some(Token::LowerIdent(name)) => {
                let mut terms = Vec::new();
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    terms = self.parse_term_list(Token::RParen)?;
                    self.expect(&Token::RParen, "')'")?;
                }
                Ok(Atom::plain(&name, terms))
            }
            _ => Err(self.error("expected a predicate name")),
        }
    }

    /// Parse a rule head: a plain atom whose term list may contain at most
    /// one aggregate term `func<Var>` with `func` in
    /// `count`/`sum`/`min`/`max`.  The aggregate position holds the plain
    /// variable in the returned atom; the aggregate itself is returned
    /// separately.
    fn parse_head(&mut self) -> Result<(Atom, Option<Aggregate>), DatalogError> {
        let name = match self.bump() {
            Some(Token::LowerIdent(name)) => name,
            _ => return Err(self.error("expected a predicate name")),
        };
        let mut terms = Vec::new();
        let mut aggregate = None;
        if self.peek() == Some(&Token::LParen) {
            self.bump();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    // An aggregate term is a lowercase aggregate-function
                    // name immediately followed by `<`; anything else is an
                    // ordinary term (so a constant named `sum` still parses).
                    let agg_func = match self.peek() {
                        Some(Token::LowerIdent(f)) => AggFunc::from_name(f).filter(|_| {
                            self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::Lt)
                        }),
                        _ => None,
                    };
                    if let Some(func) = agg_func {
                        self.bump(); // function name
                        self.bump(); // '<'
                        let var = match self.bump() {
                            Some(Token::UpperIdent(v)) => v,
                            _ => {
                                return Err(self.error(format!(
                                    "aggregate argument of {func}<..> must be a variable"
                                )))
                            }
                        };
                        self.expect(&Token::Gt, &format!("'>' closing {func}<{var}"))?;
                        if aggregate.is_some() {
                            return Err(
                                self.error("at most one aggregate is allowed per rule head")
                            );
                        }
                        aggregate = Some(Aggregate {
                            func,
                            var: Variable::new(&var),
                            position: terms.len(),
                        });
                        terms.push(Term::var(&var));
                    } else {
                        terms.push(self.parse_term()?);
                    }
                    if self.peek() == Some(&Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen, "')'")?;
        }
        Ok((Atom::plain(&name, terms), aggregate))
    }

    fn parse_clause(&mut self) -> Result<Clause, DatalogError> {
        if self.peek() == Some(&Token::QueryPrefix) {
            self.bump();
            let atom = self.parse_atom()?;
            self.expect(&Token::Dot, "'.' after query")?;
            return Ok(Clause::Query(Query::new(atom)));
        }
        let (head, aggregate) = self.parse_head()?;
        let mut body = Vec::new();
        let mut negated = Vec::new();
        if self.peek() == Some(&Token::Implies) {
            self.bump();
            // An empty body after ':-' (as in the paper's `reverse([],[]) :-`)
            // is allowed.
            if self.peek() != Some(&Token::Dot) {
                loop {
                    // `not` is a keyword only when followed by a predicate
                    // name, so a predicate literally called `not` (always
                    // followed by `(`, `,` or `.` here) still parses.
                    let is_negation = matches!(self.peek(), Some(Token::LowerIdent(w)) if w == "not")
                        && matches!(
                            self.tokens.get(self.pos + 1).map(|s| &s.token),
                            Some(Token::LowerIdent(_))
                        );
                    if is_negation {
                        self.bump();
                        negated.push(self.parse_atom()?);
                    } else {
                        body.push(self.parse_atom()?);
                    }
                    if self.peek() == Some(&Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        self.expect(&Token::Dot, "'.' at end of clause")?;
        let mut rule = Rule::new(head, body).with_negated(negated);
        if let Some(agg) = aggregate {
            rule = rule.with_aggregate(agg);
        }
        Ok(Clause::Rule(rule))
    }
}

enum Clause {
    Rule(Rule),
    Query(Query),
}

/// Parse a complete source text into rules, facts and queries.
pub fn parse_source(source: &str) -> Result<ParsedSource, DatalogError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser::new(tokens);
    let mut result = ParsedSource::default();
    let mut rules = Vec::new();
    while !parser.at_end() {
        match parser.parse_clause()? {
            Clause::Rule(rule) => {
                if rule.is_fact() && rule.head.is_ground() {
                    result
                        .facts
                        .push(rule.head.to_fact().expect("ground atom is a fact"));
                } else {
                    rules.push(rule);
                }
            }
            Clause::Query(q) => result.queries.push(q),
        }
    }
    result.program = Program::from_rules(rules);
    Ok(result)
}

/// Parse a program: every clause (including ground facts, which become rules
/// with empty bodies — e.g. the `reverse([], [])` exit rule of the paper's
/// Appendix) is kept as a rule; queries (`?- ...`) are ignored.
///
/// Use [`parse_source`] instead when the source mixes a program with a data
/// set and a query and you want them separated.
pub fn parse_program(source: &str) -> Result<Program, DatalogError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser::new(tokens);
    let mut rules = Vec::new();
    while !parser.at_end() {
        match parser.parse_clause()? {
            Clause::Rule(rule) => rules.push(rule),
            Clause::Query(_) => {}
        }
    }
    Ok(Program::from_rules(rules))
}

/// Parse a single rule.
pub fn parse_rule(source: &str) -> Result<Rule, DatalogError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser::new(tokens);
    match parser.parse_clause()? {
        Clause::Rule(r) => Ok(r),
        Clause::Query(_) => Err(DatalogError::Parse {
            line: 1,
            column: 1,
            message: "expected a rule, found a query".into(),
        }),
    }
}

/// Parse a single query of the form `?- p(...).` (the `?-` prefix and the
/// trailing dot are optional).
pub fn parse_query(source: &str) -> Result<Query, DatalogError> {
    let trimmed = source.trim();
    let normalized = if trimmed.starts_with("?-") {
        trimmed.to_string()
    } else {
        format!("?- {trimmed}")
    };
    let normalized = if normalized.trim_end().ends_with('.') {
        normalized
    } else {
        format!("{normalized}.")
    };
    let tokens = Lexer::new(&normalized).tokenize()?;
    let mut parser = Parser::new(tokens);
    match parser.parse_clause()? {
        Clause::Query(q) => Ok(q),
        Clause::Rule(_) => Err(DatalogError::Parse {
            line: 1,
            column: 1,
            message: "expected a query".into(),
        }),
    }
}

/// Parse a single term (useful in tests and examples).
pub fn parse_term(source: &str) -> Result<Term, DatalogError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser::new(tokens);
    let t = parser.parse_term()?;
    if !parser.at_end() {
        return Err(parser.error("trailing input after term"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredName;
    use crate::term::Value;

    #[test]
    fn parse_ancestor_program() {
        let src = "
            % the ancestor program
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            par(john, mary).
            ?- anc(john, Y).
        ";
        let parsed = parse_source(src).unwrap();
        assert_eq!(parsed.program.len(), 2);
        assert_eq!(parsed.facts.len(), 1);
        assert_eq!(parsed.queries.len(), 1);
        assert_eq!(
            parsed.program.rules[1].to_string(),
            "anc(X, Y) :- par(X, Z), anc(Z, Y)."
        );
        assert_eq!(parsed.queries[0].to_string(), "?- anc(john, Y).");
        assert_eq!(
            parsed.facts[0],
            Fact::plain("par", vec![Value::sym("john"), Value::sym("mary")])
        );
    }

    #[test]
    fn parse_lists_and_function_symbols() {
        let src = "
            append(V, [], [V]) :- list(V).
            append(V, [W | X], [W | Y]) :- append(V, X, Y).
            reverse([], []) :- true_pred.
            reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.rules[1].to_string(),
            "append(V, [W | X], [W | Y]) :- append(V, X, Y)."
        );
        assert!(!p.is_datalog());
    }

    #[test]
    fn parse_empty_body_marker() {
        // The paper writes exit rules for reverse as `reverse([],[]) :-`.
        let r = parse_rule("reverse([], []) :- .").unwrap();
        assert!(r.is_fact());
        assert_eq!(r.head.to_string(), "reverse([], [])");
    }

    #[test]
    fn parse_terms() {
        assert_eq!(parse_term("[a, b, c]").unwrap().to_string(), "[a, b, c]");
        assert_eq!(parse_term("[H | T]").unwrap().to_string(), "[H | T]");
        assert_eq!(
            parse_term("f(X, g(a, 3))").unwrap().to_string(),
            "f(X, g(a, 3))"
        );
        assert_eq!(parse_term("-42").unwrap(), Term::Int(-42));
        assert_eq!(parse_term("'John Smith'").unwrap(), Term::sym("John Smith"));
    }

    #[test]
    fn parse_query_variants() {
        let q1 = parse_query("?- sg(john, Y).").unwrap();
        let q2 = parse_query("sg(john, Y)").unwrap();
        assert_eq!(q1, q2);
        assert_eq!(q1.pred(), &PredName::plain("sg"));
        assert_eq!(q1.adornment().to_string(), "bf");
    }

    #[test]
    fn parse_zero_arity_atoms() {
        let p = parse_program("alarm :- smoke, heat.").unwrap();
        assert_eq!(p.rules[0].body.len(), 2);
        assert_eq!(p.rules[0].head.arity(), 0);
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_program("anc(X, Y) :- par(X Y).").unwrap_err();
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_program("anc(X, Y) : par(X, Y).").is_err());
        assert!(parse_program("anc(X, Y").is_err());
        assert!(parse_term("'unterminated").is_err());
    }

    #[test]
    fn comments_both_styles() {
        let src = "
            // line comment
            p(X) :- q(X). % trailing comment
            % another
            q(a).
        ";
        let parsed = parse_source(src).unwrap();
        assert_eq!(parsed.program.len(), 1);
        assert_eq!(parsed.facts.len(), 1);
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).";
        let r = parse_rule(src).unwrap();
        let reparsed = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, reparsed);
    }

    #[test]
    fn parse_negated_atoms() {
        let r = parse_rule("stuck(X) :- pos(X), not can_move(X).").unwrap();
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.negated.len(), 1);
        assert_eq!(r.negated[0].to_string(), "can_move(X)");
        assert!(r.is_guarded());
        assert_eq!(r.to_string(), "stuck(X) :- pos(X), not can_move(X).");
        // `not` anywhere among the conjuncts; display normalizes to the end.
        let r = parse_rule("lose(X) :- not win(X), pos(X).").unwrap();
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.negated.len(), 1);
        assert_eq!(r.to_string(), "lose(X) :- pos(X), not win(X).");
        // Zero-arity negation.
        let r = parse_rule("quiet :- idle, not alarm.").unwrap();
        assert_eq!(r.negated[0].pred.to_string(), "alarm");
        assert_eq!(r.negated[0].arity(), 0);
        // A predicate literally named `not` (followed by '(') stays positive.
        let r = parse_rule("p(X) :- not(X).").unwrap();
        assert!(r.negated.is_empty());
        assert_eq!(r.body[0].pred.to_string(), "not");
        // ... including when negated itself.
        let r = parse_rule("p(X) :- q(X), not not(X).").unwrap();
        assert_eq!(r.negated[0].pred.to_string(), "not");
        assert_eq!(r.to_string(), "p(X) :- q(X), not not(X).");
    }

    #[test]
    fn parse_aggregate_heads() {
        let r = parse_rule("total(P, sum<C>) :- part(P, S), cost(S, C).").unwrap();
        let agg = r.aggregate.as_ref().unwrap();
        assert_eq!(agg.func, AggFunc::Sum);
        assert_eq!(agg.var.name(), "C");
        assert_eq!(agg.position, 1);
        assert_eq!(r.head.to_string(), "total(P, C)");
        assert_eq!(r.to_string(), "total(P, sum<C>) :- part(P, S), cost(S, C).");
        // Round-trip through display for all four functions, with odd spacing.
        for src in [
            "n(count<X>) :- p(X).",
            "best(G,   min< D >) :- dist(G, D).",
            "worst(G, max<D>) :- dist(G, D).",
            "s(A, sum<B>, c) :- t(A, B).",
        ] {
            let r = parse_rule(src).unwrap();
            assert_eq!(r, parse_rule(&r.to_string()).unwrap());
        }
        // A constant named after an aggregate function is still a constant.
        let r = parse_rule("p(sum, X) :- q(X).").unwrap();
        assert!(r.aggregate.is_none());
        assert_eq!(r.head.terms[0], Term::sym("sum"));
    }

    #[test]
    fn malformed_aggregates_are_rejected() {
        // Two aggregates in one head.
        let err = parse_rule("p(count<X>, sum<Y>) :- q(X, Y).").unwrap_err();
        assert!(
            err.to_string().contains("at most one aggregate"),
            "got {err}"
        );
        // Non-variable aggregate argument.
        let err = parse_rule("p(sum<3>) :- q(X).").unwrap_err();
        assert!(err.to_string().contains("must be a variable"), "got {err}");
        // Unclosed aggregate.
        assert!(parse_rule("p(sum<X) :- q(X).").is_err());
        // Aggregates are not terms: not in bodies, not in queries.
        assert!(parse_rule("p(X) :- q(sum<X>).").is_err());
        assert!(parse_query("?- p(count<X>).").is_err());
    }
}
