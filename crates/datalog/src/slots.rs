//! Slot-compiled terms: the zero-allocation evaluation form of [`Term`].
//!
//! The map-based [`Bindings`](crate::Bindings) API is convenient for the
//! rewrite layers, which manipulate small environments a handful of times
//! per rule.  It is wrong for the join inner loop, where every candidate
//! tuple hashes `Variable` keys, clones `Vec`s of variables and
//! inserts/removes map entries.  A [`SlotTerm`] is a [`Term`] whose
//! variables have been resolved — once, at rule-compile time — to dense
//! slot ids `0..n` local to one rule; evaluation then runs against a flat
//! frame `[Option<Value>]` indexed by slot id, and bindings are undone by
//! truncating a trail of slot ids instead of removing map entries.
//!
//! The engine's `RulePlan` performs the numbering (see
//! `magic_engine::plan`); this module provides the compiled representation
//! and its two evaluation primitives, [`SlotTerm::eval_slots`] and
//! [`SlotTerm::match_value_slots`].

use crate::symbol::Symbol;
use crate::term::{LinearExpr, Term, Value, Variable};

/// A binding frame: one optional ground value per rule-local variable slot.
///
/// Allocated once per rule evaluation and reused across every candidate
/// tuple; the engine unwinds it through a trail of slot ids.
pub type Frame = Vec<Option<Value>>;

/// A trail of slot ids bound since some mark, used to unwind a [`Frame`]
/// without scanning it.
pub type Trail = Vec<u32>;

/// Unbind every slot recorded on `trail` past `mark` and truncate the trail
/// back to it.  The one authoritative backtracking primitive, shared by
/// [`SlotTerm::match_value_slots`]'s failure path and the engine's per-row
/// backtracking.
#[inline]
pub fn unwind(frame: &mut [Option<Value>], trail: &mut Trail, mark: usize) {
    for &slot in &trail[mark..] {
        frame[slot as usize] = None;
    }
    trail.truncate(mark);
}

/// A term whose variables are resolved to dense rule-local slot ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SlotTerm {
    /// A variable, as its slot id.
    Slot(u32),
    /// An integer constant.
    Int(i64),
    /// A symbolic constant.
    Sym(Symbol),
    /// A function symbol applied to slot terms.
    App(Symbol, Vec<SlotTerm>),
    /// A linear index expression `slot * mul + add` (counting rewrites).
    Linear {
        /// The slot the expression is linear in.
        slot: u32,
        /// Multiplier (non-zero).
        mul: i64,
        /// Additive constant.
        add: i64,
    },
}

impl Term {
    /// Compile this term to slot form.  `slot_of` assigns (and memoizes) the
    /// slot id of each variable; the engine passes a closure over its dense
    /// numbering.
    pub fn to_slots(&self, slot_of: &mut impl FnMut(Variable) -> u32) -> SlotTerm {
        match self {
            Term::Var(v) => SlotTerm::Slot(slot_of(*v)),
            Term::Int(i) => SlotTerm::Int(*i),
            Term::Sym(s) => SlotTerm::Sym(*s),
            Term::App(f, args) => {
                SlotTerm::App(*f, args.iter().map(|a| a.to_slots(slot_of)).collect())
            }
            Term::Linear(l) => SlotTerm::Linear {
                slot: slot_of(l.var),
                mul: l.mul,
                add: l.add,
            },
        }
    }
}

impl SlotTerm {
    /// Evaluate to a ground [`Value`] against `frame`.
    ///
    /// Returns `None` if any slot of the term is unbound (or a linear
    /// expression is applied to a non-integer value).  The slot analogue of
    /// [`Term::eval`].
    pub fn eval_slots(&self, frame: &[Option<Value>]) -> Option<Value> {
        match self {
            SlotTerm::Slot(s) => frame[*s as usize].clone(),
            SlotTerm::Int(i) => Some(Value::Int(*i)),
            SlotTerm::Sym(s) => Some(Value::Sym(*s)),
            SlotTerm::Linear { slot, mul, add } => match frame[*slot as usize] {
                Some(Value::Int(i)) => Some(Value::Int(LinearExpr::eval_parts(*mul, *add, i))),
                _ => None,
            },
            SlotTerm::App(f, args) => {
                let vals: Option<Vec<Value>> = args.iter().map(|a| a.eval_slots(frame)).collect();
                Some(Value::app(*f, vals?))
            }
        }
    }

    /// Match against a ground value, extending `frame` and recording every
    /// newly bound slot on `trail`.  The slot analogue of
    /// [`Term::match_value`].
    ///
    /// Unlike the map-based primitive, a failed match leaves `frame` and
    /// `trail` exactly as they were: partial bindings are unwound here, so
    /// the caller needs no per-term bookkeeping (and no allocation) on the
    /// failure path.
    pub fn match_value_slots(
        &self,
        value: &Value,
        frame: &mut [Option<Value>],
        trail: &mut Trail,
    ) -> bool {
        let mark = trail.len();
        if self.match_inner(value, frame, trail) {
            true
        } else {
            unwind(frame, trail, mark);
            false
        }
    }

    /// The matching recursion; may leave partial bindings behind on failure
    /// (cleaned up by [`SlotTerm::match_value_slots`]).
    fn match_inner(&self, value: &Value, frame: &mut [Option<Value>], trail: &mut Trail) -> bool {
        match self {
            SlotTerm::Slot(s) => match &frame[*s as usize] {
                Some(existing) => existing == value,
                None => {
                    frame[*s as usize] = Some(value.clone());
                    trail.push(*s);
                    true
                }
            },
            SlotTerm::Int(i) => matches!(value, Value::Int(j) if i == j),
            SlotTerm::Sym(s) => matches!(value, Value::Sym(t) if s == t),
            SlotTerm::Linear { slot, mul, add } => match value {
                Value::Int(observed) => match &frame[*slot as usize] {
                    Some(Value::Int(bound)) => {
                        LinearExpr::eval_parts(*mul, *add, *bound) == *observed
                    }
                    Some(_) => false,
                    None => match LinearExpr::invert_parts(*mul, *add, *observed) {
                        Some(x) => {
                            frame[*slot as usize] = Some(Value::Int(x));
                            trail.push(*slot);
                            true
                        }
                        None => false,
                    },
                },
                _ => false,
            },
            SlotTerm::App(f, args) => match value {
                Value::App(cell) => {
                    let (vf, vargs) = (&cell.0, &cell.1);
                    vf == f
                        && vargs.len() == args.len()
                        && args
                            .iter()
                            .zip(vargs.iter())
                            .all(|(t, v)| t.match_inner(v, frame, trail))
                }
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A slot numbering for tests: first-come, first-numbered.
    fn compile(term: &Term) -> (SlotTerm, Vec<Variable>) {
        let mut order: Vec<Variable> = Vec::new();
        let mut map: HashMap<Variable, u32> = HashMap::new();
        let slotted = term.to_slots(&mut |v| {
            *map.entry(v).or_insert_with(|| {
                order.push(v);
                (order.len() - 1) as u32
            })
        });
        (slotted, order)
    }

    #[test]
    fn slot_compile_numbers_by_first_occurrence() {
        let t = Term::app("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let (s, order) = compile(&t);
        assert_eq!(order, vec![Variable::new("X"), Variable::new("Y")]);
        assert_eq!(
            s,
            SlotTerm::App(
                Symbol::new("f"),
                vec![SlotTerm::Slot(0), SlotTerm::Slot(1), SlotTerm::Slot(0)]
            )
        );
    }

    #[test]
    fn eval_slots_matches_map_based_eval() {
        let t = Term::app("f", vec![Term::var("X"), Term::int(3)]);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![None];
        assert_eq!(s.eval_slots(&frame), None);
        frame[0] = Some(Value::sym("a"));
        let mut bindings = crate::term::Bindings::new();
        bindings.insert(Variable::new("X"), Value::sym("a"));
        assert_eq!(s.eval_slots(&frame), t.eval(&bindings));
    }

    #[test]
    fn match_binds_and_repeated_slots_enforce_equality() {
        let t = Term::app("f", vec![Term::var("X"), Term::var("X")]);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![None];
        let mut trail: Trail = Vec::new();
        let good = Value::app(Symbol::new("f"), vec![Value::sym("a"), Value::sym("a")]);
        assert!(s.match_value_slots(&good, &mut frame, &mut trail));
        assert_eq!(frame[0], Some(Value::sym("a")));
        assert_eq!(trail, vec![0]);

        let mut frame2: Frame = vec![None];
        let mut trail2: Trail = Vec::new();
        let bad = Value::app(Symbol::new("f"), vec![Value::sym("a"), Value::sym("b")]);
        assert!(!s.match_value_slots(&bad, &mut frame2, &mut trail2));
        // Failure unwinds the partial binding of X.
        assert_eq!(frame2[0], None);
        assert!(trail2.is_empty());
    }

    #[test]
    fn match_respects_existing_bindings() {
        let (s, _) = compile(&Term::var("X"));
        let mut frame: Frame = vec![Some(Value::sym("a"))];
        let mut trail: Trail = Vec::new();
        assert!(s.match_value_slots(&Value::sym("a"), &mut frame, &mut trail));
        assert!(!s.match_value_slots(&Value::sym("b"), &mut frame, &mut trail));
        assert!(trail.is_empty());
    }

    #[test]
    fn linear_slots_forward_and_inverse() {
        let t = Term::linear(Variable::new("K"), 2, 2);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![None];
        let mut trail: Trail = Vec::new();
        // Unbound: invert 8 = 2K + 2 -> K = 3.
        assert!(s.match_value_slots(&Value::Int(8), &mut frame, &mut trail));
        assert_eq!(frame[0], Some(Value::Int(3)));
        assert_eq!(trail, vec![0]);
        // Bound: must agree.
        assert!(s.match_value_slots(&Value::Int(8), &mut frame, &mut trail));
        assert!(!s.match_value_slots(&Value::Int(10), &mut frame, &mut trail));
        // Non-divisible inversion fails without binding.
        let mut frame2: Frame = vec![None];
        let mut trail2: Trail = Vec::new();
        assert!(!s.match_value_slots(&Value::Int(7), &mut frame2, &mut trail2));
        assert_eq!(frame2[0], None);
        // Forward evaluation.
        assert_eq!(s.eval_slots(&frame), Some(Value::Int(8)));
    }

    #[test]
    fn nested_app_failure_unwinds_all_partial_bindings() {
        // g(X, f(Y, X)) against g(a, f(b, c)): X binds to a, Y binds to b,
        // then the inner X=c check fails; both bindings must be undone.
        let t = Term::app(
            "g",
            vec![
                Term::var("X"),
                Term::app("f", vec![Term::var("Y"), Term::var("X")]),
            ],
        );
        let (s, _) = compile(&t);
        let v = Value::app(
            Symbol::new("g"),
            vec![
                Value::sym("a"),
                Value::app(Symbol::new("f"), vec![Value::sym("b"), Value::sym("c")]),
            ],
        );
        let mut frame: Frame = vec![None, None];
        let mut trail: Trail = Vec::new();
        assert!(!s.match_value_slots(&v, &mut frame, &mut trail));
        assert_eq!(frame, vec![None, None]);
        assert!(trail.is_empty());
    }
}
