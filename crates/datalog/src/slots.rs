//! Slot-compiled terms: the zero-allocation evaluation form of [`Term`].
//!
//! The map-based [`Bindings`](crate::Bindings) API is convenient for the
//! rewrite layers, which manipulate small environments a handful of times
//! per rule.  It is wrong for the join inner loop, where every candidate
//! tuple hashes `Variable` keys, clones `Vec`s of variables and
//! inserts/removes map entries.  A [`SlotTerm`] is a [`Term`] whose
//! variables have been resolved — once, at rule-compile time — to dense
//! slot ids `0..n` local to one rule, and whose ground subterms have been
//! interned to [`ValId`]s; evaluation then runs against a flat frame
//! `[ValId]` indexed by slot id ([`ValId::NULL`] means unbound), and
//! bindings are undone by truncating a trail of slot ids instead of
//! removing map entries.
//!
//! Since relations store interned rows (see `magic_storage`), matching a
//! check term against a candidate value is a `u32` compare for constants
//! and a four-byte copy for a fresh variable binding — no `Value` clone,
//! no `Arc` refcount traffic, no hashing.  Only compound patterns with
//! variables descend into the arena's (lock-free) node table.
//!
//! The engine's `RulePlan` performs the numbering (see
//! `magic_engine::plan`); this module provides the compiled representation
//! and its two evaluation primitives, [`SlotTerm::eval_slots`] and
//! [`SlotTerm::match_value_slots`].

use crate::arena::ValId;
use crate::symbol::Symbol;
use crate::term::{LinearExpr, Term, Variable};

/// A binding frame: one [`ValId`] per rule-local variable slot, with
/// [`ValId::NULL`] marking unbound slots.
///
/// Allocated once per rule evaluation and reused across every candidate
/// tuple; the engine unwinds it through a trail of slot ids.
pub type Frame = Vec<ValId>;

/// A trail of slot ids bound since some mark, used to unwind a [`Frame`]
/// without scanning it.
pub type Trail = Vec<u32>;

/// Unbind every slot recorded on `trail` past `mark` and truncate the trail
/// back to it.  The one authoritative backtracking primitive, shared by
/// [`SlotTerm::match_value_slots`]'s failure path and the engine's per-row
/// backtracking.
#[inline]
pub fn unwind(frame: &mut [ValId], trail: &mut Trail, mark: usize) {
    for &slot in &trail[mark..] {
        frame[slot as usize] = ValId::NULL;
    }
    trail.truncate(mark);
}

/// A term whose variables are resolved to dense rule-local slot ids and
/// whose ground subterms are interned to [`ValId`]s.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SlotTerm {
    /// A variable, as its slot id.
    Slot(u32),
    /// An interned ground constant (integer, symbol, or ground compound).
    Const(ValId),
    /// A non-ground compound: function symbol applied to slot terms.
    App(Symbol, Vec<SlotTerm>),
    /// A linear index expression `slot * mul + add` (counting rewrites).
    Linear {
        /// The slot the expression is linear in.
        slot: u32,
        /// Multiplier (non-zero).
        mul: i64,
        /// Additive constant.
        add: i64,
    },
}

impl Term {
    /// Compile this term to slot form.  `slot_of` assigns (and memoizes) the
    /// slot id of each variable; the engine passes a closure over its dense
    /// numbering.  Ground subterms collapse to interned [`SlotTerm::Const`]s,
    /// so the run-time matcher compares them as single `u32`s.
    pub fn to_slots(&self, slot_of: &mut impl FnMut(Variable) -> u32) -> SlotTerm {
        match self {
            Term::Var(v) => SlotTerm::Slot(slot_of(*v)),
            Term::Int(i) => SlotTerm::Const(ValId::from_int(*i)),
            Term::Sym(s) => SlotTerm::Const(ValId::from_sym(*s)),
            Term::App(f, args) => {
                let slotted: Vec<SlotTerm> = args.iter().map(|a| a.to_slots(slot_of)).collect();
                if let Some(ids) = slotted
                    .iter()
                    .map(|t| match t {
                        SlotTerm::Const(id) => Some(*id),
                        _ => None,
                    })
                    .collect::<Option<Vec<ValId>>>()
                {
                    SlotTerm::Const(ValId::from_app(*f, &ids))
                } else {
                    SlotTerm::App(*f, slotted)
                }
            }
            Term::Linear(l) => SlotTerm::Linear {
                slot: slot_of(l.var),
                mul: l.mul,
                add: l.add,
            },
        }
    }
}

impl SlotTerm {
    /// Evaluate to an interned value against `frame`.
    ///
    /// Returns [`ValId::NULL`] if any slot of the term is unbound (or a
    /// linear expression is applied to a non-integer value).  The slot
    /// analogue of [`Term::eval`].
    pub fn eval_slots(&self, frame: &[ValId]) -> ValId {
        match self {
            SlotTerm::Slot(s) => frame[*s as usize],
            SlotTerm::Const(id) => *id,
            SlotTerm::Linear { slot, mul, add } => {
                let bound = frame[*slot as usize];
                if bound.is_null() {
                    return ValId::NULL;
                }
                match bound.as_int() {
                    Some(i) => ValId::from_int(LinearExpr::eval_parts(*mul, *add, i)),
                    None => ValId::NULL,
                }
            }
            SlotTerm::App(f, args) => {
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    let id = a.eval_slots(frame);
                    if id.is_null() {
                        return ValId::NULL;
                    }
                    ids.push(id);
                }
                ValId::from_app(*f, &ids)
            }
        }
    }

    /// Match against an interned ground value, extending `frame` and
    /// recording every newly bound slot on `trail`.  The slot analogue of
    /// [`Term::match_value`].
    ///
    /// Unlike the map-based primitive, a failed match leaves `frame` and
    /// `trail` exactly as they were: partial bindings are unwound here, so
    /// the caller needs no per-term bookkeeping (and no allocation) on the
    /// failure path.
    pub fn match_value_slots(&self, value: ValId, frame: &mut [ValId], trail: &mut Trail) -> bool {
        let mark = trail.len();
        if self.match_inner(value, frame, trail) {
            true
        } else {
            unwind(frame, trail, mark);
            false
        }
    }

    /// The matching recursion; may leave partial bindings behind on failure
    /// (cleaned up by [`SlotTerm::match_value_slots`]).
    fn match_inner(&self, value: ValId, frame: &mut [ValId], trail: &mut Trail) -> bool {
        match self {
            SlotTerm::Slot(s) => {
                let existing = frame[*s as usize];
                if existing.is_null() {
                    frame[*s as usize] = value;
                    trail.push(*s);
                    true
                } else {
                    existing == value
                }
            }
            // Hash-consing makes structural equality an id compare.
            SlotTerm::Const(id) => *id == value,
            SlotTerm::Linear { slot, mul, add } => {
                let Some(observed) = value.as_int() else {
                    return false;
                };
                let bound = frame[*slot as usize];
                if bound.is_null() {
                    match LinearExpr::invert_parts(*mul, *add, observed) {
                        Some(x) => {
                            frame[*slot as usize] = ValId::from_int(x);
                            trail.push(*slot);
                            true
                        }
                        None => false,
                    }
                } else {
                    match bound.as_int() {
                        Some(i) => LinearExpr::eval_parts(*mul, *add, i) == observed,
                        None => false,
                    }
                }
            }
            SlotTerm::App(f, args) => match value.as_app() {
                Some((vf, vargs)) => {
                    vf == *f
                        && vargs.len() == args.len()
                        && args
                            .iter()
                            .zip(vargs.iter())
                            .all(|(t, v)| t.match_inner(*v, frame, trail))
                }
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;
    use std::collections::HashMap;

    /// A slot numbering for tests: first-come, first-numbered.
    fn compile(term: &Term) -> (SlotTerm, Vec<Variable>) {
        let mut order: Vec<Variable> = Vec::new();
        let mut map: HashMap<Variable, u32> = HashMap::new();
        let slotted = term.to_slots(&mut |v| {
            *map.entry(v).or_insert_with(|| {
                order.push(v);
                (order.len() - 1) as u32
            })
        });
        (slotted, order)
    }

    fn vid(v: &Value) -> ValId {
        ValId::intern(v)
    }

    #[test]
    fn slot_compile_numbers_by_first_occurrence() {
        let t = Term::app("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let (s, order) = compile(&t);
        assert_eq!(order, vec![Variable::new("X"), Variable::new("Y")]);
        match s {
            SlotTerm::App(f, args) => {
                assert_eq!(f, Symbol::new("f"));
                assert_eq!(
                    args,
                    vec![SlotTerm::Slot(0), SlotTerm::Slot(1), SlotTerm::Slot(0)]
                );
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn ground_compounds_collapse_to_interned_constants() {
        let t = Term::app("f", vec![Term::sym("a"), Term::int(3)]);
        let (s, order) = compile(&t);
        assert!(order.is_empty());
        let expected = vid(&Value::app(
            Symbol::new("f"),
            vec![Value::sym("a"), Value::Int(3)],
        ));
        assert_eq!(s, SlotTerm::Const(expected));
    }

    #[test]
    fn eval_slots_matches_map_based_eval() {
        let t = Term::app("f", vec![Term::var("X"), Term::int(3)]);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![ValId::NULL];
        assert!(s.eval_slots(&frame).is_null());
        frame[0] = vid(&Value::sym("a"));
        let mut bindings = crate::term::Bindings::new();
        bindings.insert(Variable::new("X"), Value::sym("a"));
        assert_eq!(s.eval_slots(&frame).value(), t.eval(&bindings).unwrap());
    }

    #[test]
    fn match_binds_and_repeated_slots_enforce_equality() {
        let t = Term::app("f", vec![Term::var("X"), Term::var("X")]);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![ValId::NULL];
        let mut trail: Trail = Vec::new();
        let good = vid(&Value::app(
            Symbol::new("f"),
            vec![Value::sym("a"), Value::sym("a")],
        ));
        assert!(s.match_value_slots(good, &mut frame, &mut trail));
        assert_eq!(frame[0], vid(&Value::sym("a")));
        assert_eq!(trail, vec![0]);

        let mut frame2: Frame = vec![ValId::NULL];
        let mut trail2: Trail = Vec::new();
        let bad = vid(&Value::app(
            Symbol::new("f"),
            vec![Value::sym("a"), Value::sym("b")],
        ));
        assert!(!s.match_value_slots(bad, &mut frame2, &mut trail2));
        // Failure unwinds the partial binding of X.
        assert!(frame2[0].is_null());
        assert!(trail2.is_empty());
    }

    #[test]
    fn match_respects_existing_bindings() {
        let (s, _) = compile(&Term::var("X"));
        let mut frame: Frame = vec![vid(&Value::sym("a"))];
        let mut trail: Trail = Vec::new();
        assert!(s.match_value_slots(vid(&Value::sym("a")), &mut frame, &mut trail));
        assert!(!s.match_value_slots(vid(&Value::sym("b")), &mut frame, &mut trail));
        assert!(trail.is_empty());
    }

    #[test]
    fn linear_slots_forward_and_inverse() {
        let t = Term::linear(Variable::new("K"), 2, 2);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![ValId::NULL];
        let mut trail: Trail = Vec::new();
        // Unbound: invert 8 = 2K + 2 -> K = 3.
        assert!(s.match_value_slots(ValId::from_int(8), &mut frame, &mut trail));
        assert_eq!(frame[0], ValId::from_int(3));
        assert_eq!(trail, vec![0]);
        // Bound: must agree.
        assert!(s.match_value_slots(ValId::from_int(8), &mut frame, &mut trail));
        assert!(!s.match_value_slots(ValId::from_int(10), &mut frame, &mut trail));
        // Non-divisible inversion fails without binding.
        let mut frame2: Frame = vec![ValId::NULL];
        let mut trail2: Trail = Vec::new();
        assert!(!s.match_value_slots(ValId::from_int(7), &mut frame2, &mut trail2));
        assert!(frame2[0].is_null());
        // Forward evaluation.
        assert_eq!(s.eval_slots(&frame), ValId::from_int(8));
    }

    #[test]
    fn linear_matches_out_of_inline_range_ints() {
        // Saturated counting indexes overflow the inline encoding; the
        // table path must behave identically.
        let t = Term::linear(Variable::new("K"), 1, -1);
        let (s, _) = compile(&t);
        let mut frame: Frame = vec![ValId::NULL];
        let mut trail: Trail = Vec::new();
        let big = (1i64 << 40) + 1;
        assert!(s.match_value_slots(ValId::from_int(big - 1), &mut frame, &mut trail));
        assert_eq!(frame[0].as_int(), Some(big));
    }

    #[test]
    fn nested_app_failure_unwinds_all_partial_bindings() {
        // g(X, f(Y, X)) against g(a, f(b, c)): X binds to a, Y binds to b,
        // then the inner X=c check fails; both bindings must be undone.
        let t = Term::app(
            "g",
            vec![
                Term::var("X"),
                Term::app("f", vec![Term::var("Y"), Term::var("X")]),
            ],
        );
        let (s, _) = compile(&t);
        let v = vid(&Value::app(
            Symbol::new("g"),
            vec![
                Value::sym("a"),
                Value::app(Symbol::new("f"), vec![Value::sym("b"), Value::sym("c")]),
            ],
        ));
        let mut frame: Frame = vec![ValId::NULL, ValId::NULL];
        let mut trail: Trail = Vec::new();
        assert!(!s.match_value_slots(v, &mut frame, &mut trail));
        assert!(frame.iter().all(|id| id.is_null()));
        assert!(trail.is_empty());
    }
}
