//! Horn clauses (rules), queries, and the paper's well-formedness conditions.
//!
//! Beyond the paper's positive language, rules may carry *negated* body
//! atoms (`not p(X)`) and one *aggregate* head position
//! (`total(P, sum<C>)`), evaluated under stratified semantics: a negated
//! or aggregated subgoal may only read predicates from strictly lower
//! strata (see [`crate::schedule::Schedule`]).

use crate::atom::Atom;
use crate::error::DatalogError;
use crate::pred::PredName;
use crate::term::{Term, Value, Variable};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An aggregate function: a stratum-boundary reduction over the grouped
/// matches of a rule body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// The number of distinct values of the aggregated variable per group.
    Count,
    /// The sum of the distinct integer values per group.
    Sum,
    /// The minimum integer value per group.
    Min,
    /// The maximum integer value per group.
    Max,
}

impl AggFunc {
    /// The surface-syntax keyword of the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse a surface keyword into the function, if it is one.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate head position: `func<Var>` at `position` of the head.
/// The head atom itself keeps a plain variable term at that position (so
/// all positional machinery — plans, adornments — sees an ordinary head);
/// the aggregate is applied as a group-by reduction at the rule's stratum
/// boundary, grouping on the remaining head positions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Aggregate {
    /// The reduction applied per group.
    pub func: AggFunc,
    /// The aggregated body variable (must occur in the positive body).
    pub var: Variable,
    /// The head argument position holding the aggregate result.
    pub position: usize,
}

/// A Horn clause `head :- body`.  A rule with an empty body is a fact
/// (and, by condition (WF), must be ground).
///
/// `body` holds the *positive* atoms only; negated atoms live in
/// [`negated`](Rule::negated) so that every positive-only analysis and
/// rewrite (sips, adornment, magic rules, delta variants) keeps its exact
/// pre-negation meaning.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The positive body atoms (predicate occurrences), in textual order.
    pub body: Vec<Atom>,
    /// The negated body atoms (`not p(...)`), in textual order.  Under
    /// stratified semantics each is an anti-join against the *finished*
    /// relation of a strictly lower stratum.
    pub negated: Vec<Atom>,
    /// The aggregate head position, if any.
    pub aggregate: Option<Aggregate>,
}

impl Rule {
    /// Construct a (positive) rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule {
            head,
            body,
            negated: Vec::new(),
            aggregate: None,
        }
    }

    /// Attach negated body atoms to the rule.
    pub fn with_negated(mut self, negated: Vec<Atom>) -> Rule {
        self.negated = negated;
        self
    }

    /// Attach an aggregate head position to the rule.
    pub fn with_aggregate(mut self, aggregate: Aggregate) -> Rule {
        self.aggregate = Some(aggregate);
        self
    }

    /// Construct a fact (a rule with an empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule::new(head, Vec::new())
    }

    /// True iff the rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.negated.is_empty()
    }

    /// True iff the rule uses negation or aggregation — i.e. must be
    /// *guarded* by stratification and evaluated semi-positively.
    pub fn is_guarded(&self) -> bool {
        !self.negated.is_empty() || self.aggregate.is_some()
    }

    /// All variables of the rule, in first-occurrence order (head first,
    /// then the positive body, then the negated atoms).
    pub fn vars(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for t in &self.head.terms {
            t.collect_vars(&mut out);
        }
        for atom in self.body.iter().chain(self.negated.iter()) {
            for t in &atom.terms {
                t.collect_vars(&mut out);
            }
        }
        out
    }

    /// The set of variables appearing in the *positive* body.  Negated
    /// atoms bind nothing: the safety condition requires their variables to
    /// already appear here.
    pub fn body_vars(&self) -> BTreeSet<Variable> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// Check condition (WF): every variable in the head also appears in the
    /// body.  (For facts this means the head must be ground.)
    pub fn check_well_formed(&self) -> Result<(), DatalogError> {
        let body_vars = self.body_vars();
        for v in self.head.vars() {
            if !body_vars.contains(&v) {
                return Err(DatalogError::NotWellFormed {
                    rule: self.to_string(),
                    variable: v.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Check condition (C): the predicate occurrences of the rule (head and
    /// body) form a single connected component under shared variables.
    ///
    /// Ground atoms (no variables) are connected to nothing, so a rule with a
    /// ground body atom and a non-empty rest fails the check — exactly the
    /// "existential subquery" case the paper factors out.
    pub fn check_connected(&self) -> Result<(), DatalogError> {
        if self.body.is_empty() {
            return Ok(());
        }
        // Union-find over atom indices 0..=body.len(), where index 0 is the
        // head and i+1 is body[i].
        let n = self.body.len() + 1;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut var_home: HashMap<Variable, usize> = HashMap::new();
        let atoms: Vec<&Atom> = std::iter::once(&self.head)
            .chain(self.body.iter())
            .collect();
        for (i, atom) in atoms.iter().enumerate() {
            for v in atom.vars() {
                match var_home.get(&v) {
                    Some(&j) => union(&mut parent, i, j),
                    None => {
                        var_home.insert(v, i);
                    }
                }
            }
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            if find(&mut parent, i) != root {
                return Err(DatalogError::NotConnected {
                    rule: self.to_string(),
                    atom: self.body[i - 1].to_string(),
                });
            }
        }
        Ok(())
    }

    /// Check the negation safety condition: every variable of a negated
    /// atom must be bound by a positive body atom (an unbound variable
    /// under complementation would range over the whole domain).  The
    /// aggregated variable, when present, must be bound positively too.
    pub fn check_negation_safe(&self) -> Result<(), DatalogError> {
        let bound = self.body_vars();
        for atom in &self.negated {
            for v in atom.vars() {
                if !bound.contains(&v) {
                    return Err(DatalogError::UnsafeNegation {
                        rule: self.to_string(),
                        variable: v.name().to_string(),
                        predicate: atom.pred.to_string(),
                    });
                }
            }
        }
        if let Some(agg) = &self.aggregate {
            if !bound.contains(&agg.var) {
                return Err(DatalogError::UnsafeNegation {
                    rule: self.to_string(),
                    variable: agg.var.name().to_string(),
                    predicate: self.head.pred.to_string(),
                });
            }
        }
        Ok(())
    }

    /// The set of predicate names occurring in the positive body.
    pub fn body_preds(&self) -> BTreeSet<PredName> {
        self.body.iter().map(|a| a.pred.clone()).collect()
    }

    /// The set of predicate names occurring in the negated body atoms.
    pub fn negated_preds(&self) -> BTreeSet<PredName> {
        self.negated.iter().map(|a| a.pred.clone()).collect()
    }

    /// All predicate names the rule reads: positive and negated.
    pub fn all_body_preds(&self) -> BTreeSet<PredName> {
        self.body
            .iter()
            .chain(self.negated.iter())
            .map(|a| a.pred.clone())
            .collect()
    }

    /// Rename every variable of the rule using `f`.
    pub fn rename_vars(&self, f: &mut impl FnMut(Variable) -> Variable) -> Rule {
        Rule {
            head: self.head.rename_vars(f),
            body: self.body.iter().map(|a| a.rename_vars(f)).collect(),
            negated: self.negated.iter().map(|a| a.rename_vars(f)).collect(),
            aggregate: self.aggregate.as_ref().map(|agg| Aggregate {
                func: agg.func,
                var: f(agg.var),
                position: agg.position,
            }),
        }
    }

    /// Rename the rule's variables apart by appending a suffix — used when a
    /// rule is instantiated several times in one derivation context.
    pub fn standardize_apart(&self, suffix: usize) -> Rule {
        self.rename_vars(&mut |v| Variable::new(&format!("{}__{}", v.name(), suffix)))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The head, with the aggregate position printed as `func<Var>`.
        match &self.aggregate {
            None => write!(f, "{}", self.head)?,
            Some(agg) => {
                write!(f, "{}(", self.head.pred)?;
                for (i, term) in self.head.terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if i == agg.position {
                        write!(f, "{}<{}>", agg.func, agg.var.name())?;
                    } else {
                        write!(f, "{term}")?;
                    }
                }
                write!(f, ")")?;
            }
        }
        // Negated atoms print after the positive body (parsing accepts them
        // anywhere; printing normalizes them to the end).
        if !self.body.is_empty() || !self.negated.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for atom in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{atom}")?;
            }
            for atom in &self.negated {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {atom}")?;
            }
        }
        write!(f, ".")
    }
}

/// A query: a single predicate occurrence with some argument positions bound
/// to constants (Section 1.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The query atom, e.g. `anc(john, Y)`.
    pub atom: Atom,
}

impl Query {
    /// Construct a query from its atom.
    pub fn new(atom: Atom) -> Query {
        Query { atom }
    }

    /// Construct a query over a plain predicate.
    pub fn plain(name: &str, terms: Vec<Term>) -> Query {
        Query {
            atom: Atom::plain(name, terms),
        }
    }

    /// The query predicate.
    pub fn pred(&self) -> &PredName {
        &self.atom.pred
    }

    /// The adornment determined by the query: positions holding ground terms
    /// are bound, positions holding terms with variables are free.
    pub fn adornment(&self) -> crate::adornment::Adornment {
        self.atom.adornment_under(&BTreeSet::new())
    }

    /// The ground values in the bound positions of the query, in order.
    /// These form the magic / counting seed (Section 4, step 4).
    pub fn bound_values(&self) -> Vec<Value> {
        self.atom
            .terms
            .iter()
            .filter(|t| t.is_ground())
            .map(|t| t.to_value().expect("ground term"))
            .collect()
    }

    /// The variables in the free positions of the query, in order.
    pub fn free_vars(&self) -> Vec<Variable> {
        self.atom.vars()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- {}.", self.atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anc_rule() -> Rule {
        // anc(X, Y) :- par(X, Z), anc(Z, Y).
        Rule::new(
            Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Atom::plain("par", vec![Term::var("X"), Term::var("Z")]),
                Atom::plain("anc", vec![Term::var("Z"), Term::var("Y")]),
            ],
        )
    }

    #[test]
    fn display() {
        assert_eq!(anc_rule().to_string(), "anc(X, Y) :- par(X, Z), anc(Z, Y).");
        let f = Rule::fact(Atom::plain("par", vec![Term::sym("a"), Term::sym("b")]));
        assert_eq!(f.to_string(), "par(a, b).");
    }

    #[test]
    fn well_formedness() {
        assert!(anc_rule().check_well_formed().is_ok());
        let bad = Rule::new(
            Atom::plain("p", vec![Term::var("X"), Term::var("Y")]),
            vec![Atom::plain("q", vec![Term::var("X")])],
        );
        assert!(bad.check_well_formed().is_err());
        // A fact with variables violates WF.
        let bad_fact = Rule::fact(Atom::plain("p", vec![Term::var("X")]));
        assert!(bad_fact.check_well_formed().is_err());
    }

    #[test]
    fn connectivity() {
        assert!(anc_rule().check_connected().is_ok());
        // p(X) :- q(X), r(Y).  r(Y) is a disconnected existential subquery.
        let bad = Rule::new(
            Atom::plain("p", vec![Term::var("X")]),
            vec![
                Atom::plain("q", vec![Term::var("X")]),
                Atom::plain("r", vec![Term::var("Y")]),
            ],
        );
        assert!(bad.check_connected().is_err());
        // Connection through a chain of variables is allowed.
        let chained = Rule::new(
            Atom::plain("p", vec![Term::var("X")]),
            vec![
                Atom::plain("q", vec![Term::var("X"), Term::var("Y")]),
                Atom::plain("r", vec![Term::var("Y"), Term::var("Z")]),
                Atom::plain("s", vec![Term::var("Z")]),
            ],
        );
        assert!(chained.check_connected().is_ok());
    }

    #[test]
    fn vars_order() {
        let vars = anc_rule().vars();
        assert_eq!(
            vars,
            vec![Variable::new("X"), Variable::new("Y"), Variable::new("Z")]
        );
    }

    #[test]
    fn query_adornment_and_seed() {
        let q = Query::plain("anc", vec![Term::sym("john"), Term::var("Y")]);
        assert_eq!(q.adornment().to_string(), "bf");
        assert_eq!(q.bound_values(), vec![Value::sym("john")]);
        assert_eq!(q.free_vars(), vec![Variable::new("Y")]);
        assert_eq!(q.to_string(), "?- anc(john, Y).");
    }

    #[test]
    fn negated_display_and_safety() {
        // stuck(X) :- pos(X), not can_move(X).
        let rule = Rule::new(
            Atom::plain("stuck", vec![Term::var("X")]),
            vec![Atom::plain("pos", vec![Term::var("X")])],
        )
        .with_negated(vec![Atom::plain("can_move", vec![Term::var("X")])]);
        assert_eq!(rule.to_string(), "stuck(X) :- pos(X), not can_move(X).");
        assert!(rule.is_guarded());
        assert!(!rule.is_fact());
        rule.check_negation_safe().unwrap();
        assert!(rule.negated_preds().contains(&PredName::plain("can_move")));
        assert!(rule.all_body_preds().contains(&PredName::plain("pos")));

        // bad(X) :- p(X), not q(Y): Y is not positively bound.
        let bad = Rule::new(
            Atom::plain("bad", vec![Term::var("X")]),
            vec![Atom::plain("p", vec![Term::var("X")])],
        )
        .with_negated(vec![Atom::plain("q", vec![Term::var("Y")])]);
        let err = bad.check_negation_safe().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('Y') && msg.contains('q'), "{msg}");
    }

    #[test]
    fn aggregate_display_and_rename() {
        // total(P, sum<C>) :- part(P, S, N), cost(S, C).
        let rule = Rule::new(
            Atom::plain("total", vec![Term::var("P"), Term::var("C")]),
            vec![
                Atom::plain("part", vec![Term::var("P"), Term::var("S"), Term::var("N")]),
                Atom::plain("cost", vec![Term::var("S"), Term::var("C")]),
            ],
        )
        .with_aggregate(Aggregate {
            func: AggFunc::Sum,
            var: Variable::new("C"),
            position: 1,
        });
        assert_eq!(
            rule.to_string(),
            "total(P, sum<C>) :- part(P, S, N), cost(S, C)."
        );
        rule.check_negation_safe().unwrap();
        let renamed = rule.standardize_apart(3);
        assert_eq!(
            renamed.aggregate.as_ref().unwrap().var,
            Variable::new("C__3")
        );
        assert_eq!(AggFunc::from_name("min"), Some(AggFunc::Min));
        assert_eq!(AggFunc::from_name("avg"), None);
    }

    #[test]
    fn standardize_apart_renames_consistently() {
        let r = anc_rule().standardize_apart(7);
        assert_eq!(
            r.to_string(),
            "anc(X__7, Y__7) :- par(X__7, Z__7), anc(Z__7, Y__7)."
        );
    }
}
