//! Horn clauses (rules), queries, and the paper's well-formedness conditions.

use crate::atom::Atom;
use crate::error::DatalogError;
use crate::pred::PredName;
use crate::term::{Term, Value, Variable};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A Horn clause `head :- body`.  A rule with an empty body is a fact
/// (and, by condition (WF), must be ground).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms (predicate occurrences), in textual order.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }

    /// Construct a fact (a rule with an empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// True iff the rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// All variables of the rule, in first-occurrence order (head first).
    pub fn vars(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for t in &self.head.terms {
            t.collect_vars(&mut out);
        }
        for atom in &self.body {
            for t in &atom.terms {
                t.collect_vars(&mut out);
            }
        }
        out
    }

    /// The set of variables appearing in the body.
    pub fn body_vars(&self) -> BTreeSet<Variable> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// Check condition (WF): every variable in the head also appears in the
    /// body.  (For facts this means the head must be ground.)
    pub fn check_well_formed(&self) -> Result<(), DatalogError> {
        let body_vars = self.body_vars();
        for v in self.head.vars() {
            if !body_vars.contains(&v) {
                return Err(DatalogError::NotWellFormed {
                    rule: self.to_string(),
                    variable: v.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Check condition (C): the predicate occurrences of the rule (head and
    /// body) form a single connected component under shared variables.
    ///
    /// Ground atoms (no variables) are connected to nothing, so a rule with a
    /// ground body atom and a non-empty rest fails the check — exactly the
    /// "existential subquery" case the paper factors out.
    pub fn check_connected(&self) -> Result<(), DatalogError> {
        if self.body.is_empty() {
            return Ok(());
        }
        // Union-find over atom indices 0..=body.len(), where index 0 is the
        // head and i+1 is body[i].
        let n = self.body.len() + 1;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut var_home: HashMap<Variable, usize> = HashMap::new();
        let atoms: Vec<&Atom> = std::iter::once(&self.head)
            .chain(self.body.iter())
            .collect();
        for (i, atom) in atoms.iter().enumerate() {
            for v in atom.vars() {
                match var_home.get(&v) {
                    Some(&j) => union(&mut parent, i, j),
                    None => {
                        var_home.insert(v, i);
                    }
                }
            }
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            if find(&mut parent, i) != root {
                return Err(DatalogError::NotConnected {
                    rule: self.to_string(),
                    atom: self.body[i - 1].to_string(),
                });
            }
        }
        Ok(())
    }

    /// The set of predicate names occurring in the body.
    pub fn body_preds(&self) -> BTreeSet<PredName> {
        self.body.iter().map(|a| a.pred.clone()).collect()
    }

    /// Rename every variable of the rule using `f`.
    pub fn rename_vars(&self, f: &mut impl FnMut(Variable) -> Variable) -> Rule {
        Rule {
            head: self.head.rename_vars(f),
            body: self.body.iter().map(|a| a.rename_vars(f)).collect(),
        }
    }

    /// Rename the rule's variables apart by appending a suffix — used when a
    /// rule is instantiated several times in one derivation context.
    pub fn standardize_apart(&self, suffix: usize) -> Rule {
        self.rename_vars(&mut |v| Variable::new(&format!("{}__{}", v.name(), suffix)))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, atom) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{atom}")?;
            }
        }
        write!(f, ".")
    }
}

/// A query: a single predicate occurrence with some argument positions bound
/// to constants (Section 1.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The query atom, e.g. `anc(john, Y)`.
    pub atom: Atom,
}

impl Query {
    /// Construct a query from its atom.
    pub fn new(atom: Atom) -> Query {
        Query { atom }
    }

    /// Construct a query over a plain predicate.
    pub fn plain(name: &str, terms: Vec<Term>) -> Query {
        Query {
            atom: Atom::plain(name, terms),
        }
    }

    /// The query predicate.
    pub fn pred(&self) -> &PredName {
        &self.atom.pred
    }

    /// The adornment determined by the query: positions holding ground terms
    /// are bound, positions holding terms with variables are free.
    pub fn adornment(&self) -> crate::adornment::Adornment {
        self.atom.adornment_under(&BTreeSet::new())
    }

    /// The ground values in the bound positions of the query, in order.
    /// These form the magic / counting seed (Section 4, step 4).
    pub fn bound_values(&self) -> Vec<Value> {
        self.atom
            .terms
            .iter()
            .filter(|t| t.is_ground())
            .map(|t| t.to_value().expect("ground term"))
            .collect()
    }

    /// The variables in the free positions of the query, in order.
    pub fn free_vars(&self) -> Vec<Variable> {
        self.atom.vars()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- {}.", self.atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anc_rule() -> Rule {
        // anc(X, Y) :- par(X, Z), anc(Z, Y).
        Rule::new(
            Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Atom::plain("par", vec![Term::var("X"), Term::var("Z")]),
                Atom::plain("anc", vec![Term::var("Z"), Term::var("Y")]),
            ],
        )
    }

    #[test]
    fn display() {
        assert_eq!(anc_rule().to_string(), "anc(X, Y) :- par(X, Z), anc(Z, Y).");
        let f = Rule::fact(Atom::plain("par", vec![Term::sym("a"), Term::sym("b")]));
        assert_eq!(f.to_string(), "par(a, b).");
    }

    #[test]
    fn well_formedness() {
        assert!(anc_rule().check_well_formed().is_ok());
        let bad = Rule::new(
            Atom::plain("p", vec![Term::var("X"), Term::var("Y")]),
            vec![Atom::plain("q", vec![Term::var("X")])],
        );
        assert!(bad.check_well_formed().is_err());
        // A fact with variables violates WF.
        let bad_fact = Rule::fact(Atom::plain("p", vec![Term::var("X")]));
        assert!(bad_fact.check_well_formed().is_err());
    }

    #[test]
    fn connectivity() {
        assert!(anc_rule().check_connected().is_ok());
        // p(X) :- q(X), r(Y).  r(Y) is a disconnected existential subquery.
        let bad = Rule::new(
            Atom::plain("p", vec![Term::var("X")]),
            vec![
                Atom::plain("q", vec![Term::var("X")]),
                Atom::plain("r", vec![Term::var("Y")]),
            ],
        );
        assert!(bad.check_connected().is_err());
        // Connection through a chain of variables is allowed.
        let chained = Rule::new(
            Atom::plain("p", vec![Term::var("X")]),
            vec![
                Atom::plain("q", vec![Term::var("X"), Term::var("Y")]),
                Atom::plain("r", vec![Term::var("Y"), Term::var("Z")]),
                Atom::plain("s", vec![Term::var("Z")]),
            ],
        );
        assert!(chained.check_connected().is_ok());
    }

    #[test]
    fn vars_order() {
        let vars = anc_rule().vars();
        assert_eq!(
            vars,
            vec![Variable::new("X"), Variable::new("Y"), Variable::new("Z")]
        );
    }

    #[test]
    fn query_adornment_and_seed() {
        let q = Query::plain("anc", vec![Term::sym("john"), Term::var("Y")]);
        assert_eq!(q.adornment().to_string(), "bf");
        assert_eq!(q.bound_values(), vec![Value::sym("john")]);
        assert_eq!(q.free_vars(), vec![Variable::new("Y")]);
        assert_eq!(q.to_string(), "?- anc(john, Y).");
    }

    #[test]
    fn standardize_apart_renames_consistently() {
        let r = anc_rule().standardize_apart(7);
        assert_eq!(
            r.to_string(),
            "anc(X__7, Y__7) :- par(X__7, Z__7), anc(Z__7, Y__7)."
        );
    }
}
