//! Programs: finite sets of rules, with the validations and catalog queries
//! the rewrites rely on.

use crate::atom::Fact;
use crate::error::DatalogError;
use crate::pred::PredName;
use crate::rule::{Query, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A program: a finite, ordered set of rules.
///
/// Following Section 1.1, facts are kept out of the program and live in the
/// database; [`Program::separate_facts`] performs this split for programs
/// written with embedded facts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules, in order.  Rule indices are meaningful: the counting
    /// rewrites encode them in derivation indices.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program { rules: Vec::new() }
    }

    /// A program from a list of rules.
    pub fn from_rules(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Add a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The set of *derived* predicates: those that appear as the head of some
    /// non-fact rule.
    pub fn derived_preds(&self) -> BTreeSet<PredName> {
        self.rules
            .iter()
            .filter(|r| !r.is_fact())
            .map(|r| r.head.pred.clone())
            .collect()
    }

    /// The set of *base* predicates: those that appear in rule bodies
    /// (positively or under `not`) but are never the head of a (non-fact)
    /// rule.
    pub fn base_preds(&self) -> BTreeSet<PredName> {
        let derived = self.derived_preds();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().chain(r.negated.iter()))
            .map(|a| a.pred.clone())
            .filter(|p| !derived.contains(p))
            .collect()
    }

    /// True iff `pred` is derived in this program.
    pub fn is_derived(&self, pred: &PredName) -> bool {
        self.rules
            .iter()
            .any(|r| !r.is_fact() && &r.head.pred == pred)
    }

    /// All predicates mentioned by the program, with their arities.
    pub fn predicate_arities(&self) -> Result<BTreeMap<PredName, usize>, DatalogError> {
        let mut arities: BTreeMap<PredName, usize> = BTreeMap::new();
        let mut record = |pred: &PredName, arity: usize| -> Result<(), DatalogError> {
            match arities.get(pred) {
                Some(&existing) if existing != arity => Err(DatalogError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected: existing,
                    found: arity,
                }),
                _ => {
                    arities.insert(pred.clone(), arity);
                    Ok(())
                }
            }
        };
        for rule in &self.rules {
            record(&rule.head.pred, rule.head.arity())?;
            for atom in rule.body.iter().chain(rule.negated.iter()) {
                record(&atom.pred, atom.arity())?;
            }
        }
        Ok(arities)
    }

    /// The rules whose head predicate is `pred`, with their indices.
    pub fn rules_for(&self, pred: &PredName) -> Vec<(usize, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| &r.head.pred == pred)
            .collect()
    }

    /// Split embedded ground facts out of the program, returning the residual
    /// program (rules only) and the extracted facts.
    pub fn separate_facts(&self) -> (Program, Vec<Fact>) {
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        for rule in &self.rules {
            if rule.is_fact() {
                if let Some(f) = rule.head.to_fact() {
                    facts.push(f);
                    continue;
                }
            }
            rules.push(rule.clone());
        }
        (Program { rules }, facts)
    }

    /// Validate the program: every rule satisfies (WF) and (C), arities are
    /// consistent, negated/aggregated variables are positively bound, and
    /// aggregate heads are structurally sound (a single defining rule, no
    /// mixing with plain derivations, the aggregated variable confined to
    /// its head position).
    pub fn validate(&self) -> Result<(), DatalogError> {
        self.predicate_arities()?;
        for rule in &self.rules {
            rule.check_well_formed()?;
            rule.check_connected()?;
            rule.check_negation_safe()?;
        }
        self.check_aggregate_heads()
    }

    /// Structural checks on aggregate rules: an aggregate head predicate
    /// must have exactly one defining rule (two reductions over the same
    /// head, or a mix of aggregate and plain derivations, has no single
    /// group-by meaning), and the aggregated variable may not occur in any
    /// other head position (it is consumed by the fold, not grouped on).
    fn check_aggregate_heads(&self) -> Result<(), DatalogError> {
        for rule in &self.rules {
            let Some(agg) = &rule.aggregate else { continue };
            let defining = self
                .rules
                .iter()
                .filter(|r| r.head.pred == rule.head.pred)
                .count();
            if defining > 1 {
                return Err(DatalogError::MalformedAggregate {
                    rule: rule.to_string(),
                    message: format!(
                        "aggregate head {} must have exactly one defining rule, found {defining}",
                        rule.head.pred
                    ),
                });
            }
            let elsewhere = rule
                .head
                .terms
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != agg.position)
                .any(|(_, t)| t.vars().contains(&agg.var));
            if elsewhere {
                return Err(DatalogError::MalformedAggregate {
                    rule: rule.to_string(),
                    message: format!(
                        "aggregated variable {} also occurs in a group-by head position",
                        agg.var.name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Validate a program/query pair: the program validates and the query
    /// predicate is defined (derived) or at least used by the program.
    pub fn validate_with_query(&self, query: &Query) -> Result<(), DatalogError> {
        self.validate()?;
        let pred = query.pred();
        let known = self.is_derived(pred) || self.base_preds().contains(pred);
        if !known {
            return Err(DatalogError::UnknownQueryPredicate {
                predicate: pred.to_string(),
            });
        }
        Ok(())
    }

    /// True iff the program is Datalog: no function symbols in any rule.
    pub fn is_datalog(&self) -> bool {
        use crate::term::Term;
        fn term_is_flat(t: &Term) -> bool {
            !matches!(t, Term::App(_, _))
        }
        self.rules.iter().all(|r| {
            r.head.terms.iter().all(term_is_flat)
                && r.body
                    .iter()
                    .chain(r.negated.iter())
                    .all(|a| a.terms.iter().all(term_is_flat))
        })
    }

    /// Drop any rule whose head predicate is in `preds` (used by rewrites
    /// that replace the definitions of certain predicates).
    pub fn without_rules_for(&self, preds: &BTreeSet<PredName>) -> Program {
        Program {
            rules: self
                .rules
                .iter()
                .filter(|r| !preds.contains(&r.head.pred))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        Program {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn ancestor_program() -> Program {
        Program::from_rules(vec![
            Rule::new(
                Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::plain("par", vec![Term::var("X"), Term::var("Y")])],
            ),
            Rule::new(
                Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Atom::plain("par", vec![Term::var("X"), Term::var("Z")]),
                    Atom::plain("anc", vec![Term::var("Z"), Term::var("Y")]),
                ],
            ),
        ])
    }

    #[test]
    fn base_and_derived() {
        let p = ancestor_program();
        assert!(p.is_derived(&PredName::plain("anc")));
        assert!(!p.is_derived(&PredName::plain("par")));
        assert_eq!(p.derived_preds().len(), 1);
        assert_eq!(p.base_preds().len(), 1);
        assert!(p.base_preds().contains(&PredName::plain("par")));
    }

    #[test]
    fn arities_consistent() {
        let p = ancestor_program();
        let arities = p.predicate_arities().unwrap();
        assert_eq!(arities[&PredName::plain("anc")], 2);
        assert_eq!(arities[&PredName::plain("par")], 2);

        let mut bad = ancestor_program();
        bad.push(Rule::new(
            Atom::plain("anc", vec![Term::var("X")]),
            vec![Atom::plain("par", vec![Term::var("X"), Term::var("X")])],
        ));
        assert!(bad.predicate_arities().is_err());
    }

    #[test]
    fn validation() {
        assert!(ancestor_program().validate().is_ok());
        let q = Query::plain("anc", vec![Term::sym("john"), Term::var("Y")]);
        assert!(ancestor_program().validate_with_query(&q).is_ok());
        let bad_q = Query::plain("nonexistent", vec![Term::var("Y")]);
        assert!(ancestor_program().validate_with_query(&bad_q).is_err());
    }

    #[test]
    fn separate_facts() {
        let mut p = ancestor_program();
        p.push(Rule::fact(Atom::plain(
            "par",
            vec![Term::sym("a"), Term::sym("b")],
        )));
        let (rules_only, facts) = p.separate_facts();
        assert_eq!(rules_only.len(), 2);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].pred, PredName::plain("par"));
    }

    #[test]
    fn datalog_detection() {
        assert!(ancestor_program().is_datalog());
        let mut with_fn = ancestor_program();
        with_fn.push(Rule::new(
            Atom::plain("wrap", vec![Term::app("f", vec![Term::var("X")])]),
            vec![Atom::plain("par", vec![Term::var("X"), Term::var("X")])],
        ));
        assert!(!with_fn.is_datalog());
    }

    #[test]
    fn rules_for_returns_indices() {
        let p = ancestor_program();
        let rules = p.rules_for(&PredName::plain("anc"));
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].0, 0);
        assert_eq!(rules[1].0, 1);
    }

    #[test]
    fn display_round_trip_shape() {
        let p = ancestor_program();
        let text = p.to_string();
        assert!(text.contains("anc(X, Y) :- par(X, Y)."));
        assert!(text.contains("anc(X, Y) :- par(X, Z), anc(Z, Y)."));
    }
}
