//! Error types for the language substrate.

use std::fmt;

/// Errors raised while constructing, parsing or validating programs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DatalogError {
    /// A rule violates condition (WF): a head variable does not appear in the
    /// body.
    NotWellFormed {
        /// The offending rule, pretty-printed.
        rule: String,
        /// The head variable that does not occur in the body.
        variable: String,
    },
    /// A rule violates condition (C): a body atom is not connected to the
    /// head through shared variables.
    NotConnected {
        /// The offending rule, pretty-printed.
        rule: String,
        /// The disconnected body atom.
        atom: String,
    },
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate name.
        predicate: String,
        /// One observed arity.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
    /// A base (database) predicate appears as the head of a rule.
    BasePredicateInHead {
        /// The offending rule, pretty-printed.
        rule: String,
    },
    /// A parse error with a position and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// The program does not define or use the query predicate.
    UnknownQueryPredicate {
        /// The query predicate name.
        predicate: String,
    },
    /// A negated atom (or aggregate) uses a variable that no positive body
    /// atom binds — under complementation it would range over the whole
    /// domain.
    UnsafeNegation {
        /// The offending rule, pretty-printed.
        rule: String,
        /// The unbound variable.
        variable: String,
        /// The negated (or aggregate-head) predicate it occurs in.
        predicate: String,
    },
    /// An aggregate rule violates a structural restriction (one aggregate
    /// per head, a single defining rule per aggregate head, no aggregate
    /// over a non-integer fold for `sum`/`min`/`max`).
    MalformedAggregate {
        /// The offending rule (or clause), pretty-printed.
        rule: String,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::NotWellFormed { rule, variable } => write!(
                f,
                "rule is not well-formed (head variable {variable} does not occur in the body): {rule}"
            ),
            DatalogError::NotConnected { rule, atom } => write!(
                f,
                "rule body is not connected (atom {atom} shares no variable chain with the head): {rule}"
            ),
            DatalogError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate {predicate} used with inconsistent arities {expected} and {found}"
            ),
            DatalogError::BasePredicateInHead { rule } => {
                write!(f, "base predicate appears as a rule head: {rule}")
            }
            DatalogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            DatalogError::UnknownQueryPredicate { predicate } => {
                write!(f, "query predicate {predicate} is not defined by the program")
            }
            DatalogError::UnsafeNegation {
                rule,
                variable,
                predicate,
            } => write!(
                f,
                "unsafe negation: variable {variable} of negated/aggregated \
                 predicate {predicate} is not bound by any positive body atom: {rule}"
            ),
            DatalogError::MalformedAggregate { rule, message } => {
                write!(f, "malformed aggregate ({message}): {rule}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_reasonably() {
        let e = DatalogError::Parse {
            line: 3,
            column: 7,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("3:7"));
        let e = DatalogError::ArityMismatch {
            predicate: "par".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("par"));
    }
}
