//! Atoms (predicate occurrences) and ground facts.

use crate::adornment::{Adornment, Binding};
use crate::pred::PredName;
use crate::term::{Bindings, Term, Value, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A predicate occurrence: a predicate name applied to a list of terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate.
    pub pred: PredName,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: PredName, terms: Vec<Term>) -> Atom {
        Atom { pred, terms }
    }

    /// Construct an atom over a plain predicate name.
    pub fn plain(name: &str, terms: Vec<Term>) -> Atom {
        Atom::new(PredName::plain(name), terms)
    }

    /// The number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for t in &self.terms {
            t.collect_vars(&mut out);
        }
        out
    }

    /// The variables of the atom as a set.
    pub fn var_set(&self) -> BTreeSet<Variable> {
        self.vars().into_iter().collect()
    }

    /// True iff the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_ground)
    }

    /// Convert a ground atom into a fact.
    pub fn to_fact(&self) -> Option<Fact> {
        let values: Option<Vec<Value>> = self.terms.iter().map(Term::to_value).collect();
        Some(Fact {
            pred: self.pred.clone(),
            values: values?,
        })
    }

    /// Evaluate the atom to a fact under a binding environment; `None` if any
    /// argument is not ground under the bindings.
    pub fn eval(&self, bindings: &Bindings) -> Option<Fact> {
        let values: Option<Vec<Value>> = self.terms.iter().map(|t| t.eval(bindings)).collect();
        Some(Fact {
            pred: self.pred.clone(),
            values: values?,
        })
    }

    /// Apply a binding environment to the argument terms.
    pub fn apply(&self, bindings: &Bindings) -> Atom {
        Atom {
            pred: self.pred.clone(),
            terms: self.terms.iter().map(|t| t.apply(bindings)).collect(),
        }
    }

    /// Match the atom's arguments against a row of ground values, extending
    /// `bindings`.  The caller must ensure the row has the atom's arity.
    pub fn match_row(&self, row: &[Value], bindings: &mut Bindings) -> bool {
        debug_assert_eq!(row.len(), self.arity());
        self.terms
            .iter()
            .zip(row.iter())
            .all(|(t, v)| t.match_value(v, bindings))
    }

    /// The adornment induced on this atom by a set of bound variables: an
    /// argument is bound iff *all* of its variables are in `bound_vars`
    /// (ground arguments are always bound).  This is the rule of Section 3.
    pub fn adornment_under(&self, bound_vars: &BTreeSet<Variable>) -> Adornment {
        Adornment::new(
            self.terms
                .iter()
                .map(|t| {
                    if t.vars().iter().all(|v| bound_vars.contains(v)) {
                        Binding::Bound
                    } else {
                        Binding::Free
                    }
                })
                .collect(),
        )
    }

    /// The argument terms at the positions bound by `adornment`.
    pub fn bound_terms(&self, adornment: &Adornment) -> Vec<Term> {
        adornment
            .bound_positions()
            .into_iter()
            .map(|i| self.terms[i].clone())
            .collect()
    }

    /// The argument terms at the positions free in `adornment`.
    pub fn free_terms(&self, adornment: &Adornment) -> Vec<Term> {
        adornment
            .free_positions()
            .into_iter()
            .map(|i| self.terms[i].clone())
            .collect()
    }

    /// Replace the predicate name, keeping the arguments.
    pub fn with_pred(&self, pred: PredName) -> Atom {
        Atom {
            pred,
            terms: self.terms.clone(),
        }
    }

    /// Rename every variable using `f`.
    pub fn rename_vars(&self, f: &mut impl FnMut(Variable) -> Variable) -> Atom {
        Atom {
            pred: self.pred.clone(),
            terms: self.terms.iter().map(|t| t.rename_vars(f)).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A ground fact: a predicate name applied to ground values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// The predicate.
    pub pred: PredName,
    /// The ground argument values.
    pub values: Vec<Value>,
}

impl Fact {
    /// Construct a fact.
    pub fn new(pred: PredName, values: Vec<Value>) -> Fact {
        Fact { pred, values }
    }

    /// Construct a fact over a plain predicate name.
    pub fn plain(name: &str, values: Vec<Value>) -> Fact {
        Fact::new(PredName::plain(name), values)
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// View the fact as an atom with ground terms.
    pub fn to_atom(&self) -> Atom {
        Atom {
            pred: self.pred.clone(),
            terms: self.values.iter().map(Value::to_term).collect(),
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_atom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str, terms: Vec<Term>) -> Atom {
        Atom::plain(s, terms)
    }

    #[test]
    fn vars_and_groundness() {
        let a = atom("p", vec![Term::var("X"), Term::sym("c"), Term::var("Y")]);
        assert_eq!(a.vars(), vec![Variable::new("X"), Variable::new("Y")]);
        assert!(!a.is_ground());
        let g = atom("p", vec![Term::sym("a"), Term::int(1)]);
        assert!(g.is_ground());
        assert_eq!(
            g.to_fact().unwrap(),
            Fact::plain("p", vec![Value::sym("a"), Value::int(1)])
        );
    }

    #[test]
    fn eval_under_bindings() {
        let a = atom("p", vec![Term::var("X"), Term::var("Y")]);
        let mut b = Bindings::new();
        b.insert(Variable::new("X"), Value::sym("a"));
        assert!(a.eval(&b).is_none());
        b.insert(Variable::new("Y"), Value::sym("b"));
        let fact = a.eval(&b).unwrap();
        assert_eq!(fact.values, vec![Value::sym("a"), Value::sym("b")]);
    }

    #[test]
    fn match_row_consistency() {
        let a = atom("p", vec![Term::var("X"), Term::var("X")]);
        let mut b = Bindings::new();
        assert!(a.match_row(&[Value::sym("a"), Value::sym("a")], &mut b));
        let mut b2 = Bindings::new();
        assert!(!a.match_row(&[Value::sym("a"), Value::sym("b")], &mut b2));
    }

    #[test]
    fn adornment_under_bound_vars() {
        // p(X, f(X, Z), W) with X bound: first arg bound, second free (Z
        // unbound), third free.  This is the example from Section 3.
        let a = atom(
            "p",
            vec![
                Term::var("X"),
                Term::app("f", vec![Term::var("X"), Term::var("Z")]),
                Term::var("W"),
            ],
        );
        let bound: BTreeSet<Variable> = [Variable::new("X")].into_iter().collect();
        assert_eq!(a.adornment_under(&bound).to_string(), "bff");
        // Ground arguments count as bound.
        let g = atom("q", vec![Term::sym("john"), Term::var("Y")]);
        assert_eq!(g.adornment_under(&BTreeSet::new()).to_string(), "bf");
    }

    #[test]
    fn bound_and_free_terms() {
        let a = atom("p", vec![Term::var("X"), Term::var("Y"), Term::var("Z")]);
        let ad: Adornment = "bfb".parse().unwrap();
        assert_eq!(a.bound_terms(&ad), vec![Term::var("X"), Term::var("Z")]);
        assert_eq!(a.free_terms(&ad), vec![Term::var("Y")]);
    }

    #[test]
    fn display() {
        let a = atom("anc", vec![Term::sym("john"), Term::var("Y")]);
        assert_eq!(a.to_string(), "anc(john, Y)");
        let f = Fact::plain("par", vec![Value::sym("a"), Value::sym("b")]);
        assert_eq!(f.to_string(), "par(a, b)");
    }
}
