//! Resource limits for bottom-up evaluation.
//!
//! The paper's safety results (Section 10) identify programs for which the
//! counting rewrites do not terminate (cyclic data, cyclic argument graphs).
//! Limits turn those divergences into observable errors instead of hangs.

/// Resource limits applied during evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Limits {
    /// Maximum number of fixpoint iterations.
    pub max_iterations: usize,
    /// Maximum total number of derived facts.
    pub max_facts: usize,
    /// Maximum nesting depth of any derived value (function-symbol growth).
    pub max_term_depth: usize,
    /// Maximum wall-clock duration of the whole evaluation, checked once per
    /// fixpoint iteration (`None` = unlimited).  Iteration and fact limits
    /// bound divergence only loosely when each iteration derives a trickle
    /// of new facts over an ever-growing database; a time budget bounds it
    /// hard, which benchmark harnesses rely on.
    pub max_wall: Option<std::time::Duration>,
    /// Worker threads for the evaluation fan-out (`0` = resolve from the
    /// `MAGIC_THREADS` environment variable, defaulting to 1).  Thread
    /// count is a pure wall-clock knob: the scheduler's deterministic
    /// shard merge keeps answers, `rule_firings` and summed `join_probes`
    /// bit-identical across any value, so this rides on `Limits` purely
    /// for plumbing convenience (it reaches the planner, the incremental
    /// layer and the benches through the existing builder).
    pub threads: usize,
}

impl Limits {
    /// Generous defaults suitable for the workloads in this repository.
    pub const DEFAULT: Limits = Limits {
        max_iterations: 1_000_000,
        max_facts: 50_000_000,
        max_term_depth: 100_000,
        max_wall: None,
        threads: 0,
    };

    /// Tight limits for tests that expect divergence to be detected quickly.
    ///
    /// The iteration limit is deliberately below the ~60 derivation levels at
    /// which the counting rewrites' rule-sequence index saturates `i64`, so a
    /// divergent counting run is reported as an iteration-limit error rather
    /// than silently plateauing.
    pub fn strict() -> Limits {
        Limits {
            max_iterations: 56,
            max_facts: 200_000,
            max_term_depth: 512,
            max_wall: None,
            threads: 0,
        }
    }

    /// Override the iteration limit.
    pub fn with_max_iterations(mut self, limit: usize) -> Limits {
        self.max_iterations = limit;
        self
    }

    /// Override the fact limit.
    pub fn with_max_facts(mut self, limit: usize) -> Limits {
        self.max_facts = limit;
        self
    }

    /// Override the term-depth limit.
    pub fn with_max_term_depth(mut self, limit: usize) -> Limits {
        self.max_term_depth = limit;
        self
    }

    /// Set a wall-clock budget for the evaluation.
    pub fn with_max_wall(mut self, limit: std::time::Duration) -> Limits {
        self.max_wall = Some(limit);
        self
    }

    /// Set the evaluation worker-thread count (`0` = resolve from the
    /// environment; see [`Limits::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Limits {
        self.threads = threads;
        self
    }

    /// The effective thread count: an explicit setting wins; `0` consults
    /// `MAGIC_THREADS` (where in turn `0` means "all available cores"),
    /// and absent both, evaluation stays single-threaded.
    pub fn resolved_threads(&self) -> usize {
        if self.threads >= 1 {
            return self.threads;
        }
        match std::env::var("MAGIC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(0) => std::thread::available_parallelism().map_or(1, usize::from),
            Some(n) => n,
            None => 1,
        }
    }
}

impl Default for Limits {
    fn default() -> Self {
        Limits::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let l = Limits::default()
            .with_max_iterations(10)
            .with_max_facts(20)
            .with_max_term_depth(30);
        assert_eq!(l.max_iterations, 10);
        assert_eq!(l.max_facts, 20);
        assert_eq!(l.max_term_depth, 30);
        assert_eq!(l.max_wall, None);
        let timed = l.with_max_wall(std::time::Duration::from_secs(5));
        assert_eq!(timed.max_wall, Some(std::time::Duration::from_secs(5)));
        assert!(Limits::strict().max_iterations < Limits::DEFAULT.max_iterations);
    }

    #[test]
    fn explicit_thread_counts_win_over_the_environment() {
        assert_eq!(Limits::default().with_threads(4).resolved_threads(), 4);
        assert_eq!(Limits::default().with_threads(1).resolved_threads(), 1);
    }
}
