//! # magic-engine
//!
//! Bottom-up fixpoint evaluation of Horn-clause programs over stored
//! relations: the deductive-database substrate the paper's rewrites are
//! evaluated on.
//!
//! Two iteration schemes are provided — naive and semi-naive — together with
//! resource limits (so the divergent cases of Section 10 are observable as
//! errors) and detailed metrics (facts, firings, duplicates, join probes)
//! used by the sip-optimality and performance experiments.
//!
//! ```
//! use magic_datalog::{parse_program, parse_query};
//! use magic_engine::{answers::query_answers, Evaluator};
//! use magic_storage::Database;
//!
//! let program = parse_program(
//!     "anc(X, Y) :- par(X, Y).
//!      anc(X, Y) :- par(X, Z), anc(Z, Y).",
//! )
//! .unwrap();
//! let mut db = Database::new();
//! db.insert_pair("par", "john", "mary");
//! db.insert_pair("par", "mary", "ann");
//!
//! let result = Evaluator::new(program).run(&db).unwrap();
//! let q = parse_query("anc(john, Y)").unwrap();
//! assert_eq!(query_answers(&result.database, &q).len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod answers;
pub mod error;
pub mod evaluator;
pub mod join;
pub mod limits;
pub mod metrics;
pub mod plan;
mod pool;

pub use error::EvalError;
pub use evaluator::{
    EvalResult, Evaluator, FiringObserver, FixpointRunner, IterationScheme, WindowDiscipline,
};
pub use join::{
    count_derivations, evaluate_rule, evaluate_rule_visit, evaluate_rule_windows, DeltaWindow,
    JoinCounters,
};
pub use limits::Limits;
pub use metrics::EvalStats;
pub use plan::{AtomPlan, RulePlan};
