//! Evaluation errors.

use std::fmt;

/// Errors raised during bottom-up evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A rule produced a head that was not ground once its body was
    /// satisfied, i.e. the rule is not range-restricted.  (The unrewritten
    /// `reverse`/`append` exit rules of the paper's Appendix have this
    /// property; their magic-rewritten forms do not.)
    NotRangeRestricted {
        /// The offending rule, pretty-printed.
        rule: String,
    },
    /// The iteration limit was reached before the fixpoint.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The derived-fact limit was reached before the fixpoint.
    FactLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock budget was exhausted before the fixpoint.
    TimeLimit {
        /// The configured budget.
        limit: std::time::Duration,
    },
    /// A derived value exceeded the term-depth limit (runaway function-symbol
    /// growth, e.g. counting on cyclic data).
    TermDepthLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A body atom refers to a relation with a different arity.
    ArityMismatch {
        /// The predicate involved.
        predicate: String,
        /// Arity used in the rule.
        rule_arity: usize,
        /// Arity of the stored relation.
        stored_arity: usize,
    },
    /// A negated atom reached evaluation with an unbound variable (the
    /// rule escaped the front-end safety check).
    UnsafeNegation {
        /// The offending rule, pretty-printed.
        rule: String,
    },
    /// The program's negation/aggregation closes a dependency cycle, so no
    /// stratified evaluation order exists.  Carries the offending predicate
    /// and the cycle it sits on.
    Unstratifiable {
        /// The negated/aggregated predicate closing the cycle.
        predicate: String,
        /// The members of the offending SCC, pretty-printed in order.
        cycle: Vec<String>,
    },
    /// A `sum`/`min`/`max` aggregate was applied to a non-integer value.
    AggregateType {
        /// The rule whose aggregate failed.
        rule: String,
        /// The offending (non-integer) value, pretty-printed.
        value: String,
    },
    /// A stratified (guarded) program was driven through an entry point
    /// that cannot respect stratum order, e.g. an incremental resume.
    GuardedUnsupported {
        /// What was attempted.
        operation: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotRangeRestricted { rule } => {
                write!(f, "rule is not range-restricted (head not ground after body evaluation): {rule}")
            }
            EvalError::IterationLimit { limit } => {
                write!(f, "evaluation exceeded the iteration limit of {limit}")
            }
            EvalError::FactLimit { limit } => {
                write!(f, "evaluation exceeded the derived-fact limit of {limit}")
            }
            EvalError::TimeLimit { limit } => {
                write!(f, "evaluation exceeded the wall-clock budget of {limit:?}")
            }
            EvalError::TermDepthLimit { limit } => {
                write!(f, "evaluation produced a term deeper than the limit of {limit}")
            }
            EvalError::ArityMismatch {
                predicate,
                rule_arity,
                stored_arity,
            } => write!(
                f,
                "predicate {predicate} used with arity {rule_arity} but stored with arity {stored_arity}"
            ),
            EvalError::UnsafeNegation { rule } => {
                write!(f, "negated atom not fully bound by the positive body: {rule}")
            }
            EvalError::Unstratifiable { predicate, cycle } => write!(
                f,
                "program is not stratifiable: {predicate} is negated/aggregated inside the cycle [{}]",
                cycle.join(" -> ")
            ),
            EvalError::AggregateType { rule, value } => write!(
                f,
                "aggregate applied to non-integer value {value}: {rule}"
            ),
            EvalError::GuardedUnsupported { operation } => write!(
                f,
                "stratified program (negation/aggregates) does not support {operation}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EvalError::IterationLimit { limit: 100 };
        assert!(e.to_string().contains("100"));
        let e = EvalError::NotRangeRestricted {
            rule: "p(X) :- q.".into(),
        };
        assert!(e.to_string().contains("p(X)"));
    }
}
