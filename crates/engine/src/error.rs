//! Evaluation errors.

use std::fmt;

/// Errors raised during bottom-up evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A rule produced a head that was not ground once its body was
    /// satisfied, i.e. the rule is not range-restricted.  (The unrewritten
    /// `reverse`/`append` exit rules of the paper's Appendix have this
    /// property; their magic-rewritten forms do not.)
    NotRangeRestricted {
        /// The offending rule, pretty-printed.
        rule: String,
    },
    /// The iteration limit was reached before the fixpoint.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The derived-fact limit was reached before the fixpoint.
    FactLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock budget was exhausted before the fixpoint.
    TimeLimit {
        /// The configured budget.
        limit: std::time::Duration,
    },
    /// A derived value exceeded the term-depth limit (runaway function-symbol
    /// growth, e.g. counting on cyclic data).
    TermDepthLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A body atom refers to a relation with a different arity.
    ArityMismatch {
        /// The predicate involved.
        predicate: String,
        /// Arity used in the rule.
        rule_arity: usize,
        /// Arity of the stored relation.
        stored_arity: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotRangeRestricted { rule } => {
                write!(f, "rule is not range-restricted (head not ground after body evaluation): {rule}")
            }
            EvalError::IterationLimit { limit } => {
                write!(f, "evaluation exceeded the iteration limit of {limit}")
            }
            EvalError::FactLimit { limit } => {
                write!(f, "evaluation exceeded the derived-fact limit of {limit}")
            }
            EvalError::TimeLimit { limit } => {
                write!(f, "evaluation exceeded the wall-clock budget of {limit:?}")
            }
            EvalError::TermDepthLimit { limit } => {
                write!(f, "evaluation produced a term deeper than the limit of {limit}")
            }
            EvalError::ArityMismatch {
                predicate,
                rule_arity,
                stored_arity,
            } => write!(
                f,
                "predicate {predicate} used with arity {rule_arity} but stored with arity {stored_arity}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EvalError::IterationLimit { limit: 100 };
        assert!(e.to_string().contains("100"));
        let e = EvalError::NotRangeRestricted {
            rule: "p(X) :- q.".into(),
        };
        assert!(e.to_string().contains("p(X)"));
    }
}
