//! The fixpoint evaluator: naive and semi-naive bottom-up evaluation.

use crate::error::EvalError;
use crate::join::{evaluate_rule, DeltaWindow};
use crate::limits::Limits;
use crate::metrics::EvalStats;
use crate::plan::RulePlan;
use magic_datalog::{PredName, Program};
use magic_storage::{Database, Row};
use std::collections::BTreeSet;

/// Which fixpoint iteration scheme to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IterationScheme {
    /// Naive evaluation: every iteration re-evaluates every rule against the
    /// full relations.  This is the textbook least-fixpoint computation the
    /// paper describes in Section 1.1.
    Naive,
    /// Semi-naive evaluation: after the first iteration, a rule is only
    /// re-evaluated with at least one derived body occurrence restricted to
    /// the facts that were new in the previous iteration.
    #[default]
    SemiNaive,
}

/// The result of an evaluation: the final database (base facts plus all
/// derived facts) and the collected metrics.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Base and derived facts at the fixpoint.
    pub database: Database,
    /// Metrics collected during evaluation.
    pub stats: EvalStats,
}

/// A bottom-up evaluator for a fixed program.
///
/// ```
/// use magic_datalog::{parse_program, parse_query};
/// use magic_engine::Evaluator;
/// use magic_storage::Database;
///
/// let program = parse_program(
///     "anc(X, Y) :- par(X, Y).
///      anc(X, Y) :- par(X, Z), anc(Z, Y).",
/// )
/// .unwrap();
/// let mut db = Database::new();
/// db.insert_pair("par", "a", "b");
/// db.insert_pair("par", "b", "c");
///
/// let result = Evaluator::new(program).run(&db).unwrap();
/// let query = parse_query("anc(a, Y)").unwrap();
/// let answers = magic_engine::answers::query_answers(&result.database, &query);
/// assert_eq!(answers.len(), 2); // b and c
/// ```
#[derive(Clone, Debug)]
pub struct Evaluator {
    program: Program,
    limits: Limits,
    scheme: IterationScheme,
}

impl Evaluator {
    /// Create an evaluator with default limits and semi-naive iteration.
    pub fn new(program: Program) -> Evaluator {
        Evaluator {
            program,
            limits: Limits::default(),
            scheme: IterationScheme::SemiNaive,
        }
    }

    /// Override the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Evaluator {
        self.limits = limits;
        self
    }

    /// Override the iteration scheme.
    pub fn with_scheme(mut self, scheme: IterationScheme) -> Evaluator {
        self.scheme = scheme;
        self
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Evaluate to the least fixpoint starting from `edb`.
    pub fn run(&self, edb: &Database) -> Result<EvalResult, EvalError> {
        let derived: BTreeSet<PredName> = self.program.derived_preds();
        let plans: Vec<RulePlan> = self
            .program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| RulePlan::compile(r, i, &derived))
            .collect();

        // Dense numbering of the derived predicates: the per-iteration delta
        // marks are plain vectors indexed by it, so the fixpoint loop clones
        // no `PredName`s.  The list is sorted (it comes from a `BTreeSet`),
        // which lets the per-plan resolution below binary-search it.
        let derived_list: Vec<PredName> = derived.iter().cloned().collect();
        // Per plan: (body occurrence, index into `derived_list`).
        let delta_occurrences: Vec<Vec<(usize, usize)>> = plans
            .iter()
            .map(|plan| {
                plan.derived_occurrences
                    .iter()
                    .map(|&occ| {
                        let idx = derived_list
                            .binary_search(&plan.atoms[occ].pred)
                            .expect("derived occurrence predicate is derived");
                        (occ, idx)
                    })
                    .collect()
            })
            .collect();

        let mut db = edb.clone();
        // Create relations for every predicate mentioned by the program so
        // that missing base relations behave as empty and derived relations
        // exist from the start.
        if let Ok(arities) = self.program.predicate_arities() {
            for (pred, arity) in &arities {
                db.relation_mut(pred, *arity);
            }
        }
        // Ensure indexes for every access path the plans will use.  A
        // relation whose stored arity disagrees with the atom is left
        // unindexed here (indexing key positions beyond its arity would be
        // out of bounds); `evaluate_rule` reports the mismatch gracefully.
        for plan in &plans {
            for atom in &plan.atoms {
                if !atom.key_positions.is_empty() {
                    let relation = db.relation_mut(&atom.pred, atom.arity);
                    if relation.arity() == atom.arity {
                        relation.ensure_index(&atom.key_positions);
                    }
                }
            }
        }

        let base_facts = db.total_facts();
        let mut stats = EvalStats::default();
        let started = std::time::Instant::now();
        // Row-id marks delimiting the delta of the previous iteration,
        // indexed like `derived_list`.
        let mut prev_marks: Vec<usize> = derived_list.iter().map(|p| db.count(p)).collect();

        loop {
            stats.iterations += 1;
            if stats.iterations > self.limits.max_iterations {
                return Err(EvalError::IterationLimit {
                    limit: self.limits.max_iterations,
                });
            }
            if let Some(max_wall) = self.limits.max_wall {
                if started.elapsed() > max_wall {
                    return Err(EvalError::TimeLimit { limit: max_wall });
                }
            }
            // Snapshot the current extents: rows in [prev_mark, cur_mark)
            // form the delta of the previous iteration.
            let cur_marks: Vec<usize> = derived_list.iter().map(|p| db.count(p)).collect();

            let first_iteration = stats.iterations == 1;
            let mut produced: Vec<(usize, Vec<Row>)> = Vec::new();

            for (plan_idx, plan) in plans.iter().enumerate() {
                let mut out = Vec::new();
                let use_delta = self.scheme == IterationScheme::SemiNaive && !first_iteration;
                if use_delta {
                    if plan.derived_occurrences.is_empty() {
                        continue; // already fully evaluated in iteration 1
                    }
                    for &(occ, derived_idx) in &delta_occurrences[plan_idx] {
                        let from = prev_marks[derived_idx];
                        let to = cur_marks[derived_idx];
                        if from >= to {
                            continue; // no new facts for this occurrence
                        }
                        let window = DeltaWindow {
                            occurrence: occ,
                            from,
                            to,
                        };
                        let counters =
                            evaluate_rule(plan, &db, Some(window), &self.limits, &mut out)?;
                        stats.join_probes += counters.probes;
                    }
                } else {
                    let counters = evaluate_rule(plan, &db, None, &self.limits, &mut out)?;
                    stats.join_probes += counters.probes;
                }
                if !out.is_empty() {
                    produced.push((plan_idx, out));
                }
            }

            let mut new_facts = 0usize;
            for (plan_idx, rows) in produced {
                let plan = &plans[plan_idx];
                // All rows of one plan belong to its head predicate: resolve
                // the relation once and insert the rows directly, instead of
                // cloning a `PredName` per produced fact.
                let arity = plan.head_terms.len();
                let relation = db.relation_mut(&plan.head_pred, arity);
                for row in rows {
                    let is_new = relation.insert(row);
                    stats.record_firing(plan.rule_idx, &plan.head_pred, is_new);
                    if is_new {
                        new_facts += 1;
                    }
                }
            }
            if db.total_facts() - base_facts > self.limits.max_facts {
                return Err(EvalError::FactLimit {
                    limit: self.limits.max_facts,
                });
            }
            if new_facts == 0 {
                break;
            }
            prev_marks = cur_marks;
        }

        Ok(EvalResult {
            database: db,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::query_answers;
    use magic_datalog::{parse_program, parse_query, Value};

    fn chain_db(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db
    }

    fn ancestor() -> Program {
        parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn ancestor_chain_full_closure() {
        let db = chain_db(10);
        let result = Evaluator::new(ancestor()).run(&db).unwrap();
        // Full transitive closure of an 11-node chain: 10+9+...+1 = 55 pairs.
        assert_eq!(result.database.count(&PredName::plain("anc")), 55);
        let q = parse_query("anc(n0, Y)").unwrap();
        assert_eq!(query_answers(&result.database, &q).len(), 10);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let db = chain_db(12);
        let semi = Evaluator::new(ancestor()).run(&db).unwrap();
        let naive = Evaluator::new(ancestor())
            .with_scheme(IterationScheme::Naive)
            .run(&db)
            .unwrap();
        assert_eq!(
            semi.database.count(&PredName::plain("anc")),
            naive.database.count(&PredName::plain("anc"))
        );
        // Semi-naive performs strictly fewer duplicate derivations on a chain.
        assert!(semi.stats.duplicate_derivations < naive.stats.duplicate_derivations);
    }

    #[test]
    fn nonlinear_ancestor_agrees_with_linear() {
        let db = chain_db(8);
        let nonlinear = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let a = Evaluator::new(ancestor()).run(&db).unwrap();
        let b = Evaluator::new(nonlinear).run(&db).unwrap();
        assert_eq!(
            a.database.count(&PredName::plain("anc")),
            b.database.count(&PredName::plain("anc"))
        );
    }

    #[test]
    fn fact_rules_fire_once() {
        let program = parse_program("p(a). q(X) :- p(X).").unwrap();
        // parse_program strips ground facts... so embed via a rule instead.
        let program = if program.len() < 2 {
            parse_program("q(X) :- p(X).").unwrap()
        } else {
            program
        };
        let mut db = Database::new();
        db.insert(PredName::plain("p"), vec![Value::sym("a")]);
        let result = Evaluator::new(program).run(&db).unwrap();
        assert_eq!(result.database.count(&PredName::plain("q")), 1);
    }

    #[test]
    fn edb_arity_mismatch_is_an_error_not_a_panic() {
        // The EDB stores q with arity 1 while the program uses arity 3;
        // index ensuring must not index out of bounds, and evaluation must
        // surface the graceful ArityMismatch error.
        let program = parse_program("p(X) :- b(X), q(X, X, Y).").unwrap();
        let mut db = Database::new();
        db.insert(PredName::plain("b"), vec![Value::sym("a")]);
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        let err = Evaluator::new(program).run(&db).unwrap_err();
        assert!(matches!(err, crate::EvalError::ArityMismatch { .. }));
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let db = chain_db(50);
        let err = Evaluator::new(ancestor())
            .with_limits(Limits::default().with_max_iterations(3))
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 3 }));
    }

    #[test]
    fn fact_limit_is_enforced() {
        let db = chain_db(60);
        let err = Evaluator::new(ancestor())
            .with_limits(Limits::default().with_max_facts(10))
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, EvalError::FactLimit { .. }));
    }

    #[test]
    fn same_generation_nonlinear() {
        // The paper's running example (Example 1).
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        // Two-level structure: a,b go up to m,n; flat connects m-n and n-m;
        // m,n go down to c,d.
        db.insert_pair("up", "a", "m");
        db.insert_pair("up", "b", "n");
        db.insert_pair("flat", "m", "n");
        db.insert_pair("flat", "n", "m");
        db.insert_pair("flat", "a", "b");
        db.insert_pair("down", "m", "c");
        db.insert_pair("down", "n", "d");
        let result = Evaluator::new(program).run(&db).unwrap();
        let q = parse_query("sg(a, Y)").unwrap();
        let answers = query_answers(&result.database, &q);
        // sg(a, b) via flat; sg(a, d) via up/sg/flat/sg/down:
        //   up(a,m), sg(m,n) [flat], flat(n,m), sg(m,n) [flat], down(n,d).
        let rendered: BTreeSet<String> = answers
            .iter()
            .map(|row| {
                row.iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert!(rendered.contains("b"));
        assert!(rendered.contains("d"));
    }

    #[test]
    fn list_append_with_magic_style_guard() {
        // append is not range-restricted without a guard; provide the guard
        // relation directly to exercise function-symbol evaluation.
        let program = parse_program(
            "append(V, X, Y) :- guard(V, X), build(V, X, Y).
             build(V, nil, cons(V, nil)) :- guard(V, nil).
             build(V, cons(W, X), cons(W, Y)) :- guard(V, cons(W, X)), build(V, X, Y).
             guard(V, X) :- guard(V, cons(W, X)).",
        )
        .unwrap();
        let mut db = Database::new();
        let list = Value::list(vec![Value::sym("a"), Value::sym("b")]);
        db.insert(
            PredName::plain("guard"),
            vec![Value::sym("z"), list.clone()],
        );
        let result = Evaluator::new(program).run(&db).unwrap();
        let append = result
            .database
            .relation(&PredName::plain("append"))
            .unwrap();
        // One append fact per suffix of the guarded list: [a,b], [b], [].
        assert_eq!(append.len(), 3);
        let full = append
            .iter()
            .find(|row| row[1] == list)
            .expect("append fact for the full list");
        assert_eq!(
            full[2].as_list().unwrap(),
            vec![Value::sym("a"), Value::sym("b"), Value::sym("z")]
        );
    }

    use std::collections::BTreeSet;
}
