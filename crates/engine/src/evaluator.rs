//! The fixpoint evaluator: naive and semi-naive bottom-up evaluation,
//! driven by a stratified schedule with work-sharded parallel fan-out.
//!
//! The fixpoint loop itself lives in [`FixpointRunner`], a compiled, reusable
//! form of a program (slot-compiled [`RulePlan`]s plus the bookkeeping of
//! which body occurrences read tracked deltas).  [`Evaluator`] is the
//! classic run-to-fixpoint front end over it; the incremental-maintenance
//! layer (`magic-incr`) keeps a runner alive across calls and *re-enters*
//! the loop with externally seeded deltas via [`FixpointRunner::resume`].
//!
//! # The stratified scheduler
//!
//! Compiling a runner also builds the program's
//! [`magic_datalog::Schedule`]: the predicate dependency graph
//! condensed into topologically ordered strata (one per SCC).  Each
//! iteration walks the strata in dependency order and turns every rule
//! evaluation the classic loop would perform into an `EvalTask` — a
//! `(plan, delta windows, shard)` triple.  Two structural wins fall out:
//!
//! * **Stratum retirement.**  Once every stratum below `s` has converged
//!   and `s` itself sees no deltas, nothing can ever feed `s` again (all
//!   rules deriving a predicate live in that predicate's stratum), so `s`
//!   is retired and the loop never revisits its rules — lower strata run
//!   to fixpoint and drop out while upper strata finish, and a resumed
//!   view seeds its deltas into the lowest dirty stratum instead of
//!   re-scanning the full rule list every iteration.
//! * **Work-sharded fan-out.**  Tasks of an iteration only *read* the
//!   database (through the share-safe borrow views of `magic-storage`),
//!   so they fan out over a persistent worker pool; large tasks are
//!   further split into shards along the join's outermost (occurrence-0)
//!   enumeration range.  Writes happen afterwards, in the insert phase.
//! * **Per-predicate parallel merge.**  The insert phase groups the
//!   iteration's merged shard outputs by head predicate and fans the
//!   dedup + id-assignment + index-maintenance work for *disjoint*
//!   relations back out over the same pool (`&mut` borrows handed out by
//!   [`magic_storage::Database::relations_mut_disjoint`], so the fan-out
//!   stays in safe aliasing territory).  Runs that install a
//!   [`FiringObserver`] (the incremental layer's sequential support
//!   counting) keep the single-threaded insert path.
//!
//! # Determinism contract
//!
//! Thread count is invisible in every result and every counter: shard
//! outputs are merged in schedule order (stratum, then rule index, then
//! occurrence, then shard index), which reproduces the single-threaded
//! row sequence exactly — occurrence-0 sharding splits the *outermost*
//! loop of the join, so concatenating shard outputs in ascending range
//! order is literally the unsharded enumeration.  Insertion then runs
//! over that sequence in plan-then-task order *per relation*; relations
//! are pairwise disjoint, so fanning distinct head predicates out across
//! workers preserves every relation's row order, row ids and dedup
//! outcomes exactly.  Firing counters (`rule_firings`, `facts_derived`,
//! `duplicate_derivations`) are folded back in on one thread in plan
//! order — they are sums, so the totals are bit-identical to the
//! sequential path — and `join_probes` partition across shards, so their
//! sum is invariant too.  `tests/parallel_schedule.rs` and
//! `tests/parallel_merge.rs` hold this contract under randomized
//! programs; `MAGIC_THREADS` (see [`Limits::resolved_threads`]) selects
//! the thread count.

use crate::error::EvalError;
use crate::join::{evaluate_rule_windows, lead_enumeration_range, DeltaWindow, JoinCounters};
use crate::limits::Limits;
use crate::metrics::EvalStats;
use crate::plan::RulePlan;
use crate::pool::EvalPool;
use magic_datalog::{AggFunc, PredName, Program, Schedule, ValId};
use magic_storage::{Database, Relation};
use std::collections::{BTreeMap, BTreeSet};

/// Which fixpoint iteration scheme to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IterationScheme {
    /// Naive evaluation: every iteration re-evaluates every rule against the
    /// full relations.  This is the textbook least-fixpoint computation the
    /// paper describes in Section 1.1.
    Naive,
    /// Semi-naive evaluation: after the first iteration, a rule is only
    /// re-evaluated with at least one derived body occurrence restricted to
    /// the facts that were new in the previous iteration.
    #[default]
    SemiNaive,
}

/// How semi-naive delta windows are combined per rule evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WindowDiscipline {
    /// One window per tracked occurrence; every other occurrence ranges over
    /// the full relation.  A derivation whose body contains two facts that
    /// are new in the same iteration is enumerated once per such occurrence.
    /// This is the engine's historical behaviour and the cheapest complete
    /// discipline (fewest windows per call).
    #[default]
    Overlapping,
    /// The textbook disjoint discipline: when occurrence `j` reads the
    /// delta, every *earlier* tracked occurrence is restricted to the
    /// pre-delta rows.  Each derivation is enumerated exactly once across
    /// the whole run, which is what lets the incremental layer maintain
    /// exact per-row derivation counts.
    Disjoint,
}

/// Observer of individual rule firings, called once per produced (packed)
/// head row during the insertion phase of each iteration (`is_new` tells
/// whether the row was actually new).  The incremental layer uses this to
/// maintain per-row derivation-support counts; `plan_idx` indexes
/// [`FixpointRunner::plans`].
pub type FiringObserver<'a> = &'a mut dyn FnMut(usize, &[ValId], bool);

/// The result of an evaluation: the final database (base facts plus all
/// derived facts) and the collected metrics.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Base and derived facts at the fixpoint.
    pub database: Database,
    /// Metrics collected during evaluation.
    pub stats: EvalStats,
}

/// A compiled, re-enterable fixpoint machine for a fixed program.
///
/// Compiling a runner resolves each rule to its slot-compiled [`RulePlan`]
/// and records, per rule, the body occurrences of the *tracked* predicates —
/// the ones whose deltas drive semi-naive re-evaluation.  The classic
/// [`Evaluator`] tracks exactly the derived predicates; the incremental
/// layer tracks every body predicate so that a freshly inserted *base* fact
/// can seed the loop too.
///
/// The plans, the tracked numbering, and the prepared indexes are all
/// reusable across calls: build once, [`FixpointRunner::run`] to
/// materialize, then [`FixpointRunner::resume`] any number of times with
/// externally seeded deltas.
#[derive(Clone, Debug)]
pub struct FixpointRunner {
    plans: Vec<RulePlan>,
    /// Tracked predicates, sorted ascending (delta marks index into this).
    tracked: Vec<PredName>,
    /// Per plan: (body occurrence, index into `tracked`).
    tracked_occurrences: Vec<Vec<(usize, usize)>>,
    /// Per plan, parallel to `tracked_occurrences`: the *delta-driven*
    /// variant of the plan with that occurrence's atom moved to the front
    /// of the body and the remaining atoms greedily reordered along shared
    /// variables.  `resume` joins outward from the (tiny) delta instead
    /// of re-scanning the rule's leading atoms every iteration — without
    /// this, maintaining a view after a single-fact insert would cost a
    /// full leading-atom scan per fixpoint iteration, erasing the point of
    /// incrementality.  Empty when the runner was built run-only
    /// ([`FixpointRunner::for_program`]).
    delta_plans: Vec<Vec<DeltaVariant>>,
    /// Per plan: the head-bound variant (head variables treated as bound
    /// when access paths are chosen), used by the incremental layer's
    /// support oracle (`count_derivations`).  Empty on run-only runners.
    head_bound_plans: Vec<RulePlan>,
    /// Predicate arities of the program (used by `prepare`).
    arities: Vec<(PredName, usize)>,
    /// The stratified schedule (dependency-ordered SCC strata) the
    /// fixpoint loop walks; shared by every run/resume of this runner.
    schedule: Schedule,
    limits: Limits,
    scheme: IterationScheme,
    discipline: WindowDiscipline,
}

/// One unit of evaluation work within an iteration: a rule plan (or its
/// delta-driven variant), the delta windows to apply, and — when the task
/// was sharded — an extra occurrence-0 window carrying the shard's slice
/// of the outermost enumeration.  Tasks own their flat output shard;
/// buffers are recycled across iterations.
struct EvalTask {
    plan_idx: usize,
    /// `Some(nth)` selects `delta_plans[plan_idx][nth]` (seeded resume
    /// mode); `None` selects the main plan.
    variant: Option<usize>,
    windows: Vec<DeltaWindow>,
    out: Vec<ValId>,
    counters: JoinCounters,
    error: Option<EvalError>,
}

/// Hands workers `&mut` access to disjoint task slots through the pool
/// (each index is claimed by exactly one thread; see [`EvalPool::run`]).
struct TaskSlots(*mut EvalTask);
unsafe impl Send for TaskSlots {}
unsafe impl Sync for TaskSlots {}

impl TaskSlots {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one thread at a time.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut EvalTask {
        &mut *self.0.add(i)
    }
}

/// One unit of insert-phase work: a head relation (a provably disjoint
/// `&mut` borrow — see [`magic_storage::Database::relations_mut_disjoint`])
/// plus the plans feeding it this iteration, in plan order.  The worker
/// records per-plan new-fact counts; the caller folds them into the stats
/// on one thread afterwards.
struct MergeTask<'a> {
    relation: &'a mut Relation,
    /// `(plan_idx, body-match count)` in plan order.
    plans: Vec<(usize, usize)>,
    /// New facts per entry of `plans`, filled by the merge worker.
    new_by_plan: Vec<usize>,
}

/// Hands workers `&mut` access to disjoint merge-task slots (the insert
/// phase's counterpart of [`TaskSlots`]).
struct MergeSlots<'a>(*mut MergeTask<'a>);
unsafe impl Send for MergeSlots<'_> {}
unsafe impl Sync for MergeSlots<'_> {}

impl<'a> MergeSlots<'a> {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one thread at a time.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut MergeTask<'a> {
        &mut *self.0.add(i)
    }
}

/// Minimum outermost-enumeration rows before a single task is split into
/// per-worker shards.
const SHARD_MIN_RANGE: usize = 1024;

/// Minimum summed outermost-enumeration rows in an iteration before its
/// task batch is dispatched to the pool at all; below this the
/// synchronization would cost more than the join work.
const PARALLEL_MIN_WORK: usize = 4096;

/// A delta-driven variant of a rule plan: the plan itself plus the body
/// permutation that produced it.
#[derive(Clone, Debug)]
struct DeltaVariant {
    plan: RulePlan,
    /// `pos_of_orig[o]` is the variant body position of original
    /// occurrence `o` (the lead occurrence maps to 0).
    pos_of_orig: Vec<usize>,
}

/// Build the delta-driven variant of `rule` with occurrence `lead` first:
/// the remaining atoms are ordered greedily by how many of their variables
/// are already bound (ties by original position), so the join fans out
/// from the delta atom through shared variables instead of re-scanning
/// unrelated leading atoms.
fn delta_variant(
    rule: &magic_datalog::Rule,
    rule_idx: usize,
    lead: usize,
    derived: &BTreeSet<PredName>,
) -> DeltaVariant {
    let mut pos_of_orig = vec![usize::MAX; rule.body.len()];
    let mut body = Vec::with_capacity(rule.body.len());
    pos_of_orig[lead] = 0;
    body.push(rule.body[lead].clone());
    let mut bound = rule.body[lead].var_set();
    let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&o| o != lead).collect();
    while !remaining.is_empty() {
        let (pick, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &o)| {
                let vars = rule.body[o].var_set();
                let bound_vars = vars.intersection(&bound).count();
                // Most bound variables wins; earliest original position
                // breaks ties (remaining is in ascending original order).
                (bound_vars, std::cmp::Reverse(o))
            })
            .expect("remaining is non-empty");
        let o = remaining.remove(pick);
        pos_of_orig[o] = body.len();
        bound.extend(rule.body[o].var_set());
        body.push(rule.body[o].clone());
    }
    let reordered =
        magic_datalog::Rule::new(rule.head.clone(), body).with_negated(rule.negated.clone());
    DeltaVariant {
        plan: RulePlan::compile(&reordered, rule_idx, derived),
        pos_of_orig,
    }
}

impl FixpointRunner {
    /// Compile `program` with the given tracked-predicate set.
    ///
    /// `tracked` must contain every predicate whose delta should re-trigger
    /// rule bodies: the derived predicates for a classic run, plus any base
    /// predicates that external callers will seed deltas for.
    pub fn compile(program: &Program, tracked: &BTreeSet<PredName>) -> FixpointRunner {
        FixpointRunner::build(program, tracked, true)
    }

    /// Compile with the classic tracked set — the program's derived
    /// predicates — and without the delta-driven plan variants.  This is
    /// the run-to-fixpoint form [`Evaluator`] uses; `resume` is
    /// unavailable on it.
    ///
    /// Fact-rule heads are tracked in addition to the derived predicates:
    /// to the planner a predicate defined only by ground facts is not
    /// "derived", but its rows still land at the end of the first
    /// iteration, and a rule reading it must see that delta or it never
    /// re-fires (the full pass ran while the relation was still empty).
    pub fn for_program(program: &Program) -> FixpointRunner {
        let mut tracked = program.derived_preds();
        for rule in &program.rules {
            if rule.is_fact() {
                tracked.insert(rule.head.pred.clone());
            }
        }
        FixpointRunner::build(program, &tracked, false)
    }

    fn build(program: &Program, tracked: &BTreeSet<PredName>, resumable: bool) -> FixpointRunner {
        let derived: BTreeSet<PredName> = program.derived_preds();
        let plans: Vec<RulePlan> = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| RulePlan::compile(r, i, &derived))
            .collect();
        // Dense numbering of the tracked predicates: the per-iteration delta
        // marks are plain vectors indexed by it, so the fixpoint loop clones
        // no `PredName`s.  The list is sorted (it comes from a `BTreeSet`),
        // which lets the per-plan resolution below binary-search it.
        let tracked_list: Vec<PredName> = tracked.iter().cloned().collect();
        let tracked_occurrences: Vec<Vec<(usize, usize)>> = plans
            .iter()
            .map(|plan| {
                plan.atoms
                    .iter()
                    .enumerate()
                    .filter_map(|(occ, atom)| {
                        tracked_list
                            .binary_search(&atom.pred)
                            .ok()
                            .map(|idx| (occ, idx))
                    })
                    .collect()
            })
            .collect();
        let delta_plans: Vec<Vec<DeltaVariant>> = if resumable {
            program
                .rules
                .iter()
                .enumerate()
                .zip(&tracked_occurrences)
                .map(|((rule_idx, rule), occurrences)| {
                    occurrences
                        .iter()
                        .map(|&(occ, _)| delta_variant(rule, rule_idx, occ, &derived))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        let head_bound_plans: Vec<RulePlan> = if resumable {
            program
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| RulePlan::compile_head_bound(r, i, &derived))
                .collect()
        } else {
            Vec::new()
        };
        let arities = program
            .predicate_arities()
            .map(|map| map.into_iter().collect())
            .unwrap_or_default();
        FixpointRunner {
            plans,
            tracked: tracked_list,
            tracked_occurrences,
            delta_plans,
            head_bound_plans,
            arities,
            schedule: Schedule::build(program),
            limits: Limits::default(),
            scheme: IterationScheme::SemiNaive,
            discipline: WindowDiscipline::Overlapping,
        }
    }

    /// Override the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> FixpointRunner {
        self.limits = limits;
        self
    }

    /// Override the iteration scheme.
    pub fn with_scheme(mut self, scheme: IterationScheme) -> FixpointRunner {
        self.scheme = scheme;
        self
    }

    /// Override the window discipline (see [`WindowDiscipline`]).
    pub fn with_discipline(mut self, discipline: WindowDiscipline) -> FixpointRunner {
        self.discipline = discipline;
        self
    }

    /// The compiled rule plans, in program rule order.
    pub fn plans(&self) -> &[RulePlan] {
        &self.plans
    }

    /// The stratified schedule the fixpoint loop executes (one per
    /// compiled runner; the incremental layer's views and catalogs share
    /// it across every maintenance operation).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The tracked predicates, sorted ascending.  Delta-mark vectors index
    /// into this list.
    pub fn tracked(&self) -> &[PredName] {
        &self.tracked
    }

    /// The tracked body occurrences of plan `plan_idx`, as
    /// `(body occurrence, index into tracked())` pairs in body order.
    pub fn occurrences_of(&self, plan_idx: usize) -> &[(usize, usize)] {
        &self.tracked_occurrences[plan_idx]
    }

    /// The delta-driven variant of plan `plan_idx` whose `nth` tracked
    /// occurrence (per [`FixpointRunner::occurrences_of`]) leads the body.
    /// Body positions are permuted; see
    /// [`FixpointRunner::delta_positions`].  Only available on runners
    /// built with [`FixpointRunner::compile`].
    pub fn delta_plan(&self, plan_idx: usize, nth: usize) -> &RulePlan {
        &self.delta_plans[plan_idx][nth].plan
    }

    /// The body permutation of [`FixpointRunner::delta_plan`]: entry `o` is
    /// the variant position of original body occurrence `o` (the lead maps
    /// to 0).
    pub fn delta_positions(&self, plan_idx: usize, nth: usize) -> &[usize] {
        &self.delta_plans[plan_idx][nth].pos_of_orig
    }

    /// The head-bound variant of plan `plan_idx` (see
    /// [`RulePlan::compile_head_bound`]) — the plan to hand to
    /// [`count_derivations`](crate::join::count_derivations).  Only
    /// available on runners built with [`FixpointRunner::compile`].
    pub fn head_bound_plan(&self, plan_idx: usize) -> &RulePlan {
        &self.head_bound_plans[plan_idx]
    }

    /// The current row-id **watermarks** of the tracked predicates — the
    /// delta marks that [`FixpointRunner::resume`] measures seeded
    /// insertions against.  Watermarks (not live counts) are the monotone
    /// quantity: tombstoned removals leave them in place, so rows inserted
    /// after a mark always have ids `>=` it.
    pub fn marks(&self, db: &Database) -> Vec<usize> {
        self.tracked
            .iter()
            .map(|p| db.relation(p).map_or(0, Relation::watermark))
            .collect()
    }

    /// Create relations for every predicate of the program (so missing base
    /// relations behave as empty) and ensure indexes for every access path
    /// the plans will use.  Idempotent; `run` calls it, and callers that
    /// mutate relations wholesale (e.g. batch row removal) need not repeat
    /// it because indexes, once ensured, are maintained by the relation.
    pub fn prepare(&self, db: &mut Database) {
        for (pred, arity) in &self.arities {
            db.relation_mut(pred, *arity);
        }
        // A relation whose stored arity disagrees with the atom is left
        // unindexed here (indexing key positions beyond its arity would be
        // out of bounds); `evaluate_rule` reports the mismatch gracefully.
        for plan in self
            .plans
            .iter()
            .chain(self.delta_plans.iter().flatten().map(|v| &v.plan))
            .chain(self.head_bound_plans.iter())
        {
            for atom in &plan.atoms {
                if !atom.key_positions.is_empty() {
                    let relation = db.relation_mut(&atom.pred, atom.arity);
                    if relation.arity() == atom.arity {
                        relation.ensure_index(&atom.key_positions);
                    }
                }
            }
        }
    }

    /// Run to the least fixpoint from the current contents of `db`,
    /// mutating it in place.  The first iteration evaluates every rule in
    /// full; subsequent iterations are delta-restricted (under
    /// [`IterationScheme::SemiNaive`]).
    pub fn run(
        &self,
        db: &mut Database,
        stats: &mut EvalStats,
        observer: Option<FiringObserver<'_>>,
    ) -> Result<(), EvalError> {
        self.prepare(db);
        self.fixpoint(db, stats, None, observer)
    }

    /// Re-enter the fixpoint with externally seeded deltas: `prev_marks`
    /// are the tracked row counts (see [`FixpointRunner::marks`]) taken
    /// *before* the caller appended the seed rows.  Every iteration —
    /// including the first — is delta-restricted, so a call whose seeds
    /// touch nothing returns after one cheap iteration.
    ///
    /// Requires `db` to be a fixpoint of the program up to the seeds (which
    /// is what [`FixpointRunner::run`] or a previous `resume` leaves
    /// behind).
    pub fn resume(
        &self,
        db: &mut Database,
        prev_marks: Vec<usize>,
        stats: &mut EvalStats,
        observer: Option<FiringObserver<'_>>,
    ) -> Result<(), EvalError> {
        assert_eq!(
            prev_marks.len(),
            self.tracked.len(),
            "seed marks must cover the tracked predicates"
        );
        assert!(
            self.plans.is_empty() || !self.delta_plans.is_empty(),
            "resume requires a runner built with FixpointRunner::compile \
             (for_program builds a run-only runner)"
        );
        self.fixpoint(db, stats, Some(prev_marks), observer)
    }

    /// Build the evaluation tasks for one rule under the current delta
    /// windows, splitting into per-worker shards along the occurrence-0
    /// enumeration when the range is worth it.  Returns the lead range
    /// length (the iteration's parallel-work estimate).
    #[allow(clippy::too_many_arguments)]
    fn push_tasks(
        &self,
        db: &Database,
        plan_idx: usize,
        variant: Option<usize>,
        windows: &[DeltaWindow],
        threads: usize,
        tasks: &mut Vec<EvalTask>,
        tasks_by_plan: &mut [Vec<usize>],
        spare: &mut Vec<EvalTask>,
    ) -> usize {
        // Single-threaded runs never shard or dispatch, so skip the
        // lead-range probe (a per-task relation lookup) entirely.
        let (lo, hi) = if threads > 1 {
            let plan = match variant {
                Some(nth) => &self.delta_plans[plan_idx][nth].plan,
                None => &self.plans[plan_idx],
            };
            lead_enumeration_range(plan, db, windows)
        } else {
            (0, 0)
        };
        let range = hi.saturating_sub(lo);
        let shards = if threads > 1 && range >= SHARD_MIN_RANGE.max(2 * threads) {
            threads
        } else {
            1
        };
        for shard in 0..shards {
            let mut task = spare.pop().unwrap_or_else(|| EvalTask {
                plan_idx: 0,
                variant: None,
                windows: Vec::new(),
                out: Vec::new(),
                counters: JoinCounters::default(),
                error: None,
            });
            debug_assert!(task.windows.is_empty() && task.out.is_empty());
            task.plan_idx = plan_idx;
            task.variant = variant;
            task.counters = JoinCounters::default();
            task.error = None;
            if shards == 1 {
                task.windows.extend_from_slice(windows);
            } else {
                // Replace (or add) the occurrence-0 window with this
                // shard's slice of the outermost enumeration.  Shards
                // partition [lo, hi) in ascending order, so concatenating
                // their outputs reproduces the unsharded row sequence.
                let from = lo + range * shard / shards;
                let to = lo + range * (shard + 1) / shards;
                let mut replaced = false;
                for w in windows {
                    if w.occurrence == 0 {
                        task.windows.push(DeltaWindow {
                            occurrence: 0,
                            from,
                            to,
                        });
                        replaced = true;
                    } else {
                        task.windows.push(*w);
                    }
                }
                if !replaced {
                    task.windows.push(DeltaWindow {
                        occurrence: 0,
                        from,
                        to,
                    });
                }
            }
            tasks_by_plan[plan_idx].push(tasks.len());
            tasks.push(task);
        }
        range
    }

    /// Insert one plan's merged shard outputs into its head relation, in
    /// task order, returning the number of new facts.  This is the body of
    /// the per-relation merge — identical work whether it runs on the
    /// caller's thread or fanned out (relations are disjoint across merge
    /// tasks, and a relation's rows always land in plan-then-task order,
    /// so row ids and dedup outcomes cannot depend on the thread count).
    fn merge_plan_outputs(
        &self,
        relation: &mut Relation,
        plan_idx: usize,
        matches: usize,
        tasks: &[EvalTask],
        tasks_by_plan: &[Vec<usize>],
    ) -> usize {
        let arity = self.plans[plan_idx].head_terms.len();
        if arity == 0 {
            // A zero-arity head (fully bound magic/answer predicate)
            // leaves the flat buffers empty; every match fires the empty
            // row, of which at most the first is new.
            return usize::from(matches > 0 && relation.insert_ids(&[]));
        }
        let mut new = 0;
        for &t in &tasks_by_plan[plan_idx] {
            for row in tasks[t].out.chunks_exact(arity) {
                if relation.insert_ids(row) {
                    new += 1;
                }
            }
        }
        new
    }

    /// Evaluate one task against the (read-only) database.
    fn run_task(&self, task: &mut EvalTask, db: &Database) {
        let plan = match task.variant {
            Some(nth) => &self.delta_plans[task.plan_idx][nth].plan,
            None => &self.plans[task.plan_idx],
        };
        match evaluate_rule_windows(plan, db, &task.windows, &self.limits, &mut task.out) {
            Ok(counters) => task.counters = counters,
            Err(e) => task.error = Some(e),
        }
    }

    /// The shared loop.  `seed_marks` switches between run mode (first
    /// iteration full) and resume mode (first iteration windowed against
    /// the given marks).  See the module docs for the scheduler structure
    /// and the determinism contract.
    fn fixpoint(
        &self,
        db: &mut Database,
        stats: &mut EvalStats,
        seed_marks: Option<Vec<usize>>,
        mut observer: Option<FiringObserver<'_>>,
    ) -> Result<(), EvalError> {
        if self.schedule.has_guarded_strata() {
            // Negation/aggregates force semi-positive evaluation: every
            // stratum must be *finished* before a higher one complements
            // against it, which the interleaved delta loop below cannot
            // guarantee.  Seeded re-entry is refused outright — a seed in a
            // low stratum could retract complements already taken above it.
            if seed_marks.is_some() {
                return Err(EvalError::GuardedUnsupported {
                    operation: "incremental resume (seeded deltas)".into(),
                });
            }
            return self.fixpoint_stratified(db, stats, observer);
        }
        let base_facts = db.total_facts();
        let started = std::time::Instant::now();
        let seeded = seed_marks.is_some();
        let first_iteration_at = stats.iterations + 1;
        // Row-id marks delimiting the delta of the previous iteration,
        // indexed like `tracked`.
        let mut prev_marks = match seed_marks {
            Some(marks) => marks,
            None => self.marks(db),
        };
        let threads = self.limits.resolved_threads();
        // The worker pool is spawned lazily, on the first iteration whose
        // batch is actually worth dispatching, and lives until the run
        // ends — iterations reuse the parked workers instead of paying
        // thread start-up per iteration.
        let mut pool: Option<EvalPool> = None;
        let strata = self.schedule.strata();
        // Permanently converged strata (semi-naive only): a stratum
        // retires once everything below it is retired and it sees no
        // deltas — nothing can feed it again.
        let mut retired = vec![false; strata.len()];
        // Task slots and their recycled buffers.
        let mut tasks: Vec<EvalTask> = Vec::new();
        let mut spare: Vec<EvalTask> = Vec::new();
        // Per plan: indices into `tasks`, in construction order — the
        // deterministic merge order of that plan's output shards.
        let mut tasks_by_plan: Vec<Vec<usize>> = vec![Vec::new(); self.plans.len()];
        // Per-plan body-match counts of the current iteration.  For
        // positive-arity heads this is implied by the shard lengths; for
        // zero-arity heads (fully bound magic/answer predicates) it is the
        // only record of how many firings happened.
        let mut match_counts: Vec<usize> = vec![0; self.plans.len()];
        // Reusable window scratch.
        let mut windows: Vec<DeltaWindow> = Vec::new();

        loop {
            stats.iterations += 1;
            if stats.iterations > self.limits.max_iterations {
                return Err(EvalError::IterationLimit {
                    limit: self.limits.max_iterations,
                });
            }
            if let Some(max_wall) = self.limits.max_wall {
                if started.elapsed() > max_wall {
                    return Err(EvalError::TimeLimit { limit: max_wall });
                }
            }
            // Snapshot the current extents: rows in [prev_mark, cur_mark)
            // form the delta of the previous iteration (or the seeds, on
            // the first iteration of a resume).
            let cur_marks: Vec<usize> = self.marks(db);

            let full_first = !seeded && stats.iterations == first_iteration_at;
            let use_delta = self.scheme == IterationScheme::SemiNaive && !full_first;

            // ---- Task construction: strata in dependency order. ----
            let mut lead_work = 0usize;
            let mut lower_all_retired = true;
            for (s, stratum) in strata.iter().enumerate() {
                if retired[s] {
                    continue;
                }
                // Whether any rule of this stratum had work this iteration.
                let mut live = false;
                for &plan_idx in &stratum.rules {
                    if use_delta {
                        let occurrences = &self.tracked_occurrences[plan_idx];
                        for (nth, &(occ, tracked_idx)) in occurrences.iter().enumerate() {
                            let from = prev_marks[tracked_idx];
                            let to = cur_marks[tracked_idx];
                            if from >= to {
                                continue; // no new facts for this occurrence
                            }
                            live = true;
                            // In resume mode the delta-driven variant moves
                            // the windowed atom to the front, so the join
                            // fans out from the delta instead of re-scanning
                            // the rule's leading atoms; window positions are
                            // remapped through the variant's permutation.
                            let (variant, positions) = if seeded {
                                (
                                    Some(nth),
                                    Some(&self.delta_plans[plan_idx][nth].pos_of_orig),
                                )
                            } else {
                                (None, None)
                            };
                            let map = |o: usize| match positions {
                                Some(pos_of_orig) => pos_of_orig[o],
                                None => o,
                            };
                            windows.clear();
                            if self.discipline == WindowDiscipline::Disjoint {
                                // Earlier tracked occurrences read the
                                // pre-delta rows only, so a derivation touching
                                // several delta facts is enumerated exactly
                                // once (at its first delta occurrence).
                                for &(prev_occ, prev_idx) in &occurrences[..nth] {
                                    if prev_marks[prev_idx] < cur_marks[prev_idx] {
                                        windows.push(DeltaWindow {
                                            occurrence: map(prev_occ),
                                            from: 0,
                                            to: prev_marks[prev_idx],
                                        });
                                    }
                                }
                            }
                            windows.push(DeltaWindow {
                                occurrence: map(occ),
                                from,
                                to,
                            });
                            lead_work += self.push_tasks(
                                db,
                                plan_idx,
                                variant,
                                &windows,
                                threads,
                                &mut tasks,
                                &mut tasks_by_plan,
                                &mut spare,
                            );
                        }
                    } else {
                        live = true;
                        lead_work += self.push_tasks(
                            db,
                            plan_idx,
                            None,
                            &[],
                            threads,
                            &mut tasks,
                            &mut tasks_by_plan,
                            &mut spare,
                        );
                    }
                }
                if use_delta && !live && lower_all_retired {
                    retired[s] = true;
                }
                if !retired[s] {
                    lower_all_retired = false;
                }
            }

            // ---- Read-only evaluation: inline, or fanned out. ----
            if threads > 1 && tasks.len() > 1 && lead_work >= PARALLEL_MIN_WORK {
                let pool = pool.get_or_insert_with(|| EvalPool::new(threads - 1));
                let slots = TaskSlots(tasks.as_mut_ptr());
                let db_read: &Database = db;
                pool.run(tasks.len(), &|i| {
                    // SAFETY: each index is claimed by exactly one thread,
                    // so the `&mut` slots are disjoint; `db_read` is a
                    // shared borrow for the whole batch.
                    let task = unsafe { slots.get(i) };
                    self.run_task(task, db_read);
                });
            } else {
                for task in tasks.iter_mut() {
                    self.run_task(task, db);
                    // Abort the iteration at the first failing task, like
                    // the classic loop: unrun tasks stay error-free and
                    // empty, so the merge below still reports this error
                    // (the first in task order).
                    if task.error.is_some() {
                        break;
                    }
                }
            }

            // ---- Deterministic merge: counters in task order. ----
            let mut produced = false;
            for task in &tasks {
                if let Some(e) = &task.error {
                    return Err(e.clone());
                }
                stats.join_probes += task.counters.probes;
                match_counts[task.plan_idx] += task.counters.matches;
                produced |= task.counters.matches > 0;
            }

            // ---- Insert phase: all dedup, id assignment and index
            // maintenance happens here, behind the merge.  Plans with work
            // are grouped by head predicate (plan order within a group);
            // disjoint head relations then fan out over the pool, unless an
            // observer needs the per-row sequential path. ----
            let mut new_facts = 0usize;
            if produced {
                // (plan_idx, body-match count) for every plan with work, in
                // plan order, and the group boundaries by head predicate.
                let mut work: Vec<(usize, usize)> = Vec::new();
                let mut insert_rows = 0usize;
                for (plan_idx, count) in match_counts.iter_mut().enumerate() {
                    let matches = std::mem::take(count);
                    if matches > 0 {
                        if !self.plans[plan_idx].head_terms.is_empty() {
                            insert_rows += matches;
                        }
                        work.push((plan_idx, matches));
                    }
                }
                let mut groups: Vec<Vec<(usize, usize)>> = Vec::new();
                let mut heads: Vec<&PredName> = Vec::new();
                for &(plan_idx, matches) in &work {
                    let head = &self.plans[plan_idx].head_pred;
                    match heads.iter().position(|&h| h == head) {
                        Some(g) => groups[g].push((plan_idx, matches)),
                        None => {
                            heads.push(head);
                            groups.push(vec![(plan_idx, matches)]);
                        }
                    }
                }
                // The parallel path needs per-row observer calls out of the
                // way (the incremental layer's support counting is a
                // sequential `&mut` closure) and enough disjoint relations
                // and rows to amortize the dispatch.
                if observer.is_none()
                    && threads > 1
                    && heads.len() > 1
                    && insert_rows >= PARALLEL_MIN_WORK
                {
                    // Resolve (creating if absent) every head relation
                    // first, exactly like the sequential path would, then
                    // take provably disjoint `&mut` borrows of them.
                    for group in &groups {
                        let plan = &self.plans[group[0].0];
                        db.relation_mut(&plan.head_pred, plan.head_terms.len());
                    }
                    let mut merge_tasks: Vec<MergeTask<'_>> = db
                        .relations_mut_disjoint(&heads)
                        .into_iter()
                        .zip(std::mem::take(&mut groups))
                        .map(|(relation, plans)| MergeTask {
                            new_by_plan: vec![0; plans.len()],
                            relation,
                            plans,
                        })
                        .collect();
                    let pool = pool.get_or_insert_with(|| EvalPool::new(threads - 1));
                    let slots = MergeSlots(merge_tasks.as_mut_ptr());
                    let tasks_read: &[EvalTask] = &tasks;
                    let by_plan_read: &[Vec<usize>] = &tasks_by_plan;
                    pool.run(merge_tasks.len(), &|i| {
                        // SAFETY: each index is claimed by exactly one
                        // thread, so the `&mut` slots — and through them
                        // the `&mut Relation`s, disjoint by construction —
                        // are never aliased.
                        let task = unsafe { slots.get(i) };
                        for (nth, &(plan_idx, matches)) in task.plans.iter().enumerate() {
                            task.new_by_plan[nth] = self.merge_plan_outputs(
                                task.relation,
                                plan_idx,
                                matches,
                                tasks_read,
                                by_plan_read,
                            );
                        }
                    });
                    // Counter application stays on one thread, in group
                    // then plan order; every firing counter is a sum, so
                    // this reproduces the sequential path bit-for-bit.
                    for task in &merge_tasks {
                        for (nth, &(plan_idx, matches)) in task.plans.iter().enumerate() {
                            let plan = &self.plans[plan_idx];
                            let new = task.new_by_plan[nth];
                            stats.record_firings(plan.rule_idx, &plan.head_pred, matches, new);
                            new_facts += new;
                        }
                    }
                } else {
                    for &(plan_idx, matches) in &work {
                        let plan = &self.plans[plan_idx];
                        // All rows of one plan belong to its head predicate:
                        // resolve the relation once and insert the packed
                        // chunks directly — no per-fact allocation or clone.
                        let arity = plan.head_terms.len();
                        let relation = db.relation_mut(&plan.head_pred, arity);
                        if arity == 0 {
                            // A zero-arity head (fully bound magic/answer
                            // predicate) leaves the flat buffers empty; every
                            // match fires the empty row, of which at most the
                            // first is new.
                            for nth in 0..matches {
                                let is_new = nth == 0 && relation.insert_ids(&[]);
                                if let Some(observer) = observer.as_deref_mut() {
                                    observer(plan_idx, &[], is_new);
                                }
                                stats.record_firing(plan.rule_idx, &plan.head_pred, is_new);
                                if is_new {
                                    new_facts += 1;
                                }
                            }
                            continue;
                        }
                        for &t in &tasks_by_plan[plan_idx] {
                            for row in tasks[t].out.chunks_exact(arity) {
                                let is_new = relation.insert_ids(row);
                                if let Some(observer) = observer.as_deref_mut() {
                                    observer(plan_idx, row, is_new);
                                }
                                stats.record_firing(plan.rule_idx, &plan.head_pred, is_new);
                                if is_new {
                                    new_facts += 1;
                                }
                            }
                        }
                    }
                }
            }
            // Recycle task slots (buffers keep their capacity).
            for list in tasks_by_plan.iter_mut() {
                list.clear();
            }
            for mut task in tasks.drain(..) {
                task.out.clear();
                task.windows.clear();
                spare.push(task);
            }
            if db.total_facts() - base_facts > self.limits.max_facts {
                return Err(EvalError::FactLimit {
                    limit: self.limits.max_facts,
                });
            }
            if new_facts == 0 {
                break;
            }
            prev_marks = cur_marks;
        }
        Ok(())
    }

    /// Sequential semi-positive evaluation for guarded (stratified)
    /// programs: strata run strictly in dependency order, each to its own
    /// fixpoint, so every negated atom complements against a *finished*
    /// lower-stratum relation and every aggregate folds complete groups.
    ///
    /// The whole path is single-threaded by design — thread-count
    /// determinism is then trivial (`MAGIC_THREADS` cannot change a single
    /// counter), which is the contract the parallel loop above buys with
    /// its deterministic merge.  Guarded programs are expected to be
    /// negation/aggregate *tips* over large positive cones; the positive
    /// cones still run through the parallel loop when evaluated on their
    /// own (e.g. under the magic rewrites, which strip to the positive
    /// fragment).
    fn fixpoint_stratified(
        &self,
        db: &mut Database,
        stats: &mut EvalStats,
        mut observer: Option<FiringObserver<'_>>,
    ) -> Result<(), EvalError> {
        // Refuse unstratifiable programs with the typed violation before
        // touching the database: evaluating them would compute *some*
        // fixpoint, just not a meaningful (perfect-model) one.
        if let Some(v) = self.schedule.stratification_violations().first() {
            return Err(EvalError::Unstratifiable {
                predicate: v.pred.to_string(),
                cycle: v.cycle.iter().map(|p| p.to_string()).collect(),
            });
        }
        // Re-check negation safety at the evaluation boundary: runners can
        // be built from unvalidated programs, and an unbound negated
        // variable would otherwise surface only if the join reaches it.
        for plan in &self.plans {
            if plan.rule.is_guarded() && plan.rule.check_negation_safe().is_err() {
                return Err(EvalError::UnsafeNegation {
                    rule: plan.rule.to_string(),
                });
            }
        }
        let base_facts = db.total_facts();
        let started = std::time::Instant::now();
        let mut scratch: Vec<ValId> = Vec::new();
        let mut windows: Vec<DeltaWindow> = Vec::new();
        // Per-iteration evaluation outputs, in rule order:
        // (plan index, flat rows, body-match count).
        let mut outputs: Vec<(usize, Vec<ValId>, usize)> = Vec::new();
        let mut spare: Vec<Vec<ValId>> = Vec::new();
        for stratum in self.schedule.strata() {
            // Aggregate rules run first, one-shot: every body dependency of
            // an aggregate rule is a strict edge, so in a stratified program
            // its inputs live strictly below and are already finished; the
            // stratum's plain rules (which may read the aggregate's output)
            // then start from the folded rows.
            for &plan_idx in &stratum.rules {
                if self.plans[plan_idx].rule.aggregate.is_some() {
                    self.run_aggregate_rule(plan_idx, db, stats, &mut observer, &mut scratch)?;
                }
            }
            if db.total_facts() - base_facts > self.limits.max_facts {
                return Err(EvalError::FactLimit {
                    limit: self.limits.max_facts,
                });
            }
            let plain: Vec<usize> = stratum
                .rules
                .iter()
                .copied()
                .filter(|&i| self.plans[i].rule.aggregate.is_none())
                .collect();
            if plain.is_empty() {
                continue;
            }
            // The stratum's own semi-naive fixpoint: first iteration full,
            // then delta-windowed.  Deltas of lower strata are finished
            // (from == to) and upper strata have not started, so the
            // windows only ever select this stratum's new rows.
            let mut first = true;
            let mut prev_marks = self.marks(db);
            loop {
                stats.iterations += 1;
                if stats.iterations > self.limits.max_iterations {
                    return Err(EvalError::IterationLimit {
                        limit: self.limits.max_iterations,
                    });
                }
                if let Some(max_wall) = self.limits.max_wall {
                    if started.elapsed() > max_wall {
                        return Err(EvalError::TimeLimit { limit: max_wall });
                    }
                }
                let cur_marks = self.marks(db);
                let use_delta = self.scheme == IterationScheme::SemiNaive && !first;
                for &plan_idx in &plain {
                    let plan = &self.plans[plan_idx];
                    if use_delta {
                        let occurrences = &self.tracked_occurrences[plan_idx];
                        for (nth, &(occ, tracked_idx)) in occurrences.iter().enumerate() {
                            let from = prev_marks[tracked_idx];
                            let to = cur_marks[tracked_idx];
                            if from >= to {
                                continue;
                            }
                            windows.clear();
                            if self.discipline == WindowDiscipline::Disjoint {
                                for &(prev_occ, prev_idx) in &occurrences[..nth] {
                                    if prev_marks[prev_idx] < cur_marks[prev_idx] {
                                        windows.push(DeltaWindow {
                                            occurrence: prev_occ,
                                            from: 0,
                                            to: prev_marks[prev_idx],
                                        });
                                    }
                                }
                            }
                            windows.push(DeltaWindow {
                                occurrence: occ,
                                from,
                                to,
                            });
                            let mut buf = spare.pop().unwrap_or_default();
                            let counters =
                                evaluate_rule_windows(plan, db, &windows, &self.limits, &mut buf)?;
                            stats.join_probes += counters.probes;
                            outputs.push((plan_idx, buf, counters.matches));
                        }
                    } else {
                        let mut buf = spare.pop().unwrap_or_default();
                        let counters =
                            evaluate_rule_windows(plan, db, &[], &self.limits, &mut buf)?;
                        stats.join_probes += counters.probes;
                        outputs.push((plan_idx, buf, counters.matches));
                    }
                }
                // Insert phase, in rule order (mirrors the sequential path
                // of the parallel loop above).
                let mut new_facts = 0usize;
                for (plan_idx, buf, matches) in outputs.drain(..) {
                    let plan = &self.plans[plan_idx];
                    let arity = plan.head_terms.len();
                    let relation = db.relation_mut(&plan.head_pred, arity);
                    if arity == 0 {
                        for nth in 0..matches {
                            let is_new = nth == 0 && relation.insert_ids(&[]);
                            if let Some(observer) = observer.as_deref_mut() {
                                observer(plan_idx, &[], is_new);
                            }
                            stats.record_firing(plan.rule_idx, &plan.head_pred, is_new);
                            if is_new {
                                new_facts += 1;
                            }
                        }
                    } else {
                        for row in buf.chunks_exact(arity) {
                            let is_new = relation.insert_ids(row);
                            if let Some(observer) = observer.as_deref_mut() {
                                observer(plan_idx, row, is_new);
                            }
                            stats.record_firing(plan.rule_idx, &plan.head_pred, is_new);
                            if is_new {
                                new_facts += 1;
                            }
                        }
                    }
                    let mut buf = buf;
                    buf.clear();
                    spare.push(buf);
                }
                if db.total_facts() - base_facts > self.limits.max_facts {
                    return Err(EvalError::FactLimit {
                        limit: self.limits.max_facts,
                    });
                }
                if new_facts == 0 {
                    break;
                }
                prev_marks = cur_marks;
                first = false;
            }
        }
        Ok(())
    }

    /// Evaluate one aggregate rule as a stratum-boundary group-by
    /// reduction: a single full evaluation of the positive body (its
    /// inputs are finished lower strata), distinct `(group, value)` pairs
    /// under set semantics, then one folded output row per group.  Groups
    /// are folded and inserted in deterministic id order.
    fn run_aggregate_rule(
        &self,
        plan_idx: usize,
        db: &mut Database,
        stats: &mut EvalStats,
        observer: &mut Option<FiringObserver<'_>>,
        scratch: &mut Vec<ValId>,
    ) -> Result<(), EvalError> {
        let plan = &self.plans[plan_idx];
        let agg = plan
            .rule
            .aggregate
            .as_ref()
            .expect("run_aggregate_rule requires an aggregate plan");
        let arity = plan.head_terms.len();
        scratch.clear();
        let counters = evaluate_rule_windows(plan, db, &[], &self.limits, scratch)?;
        stats.join_probes += counters.probes;
        // Distinct values per group: a value derived through two body
        // instantiations counts (and sums) once.  An empty body yields no
        // groups, hence no rows — not a zero count.
        let mut groups: BTreeMap<Vec<ValId>, BTreeSet<ValId>> = BTreeMap::new();
        for row in scratch.chunks_exact(arity) {
            let mut key = Vec::with_capacity(arity - 1);
            for (i, &id) in row.iter().enumerate() {
                if i != agg.position {
                    key.push(id);
                }
            }
            groups.entry(key).or_default().insert(row[agg.position]);
        }
        scratch.clear();
        let relation = db.relation_mut(&plan.head_pred, arity);
        let mut row = vec![ValId::NULL; arity];
        for (key, values) in &groups {
            let result = match agg.func {
                AggFunc::Count => ValId::from_int(values.len() as i64),
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                    let mut folded: Option<i64> = None;
                    for &v in values {
                        let Some(i) = v.as_int() else {
                            return Err(EvalError::AggregateType {
                                rule: plan.rule.to_string(),
                                value: v.to_string(),
                            });
                        };
                        folded = Some(match (folded, agg.func) {
                            (None, _) => i,
                            (Some(acc), AggFunc::Sum) => acc + i,
                            (Some(acc), AggFunc::Min) => acc.min(i),
                            (Some(acc), AggFunc::Max) => acc.max(i),
                            (Some(_), AggFunc::Count) => unreachable!(),
                        });
                    }
                    ValId::from_int(folded.expect("groups are non-empty"))
                }
            };
            let mut rest = key.iter();
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = if i == agg.position {
                    result
                } else {
                    *rest.next().expect("key covers the non-aggregate positions")
                };
            }
            let is_new = relation.insert_ids(&row);
            if let Some(observer) = observer.as_deref_mut() {
                observer(plan_idx, &row, is_new);
            }
            stats.record_firing(plan.rule_idx, &plan.head_pred, is_new);
        }
        Ok(())
    }
}

/// A bottom-up evaluator for a fixed program.
///
/// ```
/// use magic_datalog::{parse_program, parse_query};
/// use magic_engine::Evaluator;
/// use magic_storage::Database;
///
/// let program = parse_program(
///     "anc(X, Y) :- par(X, Y).
///      anc(X, Y) :- par(X, Z), anc(Z, Y).",
/// )
/// .unwrap();
/// let mut db = Database::new();
/// db.insert_pair("par", "a", "b");
/// db.insert_pair("par", "b", "c");
///
/// let result = Evaluator::new(program).run(&db).unwrap();
/// let query = parse_query("anc(a, Y)").unwrap();
/// let answers = magic_engine::answers::query_answers(&result.database, &query);
/// assert_eq!(answers.len(), 2); // b and c
/// ```
#[derive(Clone, Debug)]
pub struct Evaluator {
    program: Program,
    limits: Limits,
    scheme: IterationScheme,
}

impl Evaluator {
    /// Create an evaluator with default limits and semi-naive iteration.
    pub fn new(program: Program) -> Evaluator {
        Evaluator {
            program,
            limits: Limits::default(),
            scheme: IterationScheme::SemiNaive,
        }
    }

    /// Override the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Evaluator {
        self.limits = limits;
        self
    }

    /// Override the iteration scheme.
    pub fn with_scheme(mut self, scheme: IterationScheme) -> Evaluator {
        self.scheme = scheme;
        self
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Evaluate to the least fixpoint starting from `edb`.
    pub fn run(&self, edb: &Database) -> Result<EvalResult, EvalError> {
        self.run_db(edb.clone())
    }

    /// Evaluate to the least fixpoint over an owned database (taking it by
    /// value avoids the clone of [`Evaluator::run`], and lets callers
    /// pre-ensure indexes — e.g. the planner's answer-atom index — that
    /// are then maintained incrementally through the evaluation instead of
    /// being rebuilt afterwards).
    pub fn run_db(&self, mut db: Database) -> Result<EvalResult, EvalError> {
        let runner = FixpointRunner::for_program(&self.program)
            .with_limits(self.limits)
            .with_scheme(self.scheme);
        let mut stats = EvalStats::default();
        runner.run(&mut db, &mut stats, None)?;
        Ok(EvalResult {
            database: db,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::query_answers;
    use magic_datalog::{parse_program, parse_query, Value};

    fn chain_db(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db
    }

    fn ancestor() -> Program {
        parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn ancestor_chain_full_closure() {
        let db = chain_db(10);
        let result = Evaluator::new(ancestor()).run(&db).unwrap();
        // Full transitive closure of an 11-node chain: 10+9+...+1 = 55 pairs.
        assert_eq!(result.database.count(&PredName::plain("anc")), 55);
        let q = parse_query("anc(n0, Y)").unwrap();
        assert_eq!(query_answers(&result.database, &q).len(), 10);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let db = chain_db(12);
        let semi = Evaluator::new(ancestor()).run(&db).unwrap();
        let naive = Evaluator::new(ancestor())
            .with_scheme(IterationScheme::Naive)
            .run(&db)
            .unwrap();
        assert_eq!(
            semi.database.count(&PredName::plain("anc")),
            naive.database.count(&PredName::plain("anc"))
        );
        // Semi-naive performs strictly fewer duplicate derivations on a chain.
        assert!(semi.stats.duplicate_derivations < naive.stats.duplicate_derivations);
    }

    #[test]
    fn nonlinear_ancestor_agrees_with_linear() {
        let db = chain_db(8);
        let nonlinear = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let a = Evaluator::new(ancestor()).run(&db).unwrap();
        let b = Evaluator::new(nonlinear).run(&db).unwrap();
        assert_eq!(
            a.database.count(&PredName::plain("anc")),
            b.database.count(&PredName::plain("anc"))
        );
    }

    #[test]
    fn fact_rules_fire_once() {
        let program = parse_program("p(a). q(X) :- p(X).").unwrap();
        // parse_program strips ground facts... so embed via a rule instead.
        let program = if program.len() < 2 {
            parse_program("q(X) :- p(X).").unwrap()
        } else {
            program
        };
        let mut db = Database::new();
        db.insert(PredName::plain("p"), vec![Value::sym("a")]);
        let result = Evaluator::new(program).run(&db).unwrap();
        assert_eq!(result.database.count(&PredName::plain("q")), 1);
    }

    #[test]
    fn edb_arity_mismatch_is_an_error_not_a_panic() {
        // The EDB stores q with arity 1 while the program uses arity 3;
        // index ensuring must not index out of bounds, and evaluation must
        // surface the graceful ArityMismatch error.
        let program = parse_program("p(X) :- b(X), q(X, X, Y).").unwrap();
        let mut db = Database::new();
        db.insert(PredName::plain("b"), vec![Value::sym("a")]);
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        let err = Evaluator::new(program).run(&db).unwrap_err();
        assert!(matches!(err, crate::EvalError::ArityMismatch { .. }));
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let db = chain_db(50);
        let err = Evaluator::new(ancestor())
            .with_limits(Limits::default().with_max_iterations(3))
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 3 }));
    }

    #[test]
    fn fact_limit_is_enforced() {
        let db = chain_db(60);
        let err = Evaluator::new(ancestor())
            .with_limits(Limits::default().with_max_facts(10))
            .run(&db)
            .unwrap_err();
        assert!(matches!(err, EvalError::FactLimit { .. }));
    }

    #[test]
    fn same_generation_nonlinear() {
        // The paper's running example (Example 1).
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        // Two-level structure: a,b go up to m,n; flat connects m-n and n-m;
        // m,n go down to c,d.
        db.insert_pair("up", "a", "m");
        db.insert_pair("up", "b", "n");
        db.insert_pair("flat", "m", "n");
        db.insert_pair("flat", "n", "m");
        db.insert_pair("flat", "a", "b");
        db.insert_pair("down", "m", "c");
        db.insert_pair("down", "n", "d");
        let result = Evaluator::new(program).run(&db).unwrap();
        let q = parse_query("sg(a, Y)").unwrap();
        let answers = query_answers(&result.database, &q);
        // sg(a, b) via flat; sg(a, d) via up/sg/flat/sg/down:
        //   up(a,m), sg(m,n) [flat], flat(n,m), sg(m,n) [flat], down(n,d).
        let rendered: BTreeSet<String> = answers
            .iter()
            .map(|row| {
                row.iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert!(rendered.contains("b"));
        assert!(rendered.contains("d"));
    }

    #[test]
    fn list_append_with_magic_style_guard() {
        // append is not range-restricted without a guard; provide the guard
        // relation directly to exercise function-symbol evaluation.
        let program = parse_program(
            "append(V, X, Y) :- guard(V, X), build(V, X, Y).
             build(V, nil, cons(V, nil)) :- guard(V, nil).
             build(V, cons(W, X), cons(W, Y)) :- guard(V, cons(W, X)), build(V, X, Y).
             guard(V, X) :- guard(V, cons(W, X)).",
        )
        .unwrap();
        let mut db = Database::new();
        let list = Value::list(vec![Value::sym("a"), Value::sym("b")]);
        db.insert(
            PredName::plain("guard"),
            vec![Value::sym("z"), list.clone()],
        );
        let result = Evaluator::new(program).run(&db).unwrap();
        let append = result
            .database
            .relation(&PredName::plain("append"))
            .unwrap();
        // One append fact per suffix of the guarded list: [a,b], [b], [].
        assert_eq!(append.len(), 3);
        let full = append
            .iter()
            .find(|row| row[1] == list)
            .expect("append fact for the full list");
        assert_eq!(
            full[2].as_list().unwrap(),
            vec![Value::sym("a"), Value::sym("b"), Value::sym("z")]
        );
    }

    #[test]
    fn resume_from_seeded_base_delta_reaches_the_new_fixpoint() {
        // Materialize the chain closure, then append one edge and resume:
        // the runner must derive exactly the closure of the longer chain
        // without re-running from scratch.
        let program = ancestor();
        let mut tracked = program.derived_preds();
        tracked.extend(program.base_preds());
        let runner =
            FixpointRunner::compile(&program, &tracked).with_discipline(WindowDiscipline::Disjoint);
        let mut db = chain_db(10);
        let mut stats = EvalStats::default();
        runner.run(&mut db, &mut stats, None).unwrap();
        assert_eq!(db.count(&PredName::plain("anc")), 55);

        let marks = runner.marks(&db);
        db.insert_pair("par", "n10", "n11");
        let mut resume_stats = EvalStats::default();
        runner
            .resume(&mut db, marks, &mut resume_stats, None)
            .unwrap();
        // Closure of a 12-node chain: 11+10+...+1 = 66 pairs.
        assert_eq!(db.count(&PredName::plain("anc")), 66);
        // The resumed run only derived the new pairs.
        assert_eq!(resume_stats.facts_derived, 11);
        // And did so with far less join work than the full run.
        assert!(resume_stats.join_probes < stats.join_probes / 2);
    }

    #[test]
    fn resume_with_no_seeds_is_a_cheap_no_op() {
        let program = ancestor();
        let mut tracked = program.derived_preds();
        tracked.extend(program.base_preds());
        let runner = FixpointRunner::compile(&program, &tracked);
        let mut db = chain_db(6);
        let mut stats = EvalStats::default();
        runner.run(&mut db, &mut stats, None).unwrap();
        let before = db.clone();
        let marks = runner.marks(&db);
        let mut resume_stats = EvalStats::default();
        runner
            .resume(&mut db, marks, &mut resume_stats, None)
            .unwrap();
        assert_eq!(db, before);
        assert_eq!(resume_stats.join_probes, 0);
        assert_eq!(resume_stats.iterations, 1);
    }

    #[test]
    fn observer_sees_every_firing_with_newness() {
        let program = ancestor();
        let runner = FixpointRunner::for_program(&program);
        let mut db = chain_db(4);
        let mut stats = EvalStats::default();
        let mut firings = 0usize;
        let mut new = 0usize;
        let mut observer = |_plan: usize, _row: &[ValId], is_new: bool| {
            firings += 1;
            if is_new {
                new += 1;
            }
        };
        runner
            .run(&mut db, &mut stats, Some(&mut observer))
            .unwrap();
        assert_eq!(firings, stats.rule_firings);
        assert_eq!(new, stats.facts_derived);
        assert_eq!(new, 4 * 5 / 2);
    }

    #[test]
    fn stratified_negation_complements_finished_lower_strata() {
        let program = parse_program(
            "reach(Y) :- start(Y).
             reach(Y) :- reach(X), edge(X, Y).
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert(PredName::plain("start"), vec![Value::sym("a")]);
        db.insert_pair("edge", "a", "b");
        db.insert_pair("edge", "b", "c");
        for n in ["a", "b", "c", "d", "e"] {
            db.insert(PredName::plain("node"), vec![Value::sym(n)]);
        }
        let result = Evaluator::new(program).run(&db).unwrap();
        assert_eq!(result.database.count(&PredName::plain("reach")), 3);
        let unreached = result
            .database
            .relation(&PredName::plain("unreached"))
            .unwrap();
        let names: BTreeSet<String> = unreached.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(names, BTreeSet::from(["d".to_string(), "e".to_string()]));
    }

    #[test]
    fn unstratifiable_program_is_refused_before_evaluation() {
        // The classic win/lose game negates win through its own recursion.
        let program = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let mut db = Database::new();
        db.insert_pair("move", "a", "b");
        let err = Evaluator::new(program).run(&db).unwrap_err();
        match err {
            EvalError::Unstratifiable { predicate, cycle } => {
                assert_eq!(predicate, "win");
                assert!(cycle.contains(&"win".to_string()));
            }
            other => panic!("expected Unstratifiable, got {other}"),
        }
    }

    #[test]
    fn aggregates_fold_groups_at_the_stratum_boundary() {
        // A one-level bill of materials: sum/min/max/count per assembly.
        let program = parse_program(
            "part_cost(A, C) :- uses(A, P), price(P, C).
             total(A, sum<C>) :- part_cost(A, C).
             cheapest(A, min<C>) :- part_cost(A, C).
             priciest(A, max<C>) :- part_cost(A, C).
             breadth(A, count<P>) :- uses(A, P).",
        )
        .unwrap();
        let mut db = Database::new();
        let mut link = |pred: &str, a: &str, b: Value| {
            db.insert(PredName::plain(pred), vec![Value::sym(a), b]);
        };
        link("uses", "bike", Value::sym("wheel"));
        link("uses", "bike", Value::sym("frame"));
        link("uses", "cart", Value::sym("wheel"));
        link("price", "wheel", Value::Int(30));
        link("price", "frame", Value::Int(100));
        let result = Evaluator::new(program).run(&db).unwrap();
        let db = &result.database;
        let rows = |pred: &str| -> BTreeSet<(String, i64)> {
            db.relation(&PredName::plain(pred))
                .unwrap()
                .iter()
                .map(|row| {
                    let Value::Int(v) = row[1] else {
                        panic!("expected an integer aggregate result")
                    };
                    (row[0].to_string(), v)
                })
                .collect()
        };
        assert_eq!(
            rows("total"),
            BTreeSet::from([("bike".to_string(), 130), ("cart".to_string(), 30)])
        );
        assert_eq!(
            rows("cheapest"),
            BTreeSet::from([("bike".to_string(), 30), ("cart".to_string(), 30)])
        );
        assert_eq!(
            rows("priciest"),
            BTreeSet::from([("bike".to_string(), 100), ("cart".to_string(), 30)])
        );
        assert_eq!(
            rows("breadth"),
            BTreeSet::from([("bike".to_string(), 2), ("cart".to_string(), 1)])
        );
    }

    #[test]
    fn aggregate_over_non_integers_is_a_type_error() {
        let program = parse_program("tallest(max<N>) :- name(N).").unwrap();
        let mut db = Database::new();
        db.insert(PredName::plain("name"), vec![Value::sym("alice")]);
        let err = Evaluator::new(program).run(&db).unwrap_err();
        match err {
            EvalError::AggregateType { value, .. } => assert_eq!(value, "alice"),
            other => panic!("expected AggregateType, got {other}"),
        }
    }

    #[test]
    fn guarded_resume_is_refused_with_a_typed_error() {
        let program = parse_program(
            "reach(Y) :- start(Y).
             reach(Y) :- reach(X), edge(X, Y).
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut tracked = program.derived_preds();
        tracked.extend(program.base_preds());
        let runner = FixpointRunner::compile(&program, &tracked);
        let mut db = Database::new();
        db.insert(PredName::plain("start"), vec![Value::sym("a")]);
        db.insert(PredName::plain("node"), vec![Value::sym("b")]);
        let mut stats = EvalStats::default();
        runner.run(&mut db, &mut stats, None).unwrap();
        assert_eq!(db.count(&PredName::plain("unreached")), 1);

        let marks = runner.marks(&db);
        db.insert_pair("edge", "a", "b");
        let err = runner.resume(&mut db, marks, &mut stats, None).unwrap_err();
        assert!(matches!(err, EvalError::GuardedUnsupported { .. }));
    }

    use std::collections::BTreeSet;
}
