//! A tiny batch-oriented worker pool for the fixpoint scheduler.
//!
//! The fixpoint loop alternates a read-only *evaluation phase* (all rule
//! joins of an iteration) with a sequential *merge phase* (inserting the
//! produced rows).  Spawning `std::thread::scope` workers per iteration
//! would cost tens of microseconds of thread start-up for evaluation
//! phases that are often shorter than that, so the pool keeps its workers
//! parked on a condvar across iterations — and across the *whole* fixpoint
//! run — and hands them one task batch per iteration.
//!
//! # Protocol and safety
//!
//! [`EvalPool::run`] publishes a batch as a type-erased `&dyn Fn(usize)`
//! plus a task count, wakes the workers, claims tasks on the calling
//! thread too, and returns only once every task index has completed.  The
//! closure borrows iteration-local state (the database, the task slots);
//! the lifetime is erased to park it in the shared cell, which is sound
//! because `run` does not return while any worker can still observe the
//! pointer: a worker only touches it between claiming an index (under the
//! lock, `next < len`) and bumping `completed` (under the lock), and `run`
//! blocks until `completed == len`.
//!
//! Each task index is claimed by exactly one thread, so a batch closure
//! may hand out `&mut` access to disjoint per-task slots through a raw
//! pointer (see the evaluator's use).

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased pointer to the current batch closure.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from several threads are
// fine) and the pool's protocol guarantees it outlives every access.
unsafe impl Send for JobPtr {}

struct State {
    /// The published batch, `None` while idle.
    job: Option<JobPtr>,
    /// Number of tasks in the batch.
    len: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Tasks finished so far.
    completed: usize,
    /// Set once, on drop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between batches.
    work: Condvar,
    /// The publisher parks here until the batch completes.
    done: Condvar,
}

/// A persistent pool of evaluation workers (see the module docs).
pub(crate) struct EvalPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EvalPool {
    /// Spawn `workers` background threads.  The calling thread participates
    /// in every batch too, so a pool for `t` total threads takes `t - 1`.
    pub(crate) fn new(workers: usize) -> EvalPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                len: 0,
                next: 0,
                completed: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        EvalPool { shared, workers }
    }

    /// Run `f(0), f(1), ..., f(len - 1)` across the pool plus the calling
    /// thread; returns once every index has completed.  `f` is called
    /// concurrently from several threads, each index from exactly one.
    pub(crate) fn run<'env>(&self, len: usize, f: &(dyn Fn(usize) + Sync + 'env)) {
        if len == 0 {
            return;
        }
        // SAFETY: lifetime erasure only — see the module docs for why the
        // pointer cannot outlive the borrow it erases.
        let erased: &(dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync + 'env), &(dyn Fn(usize) + Sync + 'static)>(
                f,
            )
        };
        {
            let mut state = self.shared.state.lock().unwrap();
            debug_assert!(state.job.is_none(), "overlapping EvalPool batches");
            state.job = Some(JobPtr(erased));
            state.len = len;
            state.next = 0;
            state.completed = 0;
        }
        self.shared.work.notify_all();
        // The caller works the batch alongside the pool.
        loop {
            let index = {
                let mut state = self.shared.state.lock().unwrap();
                if state.next >= state.len {
                    break;
                }
                let index = state.next;
                state.next += 1;
                index
            };
            f(index);
            finish_one(&self.shared);
        }
        let mut state = self.shared.state.lock().unwrap();
        while state.completed < state.len {
            state = self.shared.done.wait(state).unwrap();
        }
        state.job = None;
    }
}

/// Record one finished task; the last one clears the batch and wakes the
/// publisher.
fn finish_one(shared: &Shared) {
    let mut state = shared.state.lock().unwrap();
    state.completed += 1;
    if state.completed == state.len {
        state.job = None;
        shared.done.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (job, index) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = state.job {
                    if state.next < state.len {
                        let index = state.next;
                        state.next += 1;
                        break (job, index);
                    }
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        // SAFETY: the publisher blocks until `completed == len`, so the
        // closure outlives this call.
        unsafe { (*job.0)(index) };
        finish_one(shared);
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = EvalPool::new(3);
        for len in [1usize, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.run(len, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn batches_can_borrow_and_mutate_disjoint_slots() {
        let pool = EvalPool::new(2);
        let mut slots = vec![0usize; 100];
        struct SendPtr(*mut usize);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            /// # Safety
            ///
            /// `i` must be in bounds and written by one thread at a time.
            unsafe fn set(&self, i: usize, v: usize) {
                *self.0.add(i) = v;
            }
        }
        let ptr = SendPtr(slots.as_mut_ptr());
        pool.run(100, &|i| {
            // SAFETY: each index is claimed exactly once.
            unsafe { ptr.set(i, i * 2) };
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn empty_batches_and_reuse_are_fine() {
        let pool = EvalPool::new(1);
        pool.run(0, &|_| unreachable!());
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(4, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }
}
