//! The rule-body join: the interpreter loop over slot-compiled plans.
//!
//! This is the engine's hottest code.  The loop structure is classic
//! trail-based backtracking over indexed relations, but every per-probe
//! cost has been compiled away (see `crate::plan` for the compilation
//! story):
//!
//! * bindings live in a flat frame indexed by slot id — no `HashMap`
//!   insert/remove, no `Variable` hashing;
//! * index probes borrow the relation's id slice — no `to_vec()` copies;
//! * the semi-naive delta window is applied by binary-searching the
//!   (ascending) id slice — no per-id filtering;
//! * backtracking truncates a shared trail of slot ids — no per-term
//!   `vars()` vectors.
//!
//! The only remaining per-row work is the check-term matches themselves and
//! the recursion; the only allocations are one frame, one trail and one key
//! buffer per atom, all hoisted to `evaluate_rule` entry and reused.

use crate::error::EvalError;
use crate::limits::Limits;
use crate::plan::RulePlan;
use magic_datalog::{Frame, Trail, Value};
use magic_storage::{Database, Relation, Row};

/// Restriction of one body occurrence to a "delta" window of its relation
/// (row ids in `from..to`), used by semi-naive evaluation.
#[derive(Clone, Copy, Debug)]
pub struct DeltaWindow {
    /// The body occurrence (index into the rule body) that must read the
    /// delta.
    pub occurrence: usize,
    /// First row id included.
    pub from: usize,
    /// One past the last row id included.
    pub to: usize,
}

/// Counters produced by evaluating a single rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinCounters {
    /// Candidate tuples examined.
    pub probes: usize,
    /// Successful body matches (head instantiations produced).
    pub matches: usize,
}

/// Shared, read-only state of one rule evaluation.
struct JoinCtx<'a> {
    plan: &'a RulePlan,
    /// The relation of each body atom, resolved once (`None` = no relation
    /// stored, i.e. empty).
    relations: Vec<&'a Relation>,
    delta: Option<DeltaWindow>,
    limits: &'a Limits,
}

/// Evaluate one rule against `db`, appending the head row of every
/// satisfied body instantiation to `out` (all rows belong to
/// `plan.head_pred`).
///
/// If `delta` is given, the designated body occurrence only ranges over the
/// row-id window — the semi-naive restriction.
///
/// Arity mismatches between a body atom and its stored relation are
/// reported eagerly, even for atoms an empty earlier atom would have kept
/// the join from reaching.  A mismatch means the program and the database
/// disagree about a predicate; failing deterministically beats failing
/// only when the data happens to reach the inconsistent atom.
pub fn evaluate_rule(
    plan: &RulePlan,
    db: &Database,
    delta: Option<DeltaWindow>,
    limits: &Limits,
    out: &mut Vec<Row>,
) -> Result<JoinCounters, EvalError> {
    let mut counters = JoinCounters::default();
    // Resolve and arity-check each atom's relation once per rule evaluation
    // instead of once per atom visit.  Every present relation is
    // arity-checked before concluding anything, so the mismatch error does
    // not depend on whether an earlier atom happens to be missing or empty.
    let mut resolved = Vec::with_capacity(plan.atoms.len());
    for atom in &plan.atoms {
        let relation = db.relation(&atom.pred);
        if let Some(relation) = relation {
            if relation.arity() != atom.arity {
                return Err(EvalError::ArityMismatch {
                    predicate: atom.pred.to_string(),
                    rule_arity: atom.arity,
                    stored_arity: relation.arity(),
                });
            }
        }
        resolved.push(relation);
    }
    // A missing relation is empty: the conjunctive body cannot match.
    let Some(relations) = resolved.into_iter().collect::<Option<Vec<_>>>() else {
        return Ok(counters);
    };
    let ctx = JoinCtx {
        plan,
        relations,
        delta,
        limits,
    };
    let mut frame: Frame = vec![None; plan.num_slots];
    let mut trail: Trail = Vec::new();
    let mut keys: Vec<Vec<Value>> = plan
        .atoms
        .iter()
        .map(|a| Vec::with_capacity(a.key_terms.len()))
        .collect();
    descend(
        &ctx,
        0,
        &mut frame,
        &mut trail,
        &mut keys,
        out,
        &mut counters,
    )?;
    Ok(counters)
}

/// Clamp `range` to a delta window.
fn window_range(len: usize, window: Option<DeltaWindow>) -> std::ops::Range<usize> {
    match window {
        None => 0..len,
        Some(w) => w.from.min(len)..w.to.min(len),
    }
}

/// Slice the (ascending) id list down to a delta window by binary search.
fn window_slice(ids: &[usize], window: Option<DeltaWindow>) -> &[usize] {
    match window {
        None => ids,
        Some(w) => {
            let lo = ids.partition_point(|&id| id < w.from);
            let hi = ids.partition_point(|&id| id < w.to);
            &ids[lo..hi]
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn descend(
    ctx: &JoinCtx<'_>,
    depth: usize,
    frame: &mut Frame,
    trail: &mut Trail,
    keys: &mut [Vec<Value>],
    out: &mut Vec<Row>,
    counters: &mut JoinCounters,
) -> Result<(), EvalError> {
    if depth == ctx.plan.atoms.len() {
        // Body satisfied: produce the head row.
        let mut row = Vec::with_capacity(ctx.plan.head_terms.len());
        for term in &ctx.plan.head_terms {
            let value = term
                .eval_slots(frame)
                .ok_or_else(|| EvalError::NotRangeRestricted {
                    rule: ctx.plan.rule.to_string(),
                })?;
            if value.depth() > ctx.limits.max_term_depth {
                return Err(EvalError::TermDepthLimit {
                    limit: ctx.limits.max_term_depth,
                });
            }
            row.push(value);
        }
        counters.matches += 1;
        out.push(row);
        return Ok(());
    }

    let atom = &ctx.plan.atoms[depth];
    let relation = ctx.relations[depth];

    // Compute the index key from the evaluable positions — once per atom
    // visit, not per candidate row.
    {
        let key = &mut keys[depth];
        key.clear();
        for term in &atom.key_terms {
            match term.eval_slots(frame) {
                Some(v) => key.push(v),
                // A key term that fails to evaluate (e.g. a linear expression
                // over a non-integer) simply cannot match anything.
                None => return Ok(()),
            }
        }
    }

    let window = ctx.delta.filter(|w| w.occurrence == depth);

    if atom.key_positions.is_empty() {
        // No evaluable positions: scan the (windowed) relation directly.
        for id in window_range(relation.len(), window) {
            probe(ctx, depth, relation, id, frame, trail, keys, out, counters)?;
        }
    } else {
        // The borrowed-slice fast path.  `scan_select` only runs when no
        // index exists on this pattern, which the evaluator prevents by
        // ensuring indexes for every plan access path up front.
        let scanned: Vec<usize>;
        let ids: &[usize] = match relation.lookup(&atom.key_positions, &keys[depth]) {
            Some(ids) => ids,
            None => {
                scanned = relation.scan_select(&atom.key_positions, &keys[depth]);
                &scanned
            }
        };
        for &id in window_slice(ids, window) {
            probe(ctx, depth, relation, id, frame, trail, keys, out, counters)?;
        }
    }
    Ok(())
}

/// Examine one candidate row: run the atom's check program against it and
/// recurse on success.  The frame is unwound through the trail afterwards,
/// so the caller observes no binding changes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn probe(
    ctx: &JoinCtx<'_>,
    depth: usize,
    relation: &Relation,
    id: usize,
    frame: &mut Frame,
    trail: &mut Trail,
    keys: &mut [Vec<Value>],
    out: &mut Vec<Row>,
    counters: &mut JoinCounters,
) -> Result<(), EvalError> {
    counters.probes += 1;
    let row = relation.row(id);
    let mark = trail.len();
    let mut ok = true;
    for (pos, term) in &ctx.plan.atoms[depth].check {
        // A failed match unwinds its own partial bindings; earlier check
        // terms' bindings are unwound below through the trail mark.
        if !term.match_value_slots(&row[*pos], frame, trail) {
            ok = false;
            break;
        }
    }
    if ok {
        descend(ctx, depth + 1, frame, trail, keys, out, counters)?;
    }
    magic_datalog::slots::unwind(frame, trail, mark);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RulePlan;
    use magic_datalog::{parse_rule, PredName};
    use std::collections::BTreeSet;

    fn db_with_par() -> Database {
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "c", "d");
        db
    }

    fn render(pred: &str, rows: &[Row]) -> Vec<String> {
        rows.iter()
            .map(|row| {
                let args: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                format!("{pred}({})", args.join(", "))
            })
            .collect()
    }

    #[test]
    fn single_atom_rule_produces_all_matches() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        let counters = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(counters.matches, 3);
    }

    #[test]
    fn join_through_shared_variable() {
        // grand(X, Z) :- par(X, Y), par(Y, Z).
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(render("grand", &out), vec!["grand(a, c)", "grand(b, d)"]);
    }

    #[test]
    fn delta_window_restricts_one_occurrence() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        let window = DeltaWindow {
            occurrence: 0,
            from: 1,
            to: 3,
        };
        evaluate_rule(&plan, &db, Some(window), &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn delta_window_binary_searches_indexed_ids() {
        // Indexed access path (second atom keyed on Z) with a delta window
        // on the indexed occurrence: the window must slice the id list.
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = db_with_par();
        db.relation_mut(&PredName::plain("par"), 2)
            .ensure_index(&[0]);
        // Window excluding row 1 (par(b, c)): grand(a, c) needs it at
        // occurrence 1, so only grand(b, d) (via row 2) survives.
        let window = DeltaWindow {
            occurrence: 1,
            from: 2,
            to: 3,
        };
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, Some(window), &Limits::default(), &mut out).unwrap();
        assert_eq!(render("grand", &out), vec!["grand(b, d)"]);
    }

    #[test]
    fn non_range_restricted_rule_errors() {
        let rule = parse_rule("p(X, W) :- q(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        db.insert(PredName::plain("q"), vec![magic_datalog::Value::sym("a")]);
        let mut out = Vec::new();
        let err = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap_err();
        assert!(matches!(err, EvalError::NotRangeRestricted { .. }));
    }

    #[test]
    fn arity_mismatch_is_reported_even_when_an_earlier_relation_is_missing() {
        let rule = parse_rule("p(X, Y) :- nothing(X), q(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        // q stored with arity 1, used with arity 2; `nothing` is absent.
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        let mut out = Vec::new();
        let err = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap_err();
        assert!(matches!(err, EvalError::ArityMismatch { .. }));
    }

    #[test]
    fn missing_relation_is_empty() {
        let rule = parse_rule("p(X) :- nothing(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = Database::new();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn backtracking_unbinds_frame_slots_between_rows() {
        // p(X, Y) :- q(X), r(X, Y): for each q row, r is checked with X
        // bound; X must be unbound again before the next q row.
        let rule = parse_rule("p(X, Y) :- q(X), r(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        db.insert(PredName::plain("q"), vec![Value::sym("b")]);
        db.insert_pair("r", "a", "x");
        db.insert_pair("r", "b", "y");
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(render("p", &out), vec!["p(a, x)", "p(b, y)"]);
    }
}
