//! The rule-body join: the interpreter loop over slot-compiled plans.
//!
//! This is the engine's hottest code.  The loop structure is classic
//! trail-based backtracking over indexed relations, but every per-probe
//! cost has been compiled away (see `crate::plan` for the compilation
//! story):
//!
//! * bindings live in a flat frame of interned [`ValId`]s indexed by slot
//!   id — binding a variable copies four bytes, comparing a constant is a
//!   `u32` compare;
//! * index probes borrow the relation's id slice — no `to_vec()` copies;
//! * the semi-naive delta window is applied by binary-searching the
//!   (ascending) id slice — no per-id filtering;
//! * backtracking truncates a shared trail of slot ids — no per-term
//!   `vars()` vectors;
//! * output rows are appended to a **flat** `Vec<ValId>` buffer
//!   (`arity`-sized chunks) — no per-row `Vec` allocation, no `Value`
//!   clones anywhere between the stored relation and the inserted fact.
//!
//! The only remaining per-row work is the check-term matches themselves and
//! the recursion; the only allocations are one frame, one trail and one key
//! buffer per atom, all hoisted to `evaluate_rule` entry and reused.
//!
//! # Entry points
//!
//! Three consumers drive the same `descend` loop through a zero-cost
//! `MatchSink` parameter (monomorphized; the classic row-producing path
//! compiles to exactly the code it had before the abstraction existed):
//!
//! * [`evaluate_rule`] / [`evaluate_rule_windows`] — forward evaluation,
//!   appending head rows to a flat output buffer.  The `_windows` variant
//!   takes *several* delta windows (at most one per body occurrence), which
//!   is what lets the incremental-maintenance layer run the textbook
//!   *disjoint* semi-naive discipline (delta at occurrence *j*, old facts
//!   at earlier tracked occurrences) and thereby count each derivation
//!   exactly once.
//! * [`evaluate_rule_visit`] — like the above, but hands every match to a
//!   visitor together with the chosen row id per body occurrence.  The
//!   incremental counting-deletion pass uses the ids to discount
//!   derivations that an earlier-processed deleted row already accounted
//!   for.
//! * [`count_derivations`] — the *head-bound* join: match a concrete head
//!   row against the rule head, then count the body instantiations
//!   consistent with it.  This is the support oracle behind
//!   delete-and-rederive.

use crate::error::EvalError;
use crate::limits::Limits;
use crate::plan::RulePlan;
use magic_datalog::{Frame, Trail, ValId};
use magic_storage::{Database, DatabaseView, Relation};

/// Restriction of one body occurrence to a "delta" window of its relation
/// (row ids in `from..to`), used by semi-naive evaluation.
#[derive(Clone, Copy, Debug)]
pub struct DeltaWindow {
    /// The body occurrence (index into the rule body) that must read the
    /// delta.
    pub occurrence: usize,
    /// First row id included.
    pub from: usize,
    /// One past the last row id included.
    pub to: usize,
}

/// Counters produced by evaluating a single rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinCounters {
    /// Candidate tuples examined.
    pub probes: usize,
    /// Successful body matches (head instantiations produced).
    pub matches: usize,
}

/// Shared, read-only state of one rule evaluation.
struct JoinCtx<'a> {
    plan: &'a RulePlan,
    /// The relation of each body atom, resolved once (`None` = no relation
    /// stored, i.e. empty).
    relations: Vec<&'a Relation>,
    /// The relation of each negated atom (`None` = absent = empty, so the
    /// negation trivially holds).  Under stratified scheduling these are
    /// *finished* lower-stratum relations.
    neg_relations: Vec<Option<&'a Relation>>,
    /// Per-occurrence delta windows (at most one per body occurrence).
    windows: &'a [DeltaWindow],
    limits: &'a Limits,
}

/// What to do with a satisfied body instantiation.  Implementations are
/// monomorphized into `descend`, so the classic row-producing path pays
/// nothing for the abstraction, and the id-tracking push/pop in `probe` is
/// compiled out entirely when `NEEDS_IDS` is false.
trait MatchSink {
    /// Whether `probe` must maintain the per-depth chosen-row-id stack.
    const NEEDS_IDS: bool;
    /// Called once per satisfied body instantiation with the full frame and
    /// (when `NEEDS_IDS`) the chosen row id per body occurrence.
    fn emit(&mut self, ctx: &JoinCtx<'_>, frame: &Frame, chosen: &[usize])
        -> Result<(), EvalError>;
}

/// Evaluate the head terms of `ctx.plan` against `frame`, appending the
/// packed row to `out`.  An error aborts the whole rule evaluation, so a
/// partially appended row is never observed by a successful caller.
fn push_head_row(ctx: &JoinCtx<'_>, frame: &Frame, out: &mut Vec<ValId>) -> Result<(), EvalError> {
    for term in &ctx.plan.head_terms {
        let value = term.eval_slots(frame);
        if value.is_null() {
            return Err(EvalError::NotRangeRestricted {
                rule: ctx.plan.rule.to_string(),
            });
        }
        if value.depth() > ctx.limits.max_term_depth {
            return Err(EvalError::TermDepthLimit {
                limit: ctx.limits.max_term_depth,
            });
        }
        out.push(value);
    }
    Ok(())
}

/// The classic sink: append the packed head row to a flat output buffer.
struct RowSink<'a> {
    out: &'a mut Vec<ValId>,
}

impl MatchSink for RowSink<'_> {
    const NEEDS_IDS: bool = false;

    #[inline]
    fn emit(
        &mut self,
        ctx: &JoinCtx<'_>,
        frame: &Frame,
        _chosen: &[usize],
    ) -> Result<(), EvalError> {
        push_head_row(ctx, frame, self.out)
    }
}

/// Sink that hands each match (packed head row + chosen body row ids) to a
/// visitor.
struct VisitSink<'a> {
    visit: &'a mut dyn FnMut(&[ValId], &[usize]),
    /// Reusable head-row scratch.
    row: Vec<ValId>,
}

impl MatchSink for VisitSink<'_> {
    const NEEDS_IDS: bool = true;

    fn emit(
        &mut self,
        ctx: &JoinCtx<'_>,
        frame: &Frame,
        chosen: &[usize],
    ) -> Result<(), EvalError> {
        self.row.clear();
        push_head_row(ctx, frame, &mut self.row)?;
        (self.visit)(&self.row, chosen);
        Ok(())
    }
}

/// Sink that only counts (the head is already fully bound by the caller).
struct CountSink;

impl MatchSink for CountSink {
    const NEEDS_IDS: bool = false;

    #[inline]
    fn emit(&mut self, _: &JoinCtx<'_>, _: &Frame, _: &[usize]) -> Result<(), EvalError> {
        Ok(())
    }
}

/// Resolve and arity-check each body atom's relation.
///
/// Arity mismatches between a body atom and its stored relation are
/// reported eagerly, even for atoms an empty earlier atom would have kept
/// the join from reaching.  A mismatch means the program and the database
/// disagree about a predicate; failing deterministically beats failing
/// only when the data happens to reach the inconsistent atom.  Returns
/// `None` when some relation is absent (the body cannot match).
fn resolve_relations<'a>(
    plan: &RulePlan,
    db: DatabaseView<'a>,
) -> Result<Option<Vec<&'a Relation>>, EvalError> {
    let mut resolved = Vec::with_capacity(plan.atoms.len());
    for atom in &plan.atoms {
        let relation = db.relation(&atom.pred);
        if let Some(relation) = relation {
            if relation.arity() != atom.arity {
                return Err(EvalError::ArityMismatch {
                    predicate: atom.pred.to_string(),
                    rule_arity: atom.arity,
                    stored_arity: relation.arity(),
                });
            }
        }
        resolved.push(relation);
    }
    Ok(resolved.into_iter().collect())
}

/// Resolve and arity-check the negated atoms' relations.  An absent
/// relation is kept as `None`: the complement of an empty relation always
/// holds, so it must not abort the join the way an absent positive
/// relation does.
fn resolve_neg_relations<'a>(
    plan: &RulePlan,
    db: DatabaseView<'a>,
) -> Result<Vec<Option<&'a Relation>>, EvalError> {
    let mut resolved = Vec::with_capacity(plan.neg_atoms.len());
    for atom in &plan.neg_atoms {
        let relation = db.relation(&atom.pred);
        if let Some(relation) = relation {
            if relation.arity() != atom.arity {
                return Err(EvalError::ArityMismatch {
                    predicate: atom.pred.to_string(),
                    rule_arity: atom.arity,
                    stored_arity: relation.arity(),
                });
            }
        }
        resolved.push(relation);
    }
    Ok(resolved)
}

/// Drive the join for `plan` with the given sink over a pre-bound frame.
fn run_join<S: MatchSink>(
    plan: &RulePlan,
    db: &Database,
    windows: &[DeltaWindow],
    limits: &Limits,
    frame: &mut Frame,
    trail: &mut Trail,
    sink: &mut S,
) -> Result<JoinCounters, EvalError> {
    let mut counters = JoinCounters::default();
    let neg_relations = resolve_neg_relations(plan, db.view())?;
    let Some(relations) = resolve_relations(plan, db.view())? else {
        return Ok(counters);
    };
    let ctx = JoinCtx {
        plan,
        relations,
        neg_relations,
        windows,
        limits,
    };
    // One reusable key buffer per positive atom, plus one scratch row per
    // negated atom (used by the anti-join probe at full depth).
    let mut keys: Vec<Vec<ValId>> = plan
        .atoms
        .iter()
        .map(|a| Vec::with_capacity(a.key_terms.len()))
        .chain(plan.neg_atoms.iter().map(|a| Vec::with_capacity(a.arity)))
        .collect();
    let mut chosen: Vec<usize> = Vec::new();
    descend(
        &ctx,
        0,
        frame,
        trail,
        &mut keys,
        &mut chosen,
        sink,
        &mut counters,
    )?;
    Ok(counters)
}

/// Evaluate one rule against `db`, appending the packed head row of every
/// satisfied body instantiation to `out` in `arity`-sized chunks (all rows
/// belong to `plan.head_pred`).
///
/// If `delta` is given, the designated body occurrence only ranges over the
/// row-id window — the semi-naive restriction.
pub fn evaluate_rule(
    plan: &RulePlan,
    db: &Database,
    delta: Option<DeltaWindow>,
    limits: &Limits,
    out: &mut Vec<ValId>,
) -> Result<JoinCounters, EvalError> {
    match delta {
        Some(w) => evaluate_rule_windows(plan, db, &[w], limits, out),
        None => evaluate_rule_windows(plan, db, &[], limits, out),
    }
}

/// Like [`evaluate_rule`], but with several delta windows — at most one per
/// body occurrence.  An occurrence without a window ranges over the full
/// relation.  This is the primitive behind the *disjoint* semi-naive
/// discipline of the incremental layer: restricting occurrence `j` to the
/// delta and earlier tracked occurrences to the pre-delta rows enumerates
/// every new derivation exactly once.
pub fn evaluate_rule_windows(
    plan: &RulePlan,
    db: &Database,
    windows: &[DeltaWindow],
    limits: &Limits,
    out: &mut Vec<ValId>,
) -> Result<JoinCounters, EvalError> {
    let mut frame: Frame = vec![ValId::NULL; plan.num_slots];
    let mut trail: Trail = Vec::new();
    let mut sink = RowSink { out };
    run_join(plan, db, windows, limits, &mut frame, &mut trail, &mut sink)
}

/// Evaluate one rule and hand every match to `visit` together with the
/// chosen row id per body occurrence (`chosen[i]` is the row id the `i`-th
/// body atom matched).  Used by the incremental counting-deletion pass,
/// which must reject derivations whose body touches an already-processed
/// deleted row.
pub fn evaluate_rule_visit(
    plan: &RulePlan,
    db: &Database,
    windows: &[DeltaWindow],
    limits: &Limits,
    visit: &mut dyn FnMut(&[ValId], &[usize]),
) -> Result<JoinCounters, EvalError> {
    let mut frame: Frame = vec![ValId::NULL; plan.num_slots];
    let mut trail: Trail = Vec::new();
    let mut sink = VisitSink {
        visit,
        row: Vec::with_capacity(plan.head_terms.len()),
    };
    run_join(plan, db, windows, limits, &mut frame, &mut trail, &mut sink)
}

/// The head-bound join: count the body instantiations of `plan` (against
/// `db`) whose head row equals the packed `row`.  Matching the head terms
/// first binds the head variables, so the body join runs with those
/// positions fixed — with the indexes the evaluator maintains this is a
/// narrow probe, not a rule-wide scan.
///
/// Returns 0 when the head does not match `row` at all (wrong constants or
/// non-invertible terms).  This is the one-step support oracle used by
/// delete-and-rederive: a deleted row with a positive count from the
/// remaining database has an alternative derivation and must survive.
pub fn count_derivations(
    plan: &RulePlan,
    db: &Database,
    row: &[ValId],
    limits: &Limits,
) -> Result<usize, EvalError> {
    if plan.head_terms.len() != row.len() {
        return Ok(0);
    }
    let mut frame: Frame = vec![ValId::NULL; plan.num_slots];
    let mut trail: Trail = Vec::new();
    for (term, value) in plan.head_terms.iter().zip(row) {
        if !term.match_value_slots(*value, &mut frame, &mut trail) {
            return Ok(0);
        }
    }
    let mut sink = CountSink;
    let counters = run_join(plan, db, &[], limits, &mut frame, &mut trail, &mut sink)?;
    Ok(counters.matches)
}

/// The row-id range the join's outermost (occurrence-0) enumeration will
/// cover for `plan` under `windows`: the occurrence-0 delta window when one
/// exists, else the full extent of the lead atom's relation snapshot.
/// `(0, 0)` for empty-body plans or an absent lead relation.
///
/// This is the axis the scheduler shards across workers: occurrence 0 is
/// the outermost loop of `descend`, so partitioning its range partitions
/// the join's probes and — because ids enumerate in ascending order — the
/// concatenated shard outputs reproduce the unsharded row sequence.
pub(crate) fn lead_enumeration_range(
    plan: &RulePlan,
    db: &Database,
    windows: &[DeltaWindow],
) -> (usize, usize) {
    let Some(pred) = plan.lead_pred() else {
        return (0, 0);
    };
    let Some(snapshot) = db.view().snapshot(pred) else {
        return (0, 0);
    };
    let watermark = snapshot.watermark();
    match windows.iter().find(|w| w.occurrence == 0) {
        Some(w) => (w.from.min(watermark), w.to.min(watermark)),
        None => (0, watermark),
    }
}

/// Clamp `range` to a delta window.
fn window_range(len: usize, window: Option<DeltaWindow>) -> std::ops::Range<usize> {
    match window {
        None => 0..len,
        Some(w) => w.from.min(len)..w.to.min(len),
    }
}

/// Slice the (ascending) id list down to a delta window by binary search.
fn window_slice(ids: &[usize], window: Option<DeltaWindow>) -> &[usize] {
    match window {
        None => ids,
        Some(w) => {
            let lo = ids.partition_point(|&id| id < w.from);
            let hi = ids.partition_point(|&id| id < w.to);
            &ids[lo..hi]
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn descend<S: MatchSink>(
    ctx: &JoinCtx<'_>,
    depth: usize,
    frame: &mut Frame,
    trail: &mut Trail,
    keys: &mut [Vec<ValId>],
    chosen: &mut Vec<usize>,
    sink: &mut S,
    counters: &mut JoinCounters,
) -> Result<(), EvalError> {
    if depth == ctx.plan.atoms.len() {
        // Anti-join: a satisfied positive body only counts as a match if no
        // negated atom's (fully bound) row is present in its relation.
        for (j, neg) in ctx.plan.neg_atoms.iter().enumerate() {
            let key = &mut keys[ctx.plan.atoms.len() + j];
            key.clear();
            for term in &neg.terms {
                let v = term.eval_slots(frame);
                if v.is_null() {
                    return Err(EvalError::UnsafeNegation {
                        rule: ctx.plan.rule.to_string(),
                    });
                }
                key.push(v);
            }
            if let Some(relation) = ctx.neg_relations[j] {
                counters.probes += 1;
                if relation.contains_ids(key) {
                    return Ok(());
                }
            }
        }
        counters.matches += 1;
        return sink.emit(ctx, frame, chosen);
    }

    let atom = &ctx.plan.atoms[depth];
    let relation = ctx.relations[depth];

    // Compute the index key from the evaluable positions — once per atom
    // visit, not per candidate row.
    {
        let key = &mut keys[depth];
        key.clear();
        for term in &atom.key_terms {
            let v = term.eval_slots(frame);
            // A key term that fails to evaluate (e.g. a linear expression
            // over a non-integer) simply cannot match anything.
            if v.is_null() {
                return Ok(());
            }
            key.push(v);
        }
    }

    let window = ctx.windows.iter().find(|w| w.occurrence == depth).copied();

    if atom.key_positions.is_empty() {
        // No evaluable positions: scan the (windowed) relation directly.
        // The scan ranges over row-id space up to the watermark; tombstoned
        // slots are skipped *before* the probe counter, so removal leaves
        // probe counts exactly as if the dead rows had never existed (the
        // liveness test is hoisted behind one well-predicted flag for the
        // common tombstone-free case).
        let has_dead = relation.tombstones() != 0;
        for id in window_range(relation.watermark(), window) {
            if has_dead && !relation.is_live(id) {
                continue;
            }
            probe(
                ctx, depth, relation, id, frame, trail, keys, chosen, sink, counters,
            )?;
        }
    } else {
        // The borrowed-slice fast path.  `scan_select` only runs when no
        // index exists on this pattern, which the evaluator prevents by
        // ensuring indexes for every plan access path up front.  Index id
        // lists contain live rows only (removal drops ids eagerly).
        let scanned: Vec<usize>;
        let ids: &[usize] = match relation.lookup(&atom.key_positions, &keys[depth]) {
            Some(ids) => ids,
            None => {
                scanned = relation.scan_select(&atom.key_positions, &keys[depth]);
                &scanned
            }
        };
        for &id in window_slice(ids, window) {
            probe(
                ctx, depth, relation, id, frame, trail, keys, chosen, sink, counters,
            )?;
        }
    }
    Ok(())
}

/// Examine one candidate row: run the atom's check program against it and
/// recurse on success.  The frame is unwound through the trail afterwards,
/// so the caller observes no binding changes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn probe<S: MatchSink>(
    ctx: &JoinCtx<'_>,
    depth: usize,
    relation: &Relation,
    id: usize,
    frame: &mut Frame,
    trail: &mut Trail,
    keys: &mut [Vec<ValId>],
    chosen: &mut Vec<usize>,
    sink: &mut S,
    counters: &mut JoinCounters,
) -> Result<(), EvalError> {
    counters.probes += 1;
    let row = relation.row_ids(id);
    let mark = trail.len();
    let mut ok = true;
    for (pos, term) in &ctx.plan.atoms[depth].check {
        // A failed match unwinds its own partial bindings; earlier check
        // terms' bindings are unwound below through the trail mark.
        if !term.match_value_slots(row[*pos], frame, trail) {
            ok = false;
            break;
        }
    }
    if ok {
        if S::NEEDS_IDS {
            chosen.push(id);
        }
        descend(ctx, depth + 1, frame, trail, keys, chosen, sink, counters)?;
        if S::NEEDS_IDS {
            chosen.pop();
        }
    }
    magic_datalog::slots::unwind(frame, trail, mark);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RulePlan;
    use magic_datalog::{parse_rule, PredName, Value};
    use magic_storage::arena::decode_row;
    use std::collections::BTreeSet;

    fn db_with_par() -> Database {
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "c", "d");
        db
    }

    fn render_flat(pred: &str, arity: usize, out: &[ValId]) -> Vec<String> {
        out.chunks_exact(arity)
            .map(|row| {
                let args: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                format!("{pred}({})", args.join(", "))
            })
            .collect()
    }

    #[test]
    fn single_atom_rule_produces_all_matches() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        let counters = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len() / 2, 3);
        assert_eq!(counters.matches, 3);
    }

    #[test]
    fn join_through_shared_variable() {
        // grand(X, Z) :- par(X, Y), par(Y, Z).
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(
            render_flat("grand", 2, &out),
            vec!["grand(a, c)", "grand(b, d)"]
        );
    }

    #[test]
    fn delta_window_restricts_one_occurrence() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        let window = DeltaWindow {
            occurrence: 0,
            from: 1,
            to: 3,
        };
        evaluate_rule(&plan, &db, Some(window), &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len() / 2, 2);
    }

    #[test]
    fn delta_window_binary_searches_indexed_ids() {
        // Indexed access path (second atom keyed on Z) with a delta window
        // on the indexed occurrence: the window must slice the id list.
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = db_with_par();
        db.relation_mut(&PredName::plain("par"), 2)
            .ensure_index(&[0]);
        // Window excluding row 1 (par(b, c)): grand(a, c) needs it at
        // occurrence 1, so only grand(b, d) (via row 2) survives.
        let window = DeltaWindow {
            occurrence: 1,
            from: 2,
            to: 3,
        };
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, Some(window), &Limits::default(), &mut out).unwrap();
        assert_eq!(render_flat("grand", 2, &out), vec!["grand(b, d)"]);
    }

    #[test]
    fn multiple_windows_restrict_independent_occurrences() {
        // Both occurrences windowed: only derivations whose first row is in
        // [0, 2) AND second row is in [2, 3) survive.
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let windows = [
            DeltaWindow {
                occurrence: 0,
                from: 0,
                to: 2,
            },
            DeltaWindow {
                occurrence: 1,
                from: 2,
                to: 3,
            },
        ];
        let mut out = Vec::new();
        evaluate_rule_windows(&plan, &db, &windows, &Limits::default(), &mut out).unwrap();
        // Only grand(b, d): par(b, c) at id 1 joined with par(c, d) at id 2.
        assert_eq!(render_flat("grand", 2, &out), vec!["grand(b, d)"]);
    }

    #[test]
    fn tombstoned_rows_are_skipped_without_probes() {
        // Remove the middle row: the scan path must neither match nor
        // count it, exactly as if it had never been inserted.
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = db_with_par();
        db.remove(&PredName::plain("par"), &[Value::sym("b"), Value::sym("c")]);
        let mut out = Vec::new();
        let counters = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(counters.probes, 2);
        assert_eq!(render_flat("anc", 2, &out), vec!["anc(a, b)", "anc(c, d)"]);
    }

    #[test]
    fn visit_reports_chosen_row_ids() {
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut seen: Vec<(String, Vec<usize>)> = Vec::new();
        evaluate_rule_visit(&plan, &db, &[], &Limits::default(), &mut |row, ids| {
            seen.push((render_flat("grand", 2, row).remove(0), ids.to_vec()));
        })
        .unwrap();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                ("grand(a, c)".to_string(), vec![0, 1]),
                ("grand(b, d)".to_string(), vec![1, 2]),
            ]
        );
    }

    #[test]
    fn count_derivations_is_the_head_bound_join() {
        use magic_storage::arena::intern_row;
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let a_b = intern_row(&[Value::sym("a"), Value::sym("b")]);
        let a_z = intern_row(&[Value::sym("a"), Value::sym("z")]);
        assert_eq!(
            count_derivations(&plan, &db, &a_b, &Limits::default()).unwrap(),
            1
        );
        assert_eq!(
            count_derivations(&plan, &db, &a_z, &Limits::default()).unwrap(),
            0
        );
        // Multiple derivations of the same head row.
        let rule = parse_rule("reach(X) :- par(Y, X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = db_with_par();
        db.insert_pair("par", "z", "b");
        let b = intern_row(&[Value::sym("b")]);
        assert_eq!(
            count_derivations(&plan, &db, &b, &Limits::default()).unwrap(),
            2
        );
    }

    #[test]
    fn negated_atom_is_an_anti_join() {
        // stuck(X) :- pos(X), not can_move(X).
        let rule = parse_rule("stuck(X) :- pos(X), not can_move(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        for p in ["a", "b", "c"] {
            db.insert(PredName::plain("pos"), vec![Value::sym(p)]);
        }
        db.insert(PredName::plain("can_move"), vec![Value::sym("a")]);
        let mut out = Vec::new();
        let counters = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(render_flat("stuck", 1, &out), vec!["stuck(b)", "stuck(c)"]);
        assert_eq!(counters.matches, 2);

        // An absent negated relation means the negation trivially holds.
        let rule = parse_rule("all(X) :- pos(X), not nothing(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unbound_negated_variable_is_reported() {
        let rule = parse_rule("p(X) :- q(X), not r(Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        db.insert(PredName::plain("r"), vec![Value::sym("b")]);
        let mut out = Vec::new();
        let err = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap_err();
        assert!(matches!(err, EvalError::UnsafeNegation { .. }));
    }

    #[test]
    fn non_range_restricted_rule_errors() {
        let rule = parse_rule("p(X, W) :- q(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        let mut out = Vec::new();
        let err = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap_err();
        assert!(matches!(err, EvalError::NotRangeRestricted { .. }));
    }

    #[test]
    fn arity_mismatch_is_reported_even_when_an_earlier_relation_is_missing() {
        let rule = parse_rule("p(X, Y) :- nothing(X), q(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        // q stored with arity 1, used with arity 2; `nothing` is absent.
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        let mut out = Vec::new();
        let err = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap_err();
        assert!(matches!(err, EvalError::ArityMismatch { .. }));
    }

    #[test]
    fn missing_relation_is_empty() {
        let rule = parse_rule("p(X) :- nothing(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = Database::new();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn backtracking_unbinds_frame_slots_between_rows() {
        // p(X, Y) :- q(X), r(X, Y): for each q row, r is checked with X
        // bound; X must be unbound again before the next q row.
        let rule = parse_rule("p(X, Y) :- q(X), r(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        db.insert(PredName::plain("q"), vec![Value::sym("a")]);
        db.insert(PredName::plain("q"), vec![Value::sym("b")]);
        db.insert_pair("r", "a", "x");
        db.insert_pair("r", "b", "y");
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(render_flat("p", 2, &out), vec!["p(a, x)", "p(b, y)"]);
    }

    #[test]
    fn flat_rows_decode_back_to_values() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        let first = decode_row(&out[..2]);
        assert_eq!(first, vec![Value::sym("a"), Value::sym("b")]);
    }
}
