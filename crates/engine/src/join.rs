//! The rule-body join: trail-based backtracking over indexed relations.

use crate::error::EvalError;
use crate::limits::Limits;
use crate::plan::RulePlan;
use magic_datalog::{Bindings, Fact, Value, Variable};
use magic_storage::Database;

/// Restriction of one body occurrence to a "delta" window of its relation
/// (row ids in `from..to`), used by semi-naive evaluation.
#[derive(Clone, Copy, Debug)]
pub struct DeltaWindow {
    /// The body occurrence (index into the rule body) that must read the
    /// delta.
    pub occurrence: usize,
    /// First row id included.
    pub from: usize,
    /// One past the last row id included.
    pub to: usize,
}

/// Counters produced by evaluating a single rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinCounters {
    /// Candidate tuples examined.
    pub probes: usize,
    /// Successful body matches (head instantiations produced).
    pub matches: usize,
}

/// Evaluate one rule against `db`, appending every head fact produced by a
/// satisfied body to `out`.
///
/// If `delta` is given, the designated body occurrence only ranges over the
/// row-id window — the semi-naive restriction.
pub fn evaluate_rule(
    plan: &RulePlan,
    db: &Database,
    delta: Option<DeltaWindow>,
    limits: &Limits,
    out: &mut Vec<Fact>,
) -> Result<JoinCounters, EvalError> {
    let mut env = Bindings::new();
    let mut counters = JoinCounters::default();
    descend(plan, db, delta, limits, 0, &mut env, out, &mut counters)?;
    Ok(counters)
}

#[allow(clippy::too_many_arguments)]
fn descend(
    plan: &RulePlan,
    db: &Database,
    delta: Option<DeltaWindow>,
    limits: &Limits,
    depth: usize,
    env: &mut Bindings,
    out: &mut Vec<Fact>,
    counters: &mut JoinCounters,
) -> Result<(), EvalError> {
    if depth == plan.atoms.len() {
        // Body satisfied: produce the head fact.
        let fact = plan.rule.head.eval(env).ok_or_else(|| EvalError::NotRangeRestricted {
            rule: plan.rule.to_string(),
        })?;
        if fact
            .values
            .iter()
            .any(|v| v.depth() > limits.max_term_depth)
        {
            return Err(EvalError::TermDepthLimit {
                limit: limits.max_term_depth,
            });
        }
        counters.matches += 1;
        out.push(fact);
        return Ok(());
    }

    let atom_plan = &plan.atoms[depth];
    let Some(relation) = db.relation(&atom_plan.pred) else {
        return Ok(()); // empty relation: no matches
    };
    if relation.arity() != atom_plan.arity {
        return Err(EvalError::ArityMismatch {
            predicate: atom_plan.pred.to_string(),
            rule_arity: atom_plan.arity,
            stored_arity: relation.arity(),
        });
    }

    // Compute the index key from the evaluable positions.
    let mut key: Vec<Value> = Vec::with_capacity(atom_plan.key_terms.len());
    for term in &atom_plan.key_terms {
        match term.eval(env) {
            Some(v) => key.push(v),
            // A key term that fails to evaluate (e.g. a linear expression
            // over a non-integer) simply cannot match anything.
            None => return Ok(()),
        }
    }

    let ids: Vec<usize> = if atom_plan.key_positions.is_empty() {
        (0..relation.len()).collect()
    } else {
        match relation.lookup(&atom_plan.key_positions, &key) {
            Some(ids) => ids.to_vec(),
            None => relation.scan_select(&atom_plan.key_positions, &key),
        }
    };

    let window = delta.filter(|w| w.occurrence == depth);

    for id in ids {
        if let Some(w) = window {
            if id < w.from || id >= w.to {
                continue;
            }
        }
        counters.probes += 1;
        let row = relation.row(id);
        // Match the non-key positions, recording newly bound variables so we
        // can backtrack.
        let mut trail: Vec<Variable> = Vec::new();
        let mut ok = true;
        for (pos, term) in &atom_plan.check {
            let before: Vec<Variable> = term
                .vars()
                .into_iter()
                .filter(|v| !env.contains_key(v))
                .collect();
            if term.match_value(&row[*pos], env) {
                for v in before {
                    if env.contains_key(&v) {
                        trail.push(v);
                    }
                }
            } else {
                // Partial bindings from a failed match must also be undone.
                for v in before {
                    env.remove(&v);
                }
                ok = false;
                break;
            }
        }
        if ok {
            descend(plan, db, delta, limits, depth + 1, env, out, counters)?;
        }
        for v in trail {
            env.remove(&v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RulePlan;
    use magic_datalog::{parse_rule, PredName};
    use std::collections::BTreeSet;

    fn db_with_par() -> Database {
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "c", "d");
        db
    }

    #[test]
    fn single_atom_rule_produces_all_matches() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        let counters = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(counters.matches, 3);
    }

    #[test]
    fn join_through_shared_variable() {
        // grand(X, Z) :- par(X, Y), par(Y, Z).
        let rule = parse_rule("grand(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        let rendered: Vec<String> = out.iter().map(|f| f.to_string()).collect();
        assert_eq!(rendered, vec!["grand(a, c)", "grand(b, d)"]);
    }

    #[test]
    fn delta_window_restricts_one_occurrence() {
        let rule = parse_rule("anc(X, Y) :- par(X, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = db_with_par();
        let mut out = Vec::new();
        let window = DeltaWindow {
            occurrence: 0,
            from: 1,
            to: 3,
        };
        evaluate_rule(&plan, &db, Some(window), &Limits::default(), &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn non_range_restricted_rule_errors() {
        let rule = parse_rule("p(X, W) :- q(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let mut db = Database::new();
        db.insert(PredName::plain("q"), vec![magic_datalog::Value::sym("a")]);
        let mut out = Vec::new();
        let err = evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap_err();
        assert!(matches!(err, EvalError::NotRangeRestricted { .. }));
    }

    #[test]
    fn missing_relation_is_empty() {
        let rule = parse_rule("p(X) :- nothing(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        let db = Database::new();
        let mut out = Vec::new();
        evaluate_rule(&plan, &db, None, &Limits::default(), &mut out).unwrap();
        assert!(out.is_empty());
    }
}
