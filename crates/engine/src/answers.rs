//! Extracting query answers from an evaluated database.

use magic_datalog::{Atom, Bindings, Query, Value, Variable};
use magic_storage::Database;
use std::collections::BTreeSet;

/// The positions of `atom` holding ground terms, with their values.
///
/// These are the bound constants of a query atom — the selection the
/// relation's hash indexes can answer directly.
fn ground_positions(atom: &Atom) -> Option<(Vec<usize>, Vec<Value>)> {
    let empty = Bindings::new();
    let mut positions = Vec::new();
    let mut key = Vec::new();
    for (p, term) in atom.terms.iter().enumerate() {
        if term.vars().is_empty() {
            // A ground term that does not evaluate (only possible for
            // malformed linear expressions) matches nothing.
            positions.push(p);
            key.push(term.eval(&empty)?);
        }
    }
    Some((positions, key))
}

/// Ensure the relation of `atom` carries an index on the atom's
/// bound-constant positions, so that [`match_atom`]'s `select_ids`-style
/// probe hits it.  The planner calls this once per executed plan before
/// projecting answers; it is a no-op for fully free atoms.
pub fn ensure_atom_index(db: &mut Database, atom: &Atom) {
    let Some((positions, _)) = ground_positions(atom) else {
        return;
    };
    if positions.is_empty() {
        return;
    }
    let relation = db.relation_mut(&atom.pred, atom.arity());
    if relation.arity() == atom.arity() {
        relation.ensure_index(&positions);
    }
}

/// All binding environments under which `atom` matches a stored fact.
///
/// When the atom carries bound constants, the candidate rows are selected
/// through the relation's hash index on those positions (the same
/// `ensure_index`/`lookup` pair `Relation::select_ids` is built from)
/// instead of scanning every row; `scan_select` is the fallback when no
/// index has been ensured on the pattern yet.  Rows are decoded from the
/// packed storage only for the candidates that reach the matcher — this is
/// the API edge where `Value`s re-enter.
pub fn match_atom(db: &Database, atom: &Atom) -> Vec<Bindings> {
    let Some(relation) = db.relation(&atom.pred) else {
        return Vec::new();
    };
    if relation.arity() != atom.arity() {
        return Vec::new();
    }
    let Some((positions, key)) = ground_positions(atom) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut match_id = |id: usize| {
        let mut env = Bindings::new();
        if atom.match_row(&relation.row_values(id), &mut env) {
            out.push(env);
        }
    };
    if positions.is_empty() {
        for (id, _) in relation.iter_ids() {
            match_id(id);
        }
    } else {
        let key = magic_storage::arena::intern_row(&key);
        match relation.lookup(&positions, &key) {
            Some(ids) => ids.iter().for_each(|&id| match_id(id)),
            None => relation
                .scan_select(&positions, &key)
                .into_iter()
                .for_each(&mut match_id),
        }
    }
    out
}

/// The distinct value vectors taken by `projection` (a list of variables of
/// `atom`) over all matches of `atom` in `db`.
pub fn project_answers(
    db: &Database,
    atom: &Atom,
    projection: &[Variable],
) -> BTreeSet<Vec<Value>> {
    match_atom(db, atom)
        .into_iter()
        .filter_map(|env| {
            projection
                .iter()
                .map(|v| env.get(v).cloned())
                .collect::<Option<Vec<Value>>>()
        })
        .collect()
}

/// The answers to a query: the distinct vectors of values for the query's
/// free variables, in the order the variables appear in the query atom.
///
/// This is "the set of bindings to the vector of variables X that make the
/// query expression true" from Section 1.1.
pub fn query_answers(db: &Database, query: &Query) -> BTreeSet<Vec<Value>> {
    let projection = query.free_vars();
    project_answers(db, &query.atom, &projection)
}

/// True iff the database contains at least one match for the query.
pub fn holds(db: &Database, query: &Query) -> bool {
    !match_atom(db, &query.atom).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_query, PredName, Term};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_pair("anc", "john", "mary");
        db.insert_pair("anc", "john", "ann");
        db.insert_pair("anc", "mary", "ann");
        db
    }

    #[test]
    fn query_answers_filters_on_bound_args() {
        let q = parse_query("anc(john, Y)").unwrap();
        let answers = query_answers(&db(), &q);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![Value::sym("mary")]));
        assert!(answers.contains(&vec![Value::sym("ann")]));
    }

    #[test]
    fn fully_free_query_returns_all_rows() {
        let q = parse_query("anc(X, Y)").unwrap();
        assert_eq!(query_answers(&db(), &q).len(), 3);
    }

    #[test]
    fn fully_bound_query_acts_as_membership_test() {
        let yes = parse_query("anc(john, ann)").unwrap();
        let no = parse_query("anc(ann, john)").unwrap();
        assert!(holds(&db(), &yes));
        assert!(!holds(&db(), &no));
        // A fully bound query has no free variables: one empty answer row.
        assert_eq!(query_answers(&db(), &yes).len(), 1);
        assert_eq!(query_answers(&db(), &no).len(), 0);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut d = db();
        d.insert_pair("anc", "x", "x");
        let atom = Atom::plain("anc", vec![Term::var("X"), Term::var("X")]);
        let matches = match_atom(&d, &atom);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn missing_relation_gives_no_answers() {
        let q = parse_query("unknown(X)").unwrap();
        assert!(query_answers(&db(), &q).is_empty());
        assert!(!holds(&db(), &q));
    }

    #[test]
    fn project_on_subset_of_variables() {
        let atom = Atom::plain("anc", vec![Term::var("X"), Term::var("Y")]);
        let proj = project_answers(&db(), &atom, &[Variable::new("X")]);
        assert_eq!(proj.len(), 2); // john, mary
        assert!(proj.contains(&vec![Value::sym("john")]));
        let _ = PredName::plain("anc");
    }
}
