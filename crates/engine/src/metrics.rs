//! Evaluation metrics.
//!
//! Section 9 of the paper compares strategies by the *facts* and *subqueries*
//! they generate; Section 11 and the companion study \[5\] compare them by rule
//! firings and duplicate derivations.  These counters make all of those
//! observable.

use magic_datalog::PredName;
use std::collections::BTreeMap;
use std::fmt;

/// Counters collected during one evaluation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations executed.
    pub iterations: usize,
    /// Number of successful rule firings (head instantiations produced,
    /// including duplicates of already-known facts).
    pub rule_firings: usize,
    /// Number of *new* facts derived (excluding the base facts).
    pub facts_derived: usize,
    /// Number of duplicate derivations (firings whose head fact was already
    /// known).
    pub duplicate_derivations: usize,
    /// Number of candidate tuples examined while joining rule bodies.
    pub join_probes: usize,
    /// New facts per predicate.
    pub facts_by_pred: BTreeMap<PredName, usize>,
    /// Firings per rule index.
    pub firings_by_rule: BTreeMap<usize, usize>,
}

impl EvalStats {
    /// Record a successful firing of rule `rule_idx` deriving `pred`;
    /// `is_new` indicates whether the head fact was new.
    pub fn record_firing(&mut self, rule_idx: usize, pred: &PredName, is_new: bool) {
        self.rule_firings += 1;
        *self.firings_by_rule.entry(rule_idx).or_insert(0) += 1;
        if is_new {
            self.facts_derived += 1;
            // Clone the name only on the first fact of a predicate.
            if let Some(n) = self.facts_by_pred.get_mut(pred) {
                *n += 1;
            } else {
                self.facts_by_pred.insert(pred.clone(), 1);
            }
        } else {
            self.duplicate_derivations += 1;
        }
    }

    /// Record `fired` firings of rule `rule_idx` deriving `pred`, `new` of
    /// which produced new facts — the bulk form of
    /// [`EvalStats::record_firing`], used by the parallel merge phase to
    /// fold a whole per-relation insert batch into the counters at once.
    /// The result is bit-identical to `fired` individual `record_firing`
    /// calls with `new` of them flagged new, in any order: every counter
    /// here is a sum.
    pub fn record_firings(&mut self, rule_idx: usize, pred: &PredName, fired: usize, new: usize) {
        debug_assert!(new <= fired);
        if fired == 0 {
            return;
        }
        self.rule_firings += fired;
        *self.firings_by_rule.entry(rule_idx).or_insert(0) += fired;
        self.facts_derived += new;
        self.duplicate_derivations += fired - new;
        if new > 0 {
            if let Some(n) = self.facts_by_pred.get_mut(pred) {
                *n += new;
            } else {
                self.facts_by_pred.insert(pred.clone(), new);
            }
        }
    }

    /// Accumulate another run's counters into these (the per-predicate and
    /// per-rule breakdowns are summed key-wise).  The incremental view
    /// layer uses this to keep lifetime maintenance totals per view, and
    /// the serving layer to aggregate across every view of a catalog.
    pub fn merge(&mut self, other: &EvalStats) {
        self.iterations += other.iterations;
        self.rule_firings += other.rule_firings;
        self.facts_derived += other.facts_derived;
        self.duplicate_derivations += other.duplicate_derivations;
        self.join_probes += other.join_probes;
        for (pred, n) in &other.facts_by_pred {
            *self.facts_by_pred.entry(pred.clone()).or_insert(0) += n;
        }
        for (rule, n) in &other.firings_by_rule {
            *self.firings_by_rule.entry(*rule).or_insert(0) += n;
        }
    }

    /// Total facts derived for predicates satisfying `filter`.
    pub fn facts_matching(&self, mut filter: impl FnMut(&PredName) -> bool) -> usize {
        self.facts_by_pred
            .iter()
            .filter(|(p, _)| filter(p))
            .map(|(_, n)| n)
            .sum()
    }

    /// Facts derived in auxiliary (magic / supplementary / counting)
    /// predicates.
    pub fn auxiliary_facts(&self) -> usize {
        self.facts_matching(|p| p.is_auxiliary())
    }

    /// Facts derived in answer (plain / adorned / indexed) predicates.
    pub fn answer_facts(&self) -> usize {
        self.facts_matching(|p| p.is_answer_predicate())
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "iterations: {}, firings: {}, new facts: {}, duplicates: {}, join probes: {}",
            self.iterations,
            self.rule_firings,
            self.facts_derived,
            self.duplicate_derivations,
            self.join_probes
        )?;
        for (pred, n) in &self.facts_by_pred {
            writeln!(f, "  {pred}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_firings_match_individual_recording() {
        let p = PredName::plain("anc");
        let mut bulk = EvalStats::default();
        bulk.record_firings(2, &p, 5, 3);
        bulk.record_firings(2, &p, 0, 0); // no-op, inserts no entries
        bulk.record_firings(3, &p, 4, 0); // duplicates only: no facts_by_pred entry
        let mut one = EvalStats::default();
        for i in 0..5 {
            one.record_firing(2, &p, i < 3);
        }
        for _ in 0..4 {
            one.record_firing(3, &p, false);
        }
        assert_eq!(bulk, one);
    }

    #[test]
    fn record_firing_updates_counters() {
        let mut s = EvalStats::default();
        let p = PredName::plain("anc");
        let m = PredName::magic("anc", "bf".parse().unwrap());
        s.record_firing(0, &p, true);
        s.record_firing(0, &p, false);
        s.record_firing(1, &m, true);
        assert_eq!(s.rule_firings, 3);
        assert_eq!(s.facts_derived, 2);
        assert_eq!(s.duplicate_derivations, 1);
        assert_eq!(s.facts_by_pred[&p], 1);
        assert_eq!(s.firings_by_rule[&0], 2);
        assert_eq!(s.auxiliary_facts(), 1);
        assert_eq!(s.answer_facts(), 1);
        assert!(s.to_string().contains("firings: 3"));
    }
}
