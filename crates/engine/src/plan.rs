//! Compiled evaluation plans for rules: the slot-frame join machine.
//!
//! # Design: compile-time variable slots
//!
//! A rule is evaluated left-to-right (the rewrites of `magic-core` emit rule
//! bodies already ordered according to the sip, with guard literals first).
//! Historically the join carried a `HashMap<Variable, Value>` environment:
//! every candidate tuple hashed variable keys, inserted and removed map
//! entries, and allocated a `Vec` of variables per checked term to know what
//! to undo on backtracking.  All of that work is resolvable at
//! compile time, so [`RulePlan::compile`] now does it once per rule:
//!
//! * **Dense slot numbering.**  Every variable of the rule (body first, in
//!   binding order, then any head-only variables) is assigned a dense slot
//!   id `0..num_slots`.  The run-time environment is then a flat *frame*
//!   `Vec<Option<Value>>` indexed by slot id — no hashing, no map nodes —
//!   allocated once per rule evaluation and reused across all candidate
//!   tuples.
//!
//! * **Per-atom key extractor programs.**  For each body atom we precompute
//!   which argument positions are fully evaluable by the time the atom is
//!   reached (all their variables bound by earlier atoms, or ground).
//!   Those become `key_positions`/`key_terms`: an index key evaluated once
//!   per atom *visit* (not per candidate row) and handed to
//!   `Relation::lookup`, which returns a borrowed id slice — the join never
//!   copies id vectors.
//!
//! * **Per-atom check programs.**  The remaining positions become `check`:
//!   [`SlotTerm`]s matched against each candidate row.
//!   `SlotTerm::match_value_slots` records newly bound slots on a shared
//!   *trail* (`Vec<u32>`); backtracking truncates the trail and clears the
//!   recorded frame entries.  Nothing in the per-row path allocates.
//!
//! * **Slot-compiled head.**  The head atom's terms are compiled to
//!   [`SlotTerm`]s too, so producing an output row is a frame read per
//!   argument.
//!
//! The semi-naive delta restriction composes with this machinery by
//! *slicing* the borrowed id sequence: index id lists are in ascending row-id
//! order (rows are append-only), so a delta window `[from, to)` is a binary
//! search, not a per-id filter.  See `crate::join` for the interpreter loop
//! over these programs.

use magic_datalog::{PredName, Rule, SlotTerm, Variable};
use std::collections::BTreeSet;

/// A compiled negated body atom: by the safety condition every variable is
/// bound once the positive body is solved, so the whole atom compiles to a
/// row of evaluable [`SlotTerm`]s — the anti-join is a single
/// `Relation::contains_ids` probe against the finished lower-stratum
/// relation per satisfied positive instantiation.
#[derive(Clone, Debug)]
pub struct NegAtomPlan {
    /// The predicate this atom complements against.
    pub pred: PredName,
    /// The atom's arity.
    pub arity: usize,
    /// The slot-compiled terms, one per position.
    pub terms: Vec<SlotTerm>,
}

/// The per-atom part of a compiled rule plan.
#[derive(Clone, Debug)]
pub struct AtomPlan {
    /// The predicate this atom reads.
    pub pred: PredName,
    /// The atom's arity.
    pub arity: usize,
    /// Positions whose terms are fully evaluable when the atom is reached
    /// (all their variables bound by earlier atoms, or ground).
    pub key_positions: Vec<usize>,
    /// The slot-compiled terms at `key_positions`.
    pub key_terms: Vec<SlotTerm>,
    /// The remaining positions, with their slot-compiled terms, matched
    /// against each candidate row (extending the frame).
    pub check: Vec<(usize, SlotTerm)>,
}

/// A compiled rule: the original rule plus per-atom access plans in terms of
/// dense variable slots (see the module docs).
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// The source rule (kept for diagnostics and error messages).
    pub rule: Rule,
    /// The index of the rule in the program (used in metrics).
    pub rule_idx: usize,
    /// The head predicate (every output row of this plan belongs to it).
    pub head_pred: PredName,
    /// The slot-compiled head argument terms.
    pub head_terms: Vec<SlotTerm>,
    /// Number of variable slots; the join allocates one frame of this size.
    pub num_slots: usize,
    /// Slot id -> source variable (diagnostics only).
    pub slot_vars: Vec<Variable>,
    /// Access plans, one per body atom, in evaluation order.
    pub atoms: Vec<AtomPlan>,
    /// Anti-join plans for the negated atoms, checked once per satisfied
    /// positive instantiation (after all body atoms, before emitting).
    pub neg_atoms: Vec<NegAtomPlan>,
    /// Body occurrence indices whose predicate is derived in the program
    /// (candidates for delta-restricted evaluation in semi-naive mode).
    pub derived_occurrences: Vec<usize>,
}

impl RulePlan {
    /// The predicate read by the first body atom, if any — the join's
    /// outermost enumeration, and therefore the axis the stratified
    /// scheduler shards across worker threads (see `crate::evaluator`).
    pub fn lead_pred(&self) -> Option<&PredName> {
        self.atoms.first().map(|a| &a.pred)
    }

    /// Compile a rule.  `derived` is the set of predicates defined by rules
    /// of the program being evaluated.
    pub fn compile(rule: &Rule, rule_idx: usize, derived: &BTreeSet<PredName>) -> RulePlan {
        RulePlan::compile_inner(rule, rule_idx, derived, false)
    }

    /// Compile the **head-bound** variant of a rule: the access plans are
    /// computed as if every head variable were already bound when the body
    /// starts.  This is the right plan for the head-bound join
    /// (`count_derivations`): the caller matches a concrete row against the
    /// head first, so leading body atoms sharing head variables probe
    /// indexes instead of being scanned.  Match *results* are identical to
    /// the forward plan's — only the access paths differ.
    pub fn compile_head_bound(
        rule: &Rule,
        rule_idx: usize,
        derived: &BTreeSet<PredName>,
    ) -> RulePlan {
        RulePlan::compile_inner(rule, rule_idx, derived, true)
    }

    fn compile_inner(
        rule: &Rule,
        rule_idx: usize,
        derived: &BTreeSet<PredName>,
        head_bound: bool,
    ) -> RulePlan {
        let mut slot_vars: Vec<Variable> = Vec::new();
        let mut slot_of = |v: Variable| -> u32 {
            match slot_vars.iter().position(|&u| u == v) {
                Some(i) => i as u32,
                None => {
                    slot_vars.push(v);
                    (slot_vars.len() - 1) as u32
                }
            }
        };
        let mut bound: BTreeSet<Variable> = BTreeSet::new();
        if head_bound {
            // Successfully matching the head row binds every head variable
            // (compound patterns bind recursively; linear terms either
            // invert or fail), so the body may treat them as given.
            bound.extend(rule.head.vars());
        }
        let mut atoms = Vec::with_capacity(rule.body.len());
        let mut derived_occurrences = Vec::new();
        for (i, atom) in rule.body.iter().enumerate() {
            let mut key_positions = Vec::new();
            let mut key_terms = Vec::new();
            let mut check = Vec::new();
            for (p, term) in atom.terms.iter().enumerate() {
                let vars = term.vars();
                if vars.iter().all(|v| bound.contains(v)) {
                    key_positions.push(p);
                    key_terms.push(term.to_slots(&mut slot_of));
                } else {
                    check.push((p, term.to_slots(&mut slot_of)));
                }
            }
            // After this atom is solved, all its variables are bound.
            bound.extend(atom.vars());
            if derived.contains(&atom.pred) {
                derived_occurrences.push(i);
            }
            atoms.push(AtomPlan {
                pred: atom.pred.clone(),
                arity: atom.arity(),
                key_positions,
                key_terms,
                check,
            });
        }
        // Negated atoms compile after the whole positive body: safety
        // guarantees their variables are bound by then, so every term is
        // evaluable.  (An unsafe rule that slips through still compiles —
        // its unbound slots stay NULL and the join reports UnsafeNegation.)
        let neg_atoms = rule
            .negated
            .iter()
            .map(|atom| NegAtomPlan {
                pred: atom.pred.clone(),
                arity: atom.arity(),
                terms: atom
                    .terms
                    .iter()
                    .map(|t| t.to_slots(&mut slot_of))
                    .collect(),
            })
            .collect();
        let head_terms = rule
            .head
            .terms
            .iter()
            .map(|t| t.to_slots(&mut slot_of))
            .collect();
        let num_slots = slot_vars.len();
        RulePlan {
            rule: rule.clone(),
            rule_idx,
            head_pred: rule.head.pred.clone(),
            head_terms,
            num_slots,
            slot_vars,
            atoms,
            neg_atoms,
            derived_occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::parse_rule;

    #[test]
    fn key_positions_follow_left_to_right_binding() {
        let rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).").unwrap();
        let derived: BTreeSet<PredName> = [PredName::plain("anc")].into_iter().collect();
        let plan = RulePlan::compile(&rule, 1, &derived);
        // par(X, Z): nothing bound yet, both positions are checks.
        assert!(plan.atoms[0].key_positions.is_empty());
        assert_eq!(plan.atoms[0].check.len(), 2);
        // anc(Z, Y): Z is bound by par, Y is not.
        assert_eq!(plan.atoms[1].key_positions, vec![0]);
        assert_eq!(plan.atoms[1].check.len(), 1);
        assert_eq!(plan.derived_occurrences, vec![1]);
    }

    #[test]
    fn ground_arguments_are_keys() {
        let rule = parse_rule("p(X) :- q(john, X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        assert_eq!(plan.atoms[0].key_positions, vec![0]);
        assert!(plan.derived_occurrences.is_empty());
    }

    #[test]
    fn compound_terms_partially_bound_are_checks() {
        let rule = parse_rule("p(X, Y) :- q(X), r(f(X, Y)).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        // f(X, Y): X bound by q but Y free -> not evaluable, so a check.
        assert!(plan.atoms[1].key_positions.is_empty());
        assert_eq!(plan.atoms[1].check.len(), 1);
    }

    #[test]
    fn slots_are_dense_and_shared_across_atoms() {
        let rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        // X, Z from par; Y from anc: three dense slots.
        assert_eq!(plan.num_slots, 3);
        use magic_datalog::Variable;
        assert_eq!(
            plan.slot_vars,
            vec![Variable::new("X"), Variable::new("Z"), Variable::new("Y")]
        );
        // The key of the second atom reads the slot Z was bound to (1).
        assert_eq!(plan.atoms[1].key_terms, vec![SlotTerm::Slot(1)]);
        // The head reads slots 0 and 2.
        assert_eq!(plan.head_terms, vec![SlotTerm::Slot(0), SlotTerm::Slot(2)]);
    }

    #[test]
    fn head_only_variables_get_slots() {
        // Not range-restricted: W never occurs in the body; it still gets a
        // slot (which stays unbound, surfacing the error at evaluation).
        let rule = parse_rule("p(X, W) :- q(X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        assert_eq!(plan.num_slots, 2);
        assert_eq!(plan.head_terms.len(), 2);
    }
}
