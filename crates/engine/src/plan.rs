//! Compiled evaluation plans for rules.
//!
//! A rule is evaluated left-to-right (the rewrites of `magic-core` emit rule
//! bodies already ordered according to the sip, with guard literals first).
//! For each body atom we precompute which argument positions will be fully
//! evaluable — usable as an index key — by the time the atom is reached, and
//! which positions must be matched tuple-by-tuple.

use magic_datalog::{PredName, Rule, Term, Variable};
use std::collections::BTreeSet;

/// The per-atom part of a compiled rule plan.
#[derive(Clone, Debug)]
pub struct AtomPlan {
    /// The predicate this atom reads.
    pub pred: PredName,
    /// The atom's arity.
    pub arity: usize,
    /// Positions whose terms are fully evaluable when the atom is reached
    /// (all their variables bound by earlier atoms, or ground).
    pub key_positions: Vec<usize>,
    /// The terms at `key_positions`.
    pub key_terms: Vec<Term>,
    /// The remaining positions, with their terms, matched against each
    /// candidate row (extending the environment).
    pub check: Vec<(usize, Term)>,
}

/// A compiled rule: the original rule plus per-atom access plans.
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// The source rule.
    pub rule: Rule,
    /// The index of the rule in the program (used in metrics).
    pub rule_idx: usize,
    /// Access plans, one per body atom, in evaluation order.
    pub atoms: Vec<AtomPlan>,
    /// Body occurrence indices whose predicate is derived in the program
    /// (candidates for delta-restricted evaluation in semi-naive mode).
    pub derived_occurrences: Vec<usize>,
}

impl RulePlan {
    /// Compile a rule.  `derived` is the set of predicates defined by rules
    /// of the program being evaluated.
    pub fn compile(rule: &Rule, rule_idx: usize, derived: &BTreeSet<PredName>) -> RulePlan {
        let mut bound: BTreeSet<Variable> = BTreeSet::new();
        let mut atoms = Vec::with_capacity(rule.body.len());
        let mut derived_occurrences = Vec::new();
        for (i, atom) in rule.body.iter().enumerate() {
            let mut key_positions = Vec::new();
            let mut key_terms = Vec::new();
            let mut check = Vec::new();
            for (p, term) in atom.terms.iter().enumerate() {
                let vars = term.vars();
                if vars.iter().all(|v| bound.contains(v)) {
                    key_positions.push(p);
                    key_terms.push(term.clone());
                } else {
                    check.push((p, term.clone()));
                }
            }
            // After this atom is solved, all its variables are bound.
            bound.extend(atom.vars());
            if derived.contains(&atom.pred) {
                derived_occurrences.push(i);
            }
            atoms.push(AtomPlan {
                pred: atom.pred.clone(),
                arity: atom.arity(),
                key_positions,
                key_terms,
                check,
            });
        }
        RulePlan {
            rule: rule.clone(),
            rule_idx,
            atoms,
            derived_occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::parse_rule;

    #[test]
    fn key_positions_follow_left_to_right_binding() {
        let rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).").unwrap();
        let derived: BTreeSet<PredName> = [PredName::plain("anc")].into_iter().collect();
        let plan = RulePlan::compile(&rule, 1, &derived);
        // par(X, Z): nothing bound yet, both positions are checks.
        assert!(plan.atoms[0].key_positions.is_empty());
        assert_eq!(plan.atoms[0].check.len(), 2);
        // anc(Z, Y): Z is bound by par, Y is not.
        assert_eq!(plan.atoms[1].key_positions, vec![0]);
        assert_eq!(plan.atoms[1].check.len(), 1);
        assert_eq!(plan.derived_occurrences, vec![1]);
    }

    #[test]
    fn ground_arguments_are_keys() {
        let rule = parse_rule("p(X) :- q(john, X).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        assert_eq!(plan.atoms[0].key_positions, vec![0]);
        assert!(plan.derived_occurrences.is_empty());
    }

    #[test]
    fn compound_terms_partially_bound_are_checks() {
        let rule = parse_rule("p(X, Y) :- q(X), r(f(X, Y)).").unwrap();
        let plan = RulePlan::compile(&rule, 0, &BTreeSet::new());
        // f(X, Y): X bound by q but Y free -> not evaluable, so a check.
        assert!(plan.atoms[1].key_positions.is_empty());
        assert_eq!(plan.atoms[1].check.len(), 1);
    }
}
