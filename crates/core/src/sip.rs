//! Sideways information passing strategies (sips), Section 2 of the paper.
//!
//! A sip for a rule is a labelled graph whose nodes are the special head
//! node `p_h` (the head predicate restricted to its bound arguments) and the
//! body predicate occurrences, and whose arcs `N →_χ q` say: *the join of the
//! predicates in N produces bindings for the variables χ, which are passed to
//! the occurrence q*.

use magic_datalog::{Adornment, Rule, Variable};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A node of a sip graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SipNode {
    /// The special node `p_h`: the rule head restricted to its bound
    /// arguments.
    Head,
    /// The body predicate occurrence with the given index (0-based position
    /// in the rule body).
    Body(usize),
}

impl fmt::Display for SipNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipNode::Head => write!(f, "head"),
            SipNode::Body(i) => write!(f, "body[{i}]"),
        }
    }
}

/// An arc `N →_χ q` of a sip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SipArc {
    /// The tail set `N`.
    pub tail: BTreeSet<SipNode>,
    /// The target body occurrence `q` (index into the rule body).
    pub target: usize,
    /// The label `χ`: the variables whose bindings are passed.
    pub label: BTreeSet<Variable>,
}

/// Errors raised by sip validation (conditions (1)–(3) of Section 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SipError {
    /// An arc target is not a body occurrence of the rule.
    TargetOutOfRange {
        /// The offending target index.
        target: usize,
    },
    /// A tail node is not a body occurrence of the rule.
    TailOutOfRange {
        /// The offending node.
        node: usize,
    },
    /// Condition (2)(i): a label variable does not appear in the tail.
    LabelVariableNotInTail {
        /// The variable.
        variable: String,
        /// The arc target.
        target: usize,
    },
    /// Condition (2)(ii): a tail member is not connected to any label
    /// variable (within the rule's variable-connection relation).
    TailMemberNotConnected {
        /// The offending node.
        node: SipNode,
        /// The arc target.
        target: usize,
    },
    /// Condition (2)(iii): a label variable does not appear in any argument
    /// of the target that is fully covered by the label.
    LabelVariableNotCovering {
        /// The variable.
        variable: String,
        /// The arc target.
        target: usize,
    },
    /// Condition (3): the precedence relation induced by the sip is cyclic.
    CyclicPrecedence,
}

impl fmt::Display for SipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipError::TargetOutOfRange { target } => {
                write!(f, "sip arc target {target} is out of range")
            }
            SipError::TailOutOfRange { node } => {
                write!(f, "sip tail node {node} is out of range")
            }
            SipError::LabelVariableNotInTail { variable, target } => write!(
                f,
                "label variable {variable} of the arc into body[{target}] does not appear in the arc's tail"
            ),
            SipError::TailMemberNotConnected { node, target } => write!(
                f,
                "tail member {node} of the arc into body[{target}] is not connected to any label variable"
            ),
            SipError::LabelVariableNotCovering { variable, target } => write!(
                f,
                "label variable {variable} does not cover any argument of body[{target}]"
            ),
            SipError::CyclicPrecedence => {
                write!(f, "the precedence relation induced by the sip is cyclic")
            }
        }
    }
}

impl std::error::Error for SipError {}

/// A sip for one rule under one head adornment.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Sip {
    /// The arcs of the sip.
    pub arcs: Vec<SipArc>,
}

impl Sip {
    /// A sip with no arcs: no information is passed sideways (every body
    /// literal is evaluated with all arguments free).
    pub fn empty() -> Sip {
        Sip { arcs: Vec::new() }
    }

    /// The arcs entering body occurrence `target`.
    pub fn arcs_into(&self, target: usize) -> Vec<&SipArc> {
        self.arcs.iter().filter(|a| a.target == target).collect()
    }

    /// The union of the labels of all arcs entering `target` — the variable
    /// set χ used to adorn the occurrence (Section 3).
    pub fn passed_vars(&self, target: usize) -> BTreeSet<Variable> {
        self.arcs_into(target)
            .into_iter()
            .flat_map(|a| a.label.iter().copied())
            .collect()
    }

    /// True iff some arc enters `target`.
    pub fn has_arc_into(&self, target: usize) -> bool {
        self.arcs.iter().any(|a| a.target == target)
    }

    /// The body occurrence indices that receive at least one arc.
    pub fn targets(&self) -> BTreeSet<usize> {
        self.arcs.iter().map(|a| a.target).collect()
    }

    /// A total evaluation order of the body occurrences consistent with the
    /// sip's precedence relation (condition (3')): occurrences appearing in
    /// the sip come first, in an order where every tail member precedes the
    /// arc's target, and occurrences not in the sip follow, in textual order.
    pub fn total_order(&self, body_len: usize) -> Result<Vec<usize>, SipError> {
        // Precedence edges between body occurrences.
        let mut preds: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let mut in_sip: BTreeSet<usize> = BTreeSet::new();
        for arc in &self.arcs {
            in_sip.insert(arc.target);
            for node in &arc.tail {
                if let SipNode::Body(j) = node {
                    in_sip.insert(*j);
                    preds.entry(arc.target).or_default().insert(*j);
                }
            }
        }
        // Kahn's algorithm over the occurrences that appear in the sip,
        // breaking ties by textual position for determinism.
        let mut order = Vec::with_capacity(body_len);
        let mut placed: BTreeSet<usize> = BTreeSet::new();
        while placed.len() < in_sip.len() {
            let next = in_sip
                .iter()
                .copied()
                .find(|i| {
                    !placed.contains(i)
                        && preds
                            .get(i)
                            .map(|ps| ps.iter().all(|p| placed.contains(p)))
                            .unwrap_or(true)
                })
                .ok_or(SipError::CyclicPrecedence)?;
            placed.insert(next);
            order.push(next);
        }
        for i in 0..body_len {
            if !in_sip.contains(&i) {
                order.push(i);
            }
        }
        Ok(order)
    }

    /// Validate the sip against its rule and head adornment (conditions
    /// (1)–(3) of Section 2).
    pub fn validate(&self, rule: &Rule, head_adornment: &Adornment) -> Result<(), SipError> {
        let head_bound_vars: BTreeSet<Variable> = head_adornment
            .bound_positions()
            .into_iter()
            .flat_map(|p| rule.head.terms[p].vars())
            .collect();
        // The connectivity relation on variables within the rule.
        let connected = connected_variables(rule);
        for arc in &self.arcs {
            if arc.target >= rule.body.len() {
                return Err(SipError::TargetOutOfRange { target: arc.target });
            }
            // Variables available in the tail.
            let mut tail_vars: BTreeSet<Variable> = BTreeSet::new();
            for node in &arc.tail {
                match node {
                    SipNode::Head => tail_vars.extend(head_bound_vars.iter().copied()),
                    SipNode::Body(j) => {
                        if *j >= rule.body.len() {
                            return Err(SipError::TailOutOfRange { node: *j });
                        }
                        tail_vars.extend(rule.body[*j].vars());
                    }
                }
            }
            // (2)(i) every label variable appears in the tail.
            for v in &arc.label {
                if !tail_vars.contains(v) {
                    return Err(SipError::LabelVariableNotInTail {
                        variable: v.name().to_string(),
                        target: arc.target,
                    });
                }
            }
            // (2)(ii) every tail member is connected to a label variable.
            for node in &arc.tail {
                let member_vars: BTreeSet<Variable> = match node {
                    SipNode::Head => head_bound_vars.clone(),
                    SipNode::Body(j) => rule.body[*j].vars().into_iter().collect(),
                };
                let ok = member_vars.iter().any(|mv| {
                    arc.label.iter().any(|lv| {
                        mv == lv || connected.get(mv).map(|s| s.contains(lv)).unwrap_or(false)
                    })
                });
                if !ok && !arc.label.is_empty() {
                    return Err(SipError::TailMemberNotConnected {
                        node: *node,
                        target: arc.target,
                    });
                }
            }
            // (2)(iii) every label variable appears in some argument of the
            // target all of whose variables are labelled.
            let target_atom = &rule.body[arc.target];
            for v in &arc.label {
                let covers = target_atom.terms.iter().any(|t| {
                    let vars = t.vars();
                    !vars.is_empty()
                        && vars.contains(v)
                        && vars.iter().all(|tv| arc.label.contains(tv))
                });
                if !covers {
                    return Err(SipError::LabelVariableNotCovering {
                        variable: v.name().to_string(),
                        target: arc.target,
                    });
                }
            }
        }
        // (3) acyclicity of the induced precedence relation.
        self.total_order(rule.body.len())?;
        Ok(())
    }

    /// Sip containment (Section 2.1): `self ⊆ other` iff for every arc
    /// `N →_χ q` of `self` there is an arc `N' →_χ' q` of `other` with
    /// `N ⊆ N'` and `χ ⊆ χ'`.
    pub fn contained_in(&self, other: &Sip) -> bool {
        self.arcs.iter().all(|a| {
            other.arcs.iter().any(|b| {
                b.target == a.target && a.tail.is_subset(&b.tail) && a.label.is_subset(&b.label)
            })
        })
    }

    /// True iff `self` is a *partial* sip relative to `other`: it is
    /// contained in `other` and the containment is proper.
    pub fn partial_of(&self, other: &Sip) -> bool {
        self.contained_in(other) && !other.contained_in(self)
    }
}

impl fmt::Display for Sip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, arc) in self.arcs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{{")?;
            for (j, node) in arc.tail.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{node}")?;
            }
            write!(f, "}} -")?;
            for (j, v) in arc.label.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "-> body[{}]", arc.target)?;
        }
        Ok(())
    }
}

/// The symmetric, transitive "connected" relation on the variables of a rule
/// (Section 1.1): two variables are connected if they occur in the same
/// predicate occurrence, extended through chains.
fn connected_variables(rule: &Rule) -> BTreeMap<Variable, BTreeSet<Variable>> {
    let mut adjacency: BTreeMap<Variable, BTreeSet<Variable>> = BTreeMap::new();
    let mut note_group = |vars: Vec<Variable>| {
        for a in &vars {
            for b in &vars {
                if a != b {
                    adjacency.entry(*a).or_default().insert(*b);
                }
            }
            adjacency.entry(*a).or_default();
        }
    };
    note_group(rule.head.vars());
    for atom in &rule.body {
        note_group(atom.vars());
    }
    // Transitive closure by BFS from each variable (rules are tiny).
    let vars: Vec<Variable> = adjacency.keys().copied().collect();
    let mut closure: BTreeMap<Variable, BTreeSet<Variable>> = BTreeMap::new();
    for &v in &vars {
        let mut seen = BTreeSet::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                if let Some(next) = adjacency.get(&x) {
                    stack.extend(next.iter().copied().filter(|n| !seen.contains(n)));
                }
            }
        }
        seen.remove(&v);
        closure.insert(v, seen);
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::parse_rule;

    fn vset(names: &[&str]) -> BTreeSet<Variable> {
        names.iter().map(|n| Variable::new(n)).collect()
    }

    fn sg_rule() -> Rule {
        parse_rule("sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).")
            .unwrap()
    }

    /// The full sip (I)/(IV) of Example 1 for the nonlinear same-generation
    /// rule under the `bf` head adornment.
    fn full_sip() -> Sip {
        Sip {
            arcs: vec![
                SipArc {
                    tail: [SipNode::Head, SipNode::Body(0)].into_iter().collect(),
                    target: 1,
                    label: vset(&["Z1"]),
                },
                SipArc {
                    tail: [
                        SipNode::Head,
                        SipNode::Body(0),
                        SipNode::Body(1),
                        SipNode::Body(2),
                    ]
                    .into_iter()
                    .collect(),
                    target: 3,
                    label: vset(&["Z3"]),
                },
            ],
        }
    }

    /// The partial sip (II)/(V) of Example 1.
    fn partial_sip() -> Sip {
        Sip {
            arcs: vec![
                SipArc {
                    tail: [SipNode::Head, SipNode::Body(0)].into_iter().collect(),
                    target: 1,
                    label: vset(&["Z1"]),
                },
                SipArc {
                    tail: [SipNode::Body(1), SipNode::Body(2)].into_iter().collect(),
                    target: 3,
                    label: vset(&["Z3"]),
                },
            ],
        }
    }

    #[test]
    fn example_sips_validate() {
        let rule = sg_rule();
        let bf: Adornment = "bf".parse().unwrap();
        assert_eq!(full_sip().validate(&rule, &bf), Ok(()));
        assert_eq!(partial_sip().validate(&rule, &bf), Ok(()));
    }

    #[test]
    fn containment_classifies_partial_sips() {
        assert!(partial_sip().contained_in(&full_sip()));
        assert!(!full_sip().contained_in(&partial_sip()));
        assert!(partial_sip().partial_of(&full_sip()));
        assert!(!full_sip().partial_of(&partial_sip()));
        assert!(full_sip().contained_in(&full_sip()));
    }

    #[test]
    fn condition_2i_label_not_in_tail() {
        let rule = sg_rule();
        let bf: Adornment = "bf".parse().unwrap();
        let bad = Sip {
            arcs: vec![SipArc {
                tail: [SipNode::Head].into_iter().collect(),
                target: 1,
                label: vset(&["Z1"]), // Z1 does not appear in the head
            }],
        };
        assert!(matches!(
            bad.validate(&rule, &bf),
            Err(SipError::LabelVariableNotInTail { .. })
        ));
    }

    #[test]
    fn condition_2iii_label_must_cover_an_argument() {
        // sg(X, Y) :- up(X, Z1), pair(Z1, Z2, W), ...  label {Z1} into an
        // atom whose arguments are f(Z1, W) and Y: Z1 does not cover any
        // argument alone.
        let rule = parse_rule("p(X, Y) :- up(X, Z1), q(f(Z1, W), Y).").unwrap();
        let bf: Adornment = "bf".parse().unwrap();
        let bad = Sip {
            arcs: vec![SipArc {
                tail: [SipNode::Head, SipNode::Body(0)].into_iter().collect(),
                target: 1,
                label: vset(&["Z1"]),
            }],
        };
        assert!(matches!(
            bad.validate(&rule, &bf),
            Err(SipError::LabelVariableNotCovering { .. })
        ));
    }

    #[test]
    fn condition_3_cyclic_precedence_rejected() {
        let rule = parse_rule("p(X) :- q(X, Y), r(Y, X).").unwrap();
        let b: Adornment = "b".parse().unwrap();
        // q assumes Y is bound by r, r assumes X is bound by q: cyclic.
        let bad = Sip {
            arcs: vec![
                SipArc {
                    tail: [SipNode::Body(1)].into_iter().collect(),
                    target: 0,
                    label: vset(&["Y"]),
                },
                SipArc {
                    tail: [SipNode::Body(0)].into_iter().collect(),
                    target: 1,
                    label: vset(&["X", "Y"]),
                },
            ],
        };
        assert_eq!(bad.validate(&rule, &b), Err(SipError::CyclicPrecedence));
    }

    #[test]
    fn total_order_respects_precedence() {
        let order = full_sip().total_order(5).unwrap();
        assert_eq!(order.len(), 5);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(2) < pos(3));
        // Occurrence 4 (down) is not in the sip and comes last.
        assert_eq!(order[4], 4);
    }

    #[test]
    fn passed_vars_unions_arc_labels() {
        let sip = full_sip();
        assert_eq!(sip.passed_vars(1), vset(&["Z1"]));
        assert_eq!(sip.passed_vars(3), vset(&["Z3"]));
        assert!(sip.passed_vars(0).is_empty());
        assert!(sip.has_arc_into(3));
        assert!(!sip.has_arc_into(4));
        assert_eq!(sip.targets(), [1, 3].into_iter().collect());
    }

    #[test]
    fn empty_sip_is_contained_in_everything() {
        assert!(Sip::empty().contained_in(&full_sip()));
        assert!(Sip::empty()
            .validate(&sg_rule(), &"bf".parse().unwrap())
            .is_ok());
    }

    #[test]
    fn display_is_readable() {
        let s = full_sip().to_string();
        assert!(s.contains("head"));
        assert!(s.contains("body[1]"));
    }
}
