//! # magic-core
//!
//! The paper's contribution, reproduced as a library: sideways information
//! passing strategies (Section 2), adorned programs (Section 3), the
//! generalized magic-sets (Section 4), generalized supplementary magic-sets
//! (Section 5), generalized counting (Section 6) and generalized
//! supplementary counting (Section 7) rewrites, the semijoin optimization
//! (Section 8), sip-optimality accounting (Section 9) and safety analyses
//! (Section 10) — all over the `magic-datalog` / `magic-engine` substrate.
//!
//! The high-level entry point is [`planner::Planner`], which takes a program,
//! a query and a strategy, performs the adornment and rewriting, evaluates
//! bottom-up and returns the answers together with evaluation metrics.
//!
//! ```
//! use magic_core::planner::{Planner, Strategy};
//! use magic_datalog::{parse_program, parse_query};
//! use magic_storage::Database;
//!
//! let program = parse_program(
//!     "anc(X, Y) :- par(X, Y).
//!      anc(X, Y) :- par(X, Z), anc(Z, Y).",
//! )
//! .unwrap();
//! let query = parse_query("anc(ann, Y)").unwrap();
//! let mut db = Database::new();
//! db.insert_pair("par", "ann", "bob");
//! db.insert_pair("par", "bob", "cal");
//! db.insert_pair("par", "zoe", "yan"); // unrelated to the query
//!
//! let plan = Planner::new(Strategy::SupplementaryMagicSets)
//!     .plan(&program, &query)
//!     .unwrap();
//! let result = plan.execute(&db).unwrap();
//! assert_eq!(result.answers.len(), 2); // bob, cal — zoe's family is never touched
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adorn;
pub mod optimality;
pub mod planner;
pub mod rewrite;
pub mod safety;
pub mod sip;
pub mod sip_builder;

pub use adorn::{adorn, AdornedProgram, AdornedRule};
pub use planner::{Plan, PlanResult, Planner, Strategy};
pub use rewrite::{Method, RewriteError, RewrittenProgram};
pub use sip::{Sip, SipArc, SipError, SipNode};
pub use sip_builder::SipStrategy;
