//! The adorned rule set (Section 3).
//!
//! Given a program, a query and a sip strategy, construct the adorned
//! program `P^ad`: starting from the query's binding pattern, each reachable
//! (predicate, adornment) pair gets one adorned version of every rule
//! defining the predicate, with body literals adorned according to the
//! chosen sip.

use crate::sip::Sip;
use crate::sip_builder::SipStrategy;
use magic_datalog::{Adornment, Atom, DatalogError, PredName, Program, Query, Rule, Symbol};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One adorned rule: the rewritten rule, its provenance, and the sip that
/// produced it.
#[derive(Clone, Debug)]
pub struct AdornedRule {
    /// The adorned rule.  Derived literals carry [`PredName::Adorned`] names;
    /// base literals keep their plain names.  The body is ordered according
    /// to the sip's total order.
    pub rule: Rule,
    /// The adornment of the head predicate.
    pub head_adornment: Adornment,
    /// Index of the rule in the original program this was generated from.
    pub original_rule_idx: usize,
    /// The sip attached to this adorned rule.  Arc targets refer to
    /// positions of the (reordered) adorned body.
    pub sip: Sip,
    /// Per body literal: the adornment (for derived literals) or `None`
    /// (for base literals).
    pub body_adornments: Vec<Option<Adornment>>,
}

impl AdornedRule {
    /// The base (un-adorned) head predicate symbol.
    pub fn head_base(&self) -> Symbol {
        self.rule.head.pred.base()
    }
}

/// The adorned program `P^ad` together with the query information needed by
/// the subsequent rewrites.
#[derive(Clone, Debug)]
pub struct AdornedProgram {
    /// The adorned rules, in generation order.
    pub rules: Vec<AdornedRule>,
    /// The original query.
    pub query: Query,
    /// The query's adornment.
    pub query_adornment: Adornment,
    /// The base symbol of the query predicate.
    pub query_pred: Symbol,
    /// The derived predicates of the original program.
    pub derived: BTreeSet<PredName>,
    /// All (predicate, adornment) pairs generated.
    pub adorned_preds: BTreeSet<(Symbol, Adornment)>,
}

impl AdornedProgram {
    /// The adorned program as a plain [`Program`] (e.g. for direct bottom-up
    /// evaluation, which by Theorem 3.1 computes the same relations as the
    /// original program for every adorned predicate).
    pub fn to_program(&self) -> Program {
        Program::from_rules(self.rules.iter().map(|r| r.rule.clone()).collect())
    }

    /// The adorned name of the query predicate (`q^c` in the paper).
    pub fn query_pred_name(&self) -> PredName {
        PredName::Adorned {
            base: self.query_pred,
            adornment: self.query_adornment.clone(),
        }
    }

    /// The atom to match against an evaluated database to read off the
    /// query's answers.
    pub fn answer_atom(&self) -> Atom {
        Atom::new(self.query_pred_name(), self.query.atom.terms.clone())
    }

    /// The maximum body length over all adorned rules (the paper's `t`,
    /// used as the base of the counting methods' occurrence encoding).
    pub fn max_body_len(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.rule.body.len())
            .max()
            .unwrap_or(0)
    }
}

/// Turn an atom over a derived predicate into its adorned version.
pub fn adorned_atom(atom: &Atom, adornment: Adornment) -> Atom {
    Atom::new(
        PredName::Adorned {
            base: atom.pred.base(),
            adornment,
        },
        atom.terms.clone(),
    )
}

/// Construct the adorned program for `(program, query)` using `strategy` to
/// choose one sip per (rule, head-adornment) pair.
pub fn adorn(
    program: &Program,
    query: &Query,
    strategy: SipStrategy,
) -> Result<AdornedProgram, DatalogError> {
    program.predicate_arities()?;
    for rule in &program.rules {
        rule.check_connected()?;
    }
    let derived = program.derived_preds();
    let query_pred = query.pred().base();
    if !derived.contains(&PredName::Plain(query_pred))
        && !program.base_preds().contains(&PredName::Plain(query_pred))
    {
        return Err(DatalogError::UnknownQueryPredicate {
            predicate: query_pred.to_string(),
        });
    }
    let query_adornment = query.adornment();

    let mut result = AdornedProgram {
        rules: Vec::new(),
        query: query.clone(),
        query_adornment: query_adornment.clone(),
        query_pred,
        derived: derived.clone(),
        adorned_preds: BTreeSet::new(),
    };

    // Work-list of unprocessed adorned predicates.
    let mut queue: VecDeque<(Symbol, Adornment)> = VecDeque::new();
    let mut seen: BTreeSet<(Symbol, Adornment)> = BTreeSet::new();
    if derived.contains(&PredName::Plain(query_pred)) {
        queue.push_back((query_pred, query_adornment.clone()));
        seen.insert((query_pred, query_adornment));
    }

    while let Some((pred, adornment)) = queue.pop_front() {
        result.adorned_preds.insert((pred, adornment.clone()));
        for (original_rule_idx, rule) in program.rules_for(&PredName::Plain(pred)) {
            let sip = strategy.build(rule, &adornment, &derived);
            let order = sip
                .total_order(rule.body.len())
                .expect("built-in sip strategies produce acyclic sips");

            // Reorder the body according to the sip's total order and remap
            // the sip arcs through the permutation.
            let permuted_body: Vec<Atom> = order.iter().map(|&i| rule.body[i].clone()).collect();
            let new_pos: BTreeMap<usize, usize> = order
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            let remapped_sip = Sip {
                arcs: sip
                    .arcs
                    .iter()
                    .map(|arc| crate::sip::SipArc {
                        tail: arc
                            .tail
                            .iter()
                            .map(|n| match n {
                                crate::sip::SipNode::Head => crate::sip::SipNode::Head,
                                crate::sip::SipNode::Body(j) => {
                                    crate::sip::SipNode::Body(new_pos[j])
                                }
                            })
                            .collect(),
                        target: new_pos[&arc.target],
                        label: arc.label.clone(),
                    })
                    .collect(),
            };

            // Adorn each body literal: an argument is bound iff all its
            // variables are passed by the arcs entering the literal.
            let mut body = Vec::with_capacity(permuted_body.len());
            let mut body_adornments = Vec::with_capacity(permuted_body.len());
            for (i, atom) in permuted_body.iter().enumerate() {
                if derived.contains(&atom.pred) {
                    // Per Section 3: an occurrence with no incoming arc gets
                    // the all-free adornment; otherwise an argument is bound
                    // iff all its variables are passed by the incoming arcs.
                    let body_adornment = if remapped_sip.has_arc_into(i) {
                        atom.adornment_under(&remapped_sip.passed_vars(i))
                    } else {
                        Adornment::all_free(atom.arity())
                    };
                    let base = atom.pred.base();
                    if seen.insert((base, body_adornment.clone())) {
                        queue.push_back((base, body_adornment.clone()));
                    }
                    body.push(adorned_atom(atom, body_adornment.clone()));
                    body_adornments.push(Some(body_adornment));
                } else {
                    body.push(atom.clone());
                    body_adornments.push(None);
                }
            }

            let head = Atom::new(
                PredName::Adorned {
                    base: pred,
                    adornment: adornment.clone(),
                },
                rule.head.terms.clone(),
            );
            // Negated atoms are not sideways-information sources (v1):
            // adornment passes over them — they keep their plain names and
            // ride along unchanged, to be complemented against the *full*
            // relation (the planner appends their unrewritten cones).  An
            // aggregate head likewise passes through untouched; the
            // rewrites themselves refuse aggregate programs upstream.
            let mut adorned_rule = Rule::new(head, body).with_negated(rule.negated.clone());
            if let Some(agg) = &rule.aggregate {
                adorned_rule = adorned_rule.with_aggregate(agg.clone());
            }
            result.rules.push(AdornedRule {
                rule: adorned_rule,
                head_adornment: adornment.clone(),
                original_rule_idx,
                sip: remapped_sip,
                body_adornments,
            });
        }
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_program, parse_query};

    fn sg_program() -> Program {
        parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap()
    }

    #[test]
    fn example_3_nonlinear_same_generation() {
        // Example 3 of the paper: the adorned rule set for sg(john, Y)?
        let program = sg_program();
        let query = parse_query("sg(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        assert_eq!(adorned.rules.len(), 2);
        assert_eq!(adorned.query_adornment.to_string(), "bf");
        assert_eq!(
            adorned.rules[0].rule.to_string(),
            "sg_bf(X, Y) :- flat(X, Y)."
        );
        assert_eq!(
            adorned.rules[1].rule.to_string(),
            "sg_bf(X, Y) :- up(X, Z1), sg_bf(Z1, Z2), flat(Z2, Z3), sg_bf(Z3, Z4), down(Z4, Y)."
        );
        // Only one adorned version of sg is generated.
        assert_eq!(adorned.adorned_preds.len(), 1);
        assert_eq!(adorned.answer_atom().to_string(), "sg_bf(john, Y)");
    }

    #[test]
    fn partial_sip_gives_same_adorned_program_as_full() {
        // Noted in Example 3: the partial sip of Example 2 yields the same
        // adorned program; the difference only shows up in the rewrites.
        let program = sg_program();
        let query = parse_query("sg(john, Y)").unwrap();
        let full = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let partial = adorn(&program, &query, SipStrategy::LeftToRightLastOnly).unwrap();
        assert_eq!(full.to_program(), partial.to_program());
    }

    #[test]
    fn ancestor_adornment() {
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let query = parse_query("anc(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        assert_eq!(
            adorned.rules[1].rule.to_string(),
            "anc_bf(X, Y) :- par(X, Z), anc_bf(Z, Y)."
        );
        assert_eq!(
            adorned.rules[1].body_adornments[1]
                .as_ref()
                .unwrap()
                .to_string(),
            "bf"
        );
        assert!(adorned.rules[1].body_adornments[0].is_none());
    }

    #[test]
    fn nested_same_generation_generates_two_adorned_predicates() {
        // Appendix A.1 problem (3).
        let program = parse_program(
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
        )
        .unwrap();
        let query = parse_query("p(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        // Appendix A.2(3): p^bf and sg^bf, four adorned rules.
        assert_eq!(adorned.rules.len(), 4);
        assert_eq!(adorned.adorned_preds.len(), 2);
        let texts: Vec<String> = adorned.rules.iter().map(|r| r.rule.to_string()).collect();
        assert!(texts.contains(&"p_bf(X, Y) :- sg_bf(X, Z1), p_bf(Z1, Z2), b2(Z2, Y).".to_string()));
        assert!(
            texts.contains(&"sg_bf(X, Y) :- up(X, Z1), sg_bf(Z1, Z2), down(Z2, Y).".to_string())
        );
    }

    #[test]
    fn list_reverse_generates_bbf_append() {
        // Appendix A.1 problem (4) / A.2(4).
        let program = parse_program(
            "append(V, [], [V]) :- .
             append(V, [W | X], [W | Y]) :- append(V, X, Y).
             reverse([], []) :- .
             reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
        )
        .unwrap();
        let query = parse_query("reverse(list, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let preds: BTreeSet<String> = adorned
            .adorned_preds
            .iter()
            .map(|(s, a)| format!("{s}_{a}"))
            .collect();
        assert!(preds.contains("reverse_bf"));
        assert!(preds.contains("append_bbf"));
        assert_eq!(adorned.rules.len(), 4);
        let texts: Vec<String> = adorned.rules.iter().map(|r| r.rule.to_string()).collect();
        assert!(texts.contains(
            &"reverse_bf([V | X], Y) :- reverse_bf(X, Z), append_bbf(V, Z, Y).".to_string()
        ));
        assert!(
            texts.contains(&"append_bbf(V, [W | X], [W | Y]) :- append_bbf(V, X, Y).".to_string())
        );
    }

    #[test]
    fn multiple_adornments_for_one_predicate() {
        // A program where the same predicate is queried with two binding
        // patterns: path is called bf from the query and fb from the body of
        // rev (because only its second argument is bound there).
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             meet(X, Y) :- path(a, X), back(X, W), path(Y, W).",
        )
        .unwrap();
        let query = parse_query("meet(U, V)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let adornments: BTreeSet<String> = adorned
            .adorned_preds
            .iter()
            .filter(|(s, _)| s.as_str() == "path")
            .map(|(_, a)| a.to_string())
            .collect();
        assert!(adornments.contains("bf"));
        assert!(adornments.contains("fb"));
    }

    #[test]
    fn unknown_query_predicate_is_an_error() {
        let program = sg_program();
        let query = parse_query("nosuch(john, Y)").unwrap();
        assert!(adorn(&program, &query, SipStrategy::FullLeftToRight).is_err());
    }

    #[test]
    fn all_free_query_still_adorns() {
        let program = sg_program();
        let query = parse_query("sg(X, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        assert_eq!(adorned.query_adornment.to_string(), "ff");
        // With an all-free query the recursive literals still get arcs from
        // the base literals (up binds Z1), so sg^bf is generated alongside
        // sg^ff: two adorned versions, four adorned rules.
        assert_eq!(adorned.adorned_preds.len(), 2);
        assert_eq!(adorned.rules.len(), 4);
    }
}
