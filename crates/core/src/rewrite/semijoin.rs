//! The semijoin optimization of the counting methods (Section 8,
//! Lemmas 8.1/8.2 and Theorem 8.3).
//!
//! In a counting-rewritten program the derivation-path indexes already
//! identify *which* bindings flow where; when the bound arguments of a block
//! of mutually recursive indexed predicates are never used outside positions
//! that are themselves being dropped, those arguments — and the literals
//! whose only purpose was to produce them — can be deleted.  The result is
//! the paper's "semijoin" form: narrower recursive predicates and shorter
//! rule bodies (Example 8, Appendix A.5/A.6 optimized rule sets).
//!
//! The optimizer below works on the output of the generalized counting and
//! generalized supplementary counting rewrites of this crate (left-to-right
//! sips): for each candidate block it checks the occurrence conditions of
//! Theorem 8.3 — treating index variables as exempt, since the indexes are
//! exactly what makes the deletion sound — and iterates to a fixpoint over
//! the set of blocks that survive.  It is conservative: when a condition
//! fails the block is simply left untouched.

use crate::rewrite::{Method, RewriteError, RewrittenProgram};
use magic_datalog::{Adornment, Atom, DependencyGraph, PredName, Program, Rule, Term, Variable};
use std::collections::{BTreeMap, BTreeSet};

/// How many index arguments the counting rewrites prepend.
const INDEX_ARITY: usize = 3;

/// The bound (non-index) argument positions of an indexed or counting
/// predicate occurrence, as absolute positions into the atom's term list.
fn bound_positions(pred: &PredName) -> Option<Vec<usize>> {
    match pred {
        PredName::Indexed { adornment, .. } => Some(
            adornment
                .bound_positions()
                .into_iter()
                .map(|p| p + INDEX_ARITY)
                .collect(),
        ),
        _ => None,
    }
}

/// The variables occurring in index positions anywhere in the rule: these
/// are exempt from the occurrence conditions (the indexes are what justifies
/// the deletions).
fn index_vars(rule: &Rule) -> BTreeSet<Variable> {
    let mut out = BTreeSet::new();
    let mut note = |atom: &Atom| {
        if matches!(
            atom.pred,
            PredName::Indexed { .. } | PredName::Count { .. } | PredName::SupCount { .. }
        ) {
            for term in atom.terms.iter().take(INDEX_ARITY) {
                out.extend(term.vars());
            }
        }
    };
    note(&rule.head);
    for atom in &rule.body {
        note(atom);
    }
    out
}

/// All positions (atom-relative) at which `v` occurs within `atom`.
fn occurrence_positions(atom: &Atom, v: Variable) -> Vec<usize> {
    atom.terms
        .iter()
        .enumerate()
        .filter(|(_, t)| t.vars().contains(&v))
        .map(|(p, _)| p)
        .collect()
}

/// Check whether every occurrence of `v` in the rule outside the body
/// positions `exempt_literals` lies in a "dropped" position: a bound
/// non-index argument of an occurrence (head or body) of a predicate whose
/// block is in `candidates`.
fn occurrences_are_dropped(
    rule: &Rule,
    v: Variable,
    exempt_literals: &BTreeSet<usize>,
    candidates: &BTreeSet<PredName>,
) -> bool {
    let check_atom = |atom: &Atom| -> bool {
        let positions = occurrence_positions(atom, v);
        if positions.is_empty() {
            return true;
        }
        let Some(bound) = bound_positions(&atom.pred) else {
            return false;
        };
        if !candidates.contains(&atom.pred) {
            return false;
        }
        positions.iter().all(|p| bound.contains(p))
    };
    if !check_atom(&rule.head) {
        return false;
    }
    for (i, atom) in rule.body.iter().enumerate() {
        if exempt_literals.contains(&i) {
            continue;
        }
        if !check_atom(atom) {
            return false;
        }
    }
    true
}

/// Check the Theorem 8.3 conditions for one occurrence of a candidate-block
/// predicate: body literal `pos` of `rule`.
fn occurrence_ok(rule: &Rule, pos: usize, candidates: &BTreeSet<PredName>) -> bool {
    let atom = &rule.body[pos];
    let Some(bound) = bound_positions(&atom.pred) else {
        return true;
    };
    let idx_vars = index_vars(rule);
    // N: the literals preceding this occurrence (our counting rewrites emit
    // left-to-right full sips, so the prefix is exactly the arc's tail).
    let prefix: BTreeSet<usize> = (0..pos).collect();
    let mut self_and_prefix = prefix.clone();
    self_and_prefix.insert(pos);

    // Condition (1): variables in bound arguments of the occurrence appear
    // nowhere else except in dropped positions or within N (or the index
    // positions).
    let bound_vars: BTreeSet<Variable> = bound.iter().flat_map(|&p| atom.terms[p].vars()).collect();
    for v in bound_vars {
        if idx_vars.contains(&v) {
            continue;
        }
        if !occurrences_are_dropped(rule, v, &self_and_prefix, candidates) {
            return false;
        }
    }
    // Condition (2): variables of N appear nowhere else except in bound
    // arguments of candidate occurrences (or index positions).
    let prefix_vars: BTreeSet<Variable> =
        prefix.iter().flat_map(|&p| rule.body[p].vars()).collect();
    for v in prefix_vars {
        if idx_vars.contains(&v) {
            continue;
        }
        if !occurrences_are_dropped(rule, v, &prefix, candidates) {
            return false;
        }
    }
    true
}

/// Compute the set of indexed predicates whose bound arguments can be
/// dropped, starting from all indexed predicates and removing blocks whose
/// occurrences violate the conditions, until a fixpoint is reached.
fn surviving_predicates(program: &Program) -> BTreeSet<PredName> {
    let graph = DependencyGraph::build(program);
    let blocks: Vec<BTreeSet<PredName>> = graph
        .sccs()
        .into_iter()
        .map(|c| {
            c.into_iter()
                .filter(|p| matches!(p, PredName::Indexed { .. }))
                .collect::<BTreeSet<_>>()
        })
        .filter(|c| !c.is_empty())
        .collect();

    let mut candidates: BTreeSet<PredName> = blocks.iter().flatten().cloned().collect();
    loop {
        let mut removed = false;
        for block in &blocks {
            if !block.iter().all(|p| candidates.contains(p)) {
                continue;
            }
            let ok = program.rules.iter().all(|rule| {
                (0..rule.body.len()).all(|pos| {
                    if block.contains(&rule.body[pos].pred) {
                        occurrence_ok(rule, pos, &candidates)
                    } else {
                        true
                    }
                })
            });
            if !ok {
                for p in block {
                    candidates.remove(p);
                }
                removed = true;
            }
        }
        if !removed {
            return candidates;
        }
    }
}

/// Drop the bound non-index arguments from an atom over a surviving
/// predicate (adjusting its adornment), leaving other atoms untouched.
fn narrow_atom(atom: &Atom, surviving: &BTreeSet<PredName>) -> Atom {
    if !surviving.contains(&atom.pred) {
        return atom.clone();
    }
    let PredName::Indexed { base, adornment } = &atom.pred else {
        return atom.clone();
    };
    let keep: Vec<usize> = (0..INDEX_ARITY)
        .chain(
            adornment
                .free_positions()
                .into_iter()
                .map(|p| p + INDEX_ARITY),
        )
        .collect();
    let terms: Vec<Term> = keep.iter().map(|&p| atom.terms[p].clone()).collect();
    let narrowed = Adornment::all_free(adornment.free_positions().len());
    Atom::new(
        PredName::Indexed {
            base: *base,
            adornment: narrowed,
        },
        terms,
    )
}

/// Apply the semijoin optimization (Theorem 8.3) to the output of a counting
/// or supplementary counting rewrite.
///
/// Returns the optimized program; blocks that do not satisfy the conditions
/// are left untouched, so the result is always at least as general as the
/// input.
pub fn optimize(rewritten: &RewrittenProgram) -> Result<RewrittenProgram, RewriteError> {
    if !matches!(rewritten.method, Method::Gc | Method::Gsc) {
        return Err(RewriteError::CountingNotApplicable {
            reason: format!(
                "the semijoin optimization applies to counting rewrites, not {}",
                rewritten.method
            ),
        });
    }
    let surviving = surviving_predicates(&rewritten.program);

    let mut rules = Vec::new();
    for rule in &rewritten.program.rules {
        // Delete, for every body occurrence of a surviving predicate, the
        // literals preceding it (Lemma 8.1 / Theorem 8.3); then narrow every
        // remaining occurrence of surviving predicates (Lemma 8.2).
        let mut deleted: BTreeSet<usize> = BTreeSet::new();
        for (pos, atom) in rule.body.iter().enumerate() {
            if surviving.contains(&atom.pred) {
                deleted.extend(0..pos);
            }
        }
        let head = narrow_atom(&rule.head, &surviving);
        let body: Vec<Atom> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(pos, _)| !deleted.contains(pos))
            .map(|(_, atom)| narrow_atom(atom, &surviving))
            .collect();
        rules.push(Rule::new(head, body));
    }

    // If the answer predicate was narrowed, the bound query positions
    // disappear from the answer atom, and the derivation indexes become the
    // only link between stored facts and the query: pin them to the seed's
    // indexes (0, 0, 0), which by construction label the top-level
    // derivation.  The projection variables (free positions) are always
    // retained.
    let mut answer_atom = narrow_atom(&rewritten.answer_atom, &surviving);
    if surviving.contains(&rewritten.answer_atom.pred) || surviving.contains(&answer_atom.pred) {
        for term in answer_atom.terms.iter_mut().take(INDEX_ARITY) {
            *term = Term::Int(0);
        }
    }
    let method = match rewritten.method {
        Method::Gc => Method::GcSemijoin,
        _ => Method::GscSemijoin,
    };
    Ok(RewrittenProgram {
        program: Program::from_rules(rules),
        seed: rewritten.seed.clone(),
        answer_atom,
        projection: rewritten.projection.clone(),
        method,
    })
}

/// A summary of what the optimization changed — useful for reports and for
/// the `appendix` binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SemijoinReport {
    /// Predicates whose bound arguments were dropped.
    pub narrowed: BTreeSet<String>,
    /// Number of body literals deleted across all rules.
    pub literals_deleted: usize,
}

/// Compute a report comparing the original and optimized programs.
pub fn report(original: &RewrittenProgram, optimized: &RewrittenProgram) -> SemijoinReport {
    let mut narrowed = BTreeSet::new();
    let arity =
        |p: &Program| -> BTreeMap<PredName, usize> { p.predicate_arities().unwrap_or_default() };
    let before = arity(&original.program);
    let after = arity(&optimized.program);
    for (pred, a) in &after {
        if let Some(b) = before.get(pred) {
            if a < b {
                narrowed.insert(pred.to_string());
            }
        } else if matches!(pred, PredName::Indexed { .. }) {
            narrowed.insert(pred.to_string());
        }
    }
    let count_literals = |p: &Program| -> usize { p.rules.iter().map(|r| r.body.len()).sum() };
    SemijoinReport {
        narrowed,
        literals_deleted: count_literals(&original.program)
            .saturating_sub(count_literals(&optimized.program)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::rewrite::counting;
    use crate::rewrite::gsc;
    use crate::sip_builder::SipStrategy;
    use magic_datalog::{parse_program, parse_query};

    fn counting_rewrite(src: &str, query: &str) -> RewrittenProgram {
        let program = parse_program(src).unwrap();
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        counting::rewrite(&adorned).unwrap()
    }

    fn texts(r: &RewrittenProgram) -> Vec<String> {
        r.program.rules.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn ancestor_semijoin_matches_appendix_a51_optimized() {
        let base = counting_rewrite(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        let optimized = optimize(&base).unwrap();
        let text = texts(&optimized);
        // The optimized rule set of Appendix A.5.1: the recursive modified
        // rule loses its cnt/p prefix and the bound argument of a_ind.
        for expected in [
            "cnt_a_ind_bf(I+1, K*2+2, H*2+2, Z) :- cnt_a_ind_bf(I, K, H, X), p(X, Z).",
            "a_ind_f(I, K, H, Y) :- cnt_a_ind_bf(I, K, H, X), p(X, Y).",
            "a_ind_f(I, K, H, Y) :- a_ind_f(I+1, K*2+2, H*2+2, Y).",
            "cnt_a_ind_bf(0, 0, 0, john).",
        ] {
            assert!(
                text.contains(&expected.to_string()),
                "missing: {expected}\nhave: {text:#?}"
            );
        }
        assert_eq!(optimized.method, Method::GcSemijoin);
        let rep = report(&base, &optimized);
        assert!(rep.literals_deleted > 0);
        assert!(!rep.narrowed.is_empty());
    }

    #[test]
    fn example_8_same_generation_semijoin() {
        // Example 8: the semijoin optimization applies to all occurrences of
        // sg_ind in the counting-rewritten nonlinear same-generation program.
        let base = counting_rewrite(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
            "sg(john, Y)",
        );
        let optimized = optimize(&base).unwrap();
        let text = texts(&optimized);
        for expected in [
            // Counting rules: the second loses its prefix (Lemma 8.1).
            "cnt_sg_ind_bf(I+1, K*2+2, H*5+2, Z1) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1).",
            "cnt_sg_ind_bf(I+1, K*2+2, H*5+4, Z3) :- sg_ind_f(I+1, K*2+2, H*5+2, Z2), flat(Z2, Z3).",
            // Modified rules: bound arguments of sg_ind dropped, prefixes
            // before the last sg_ind occurrence deleted.
            "sg_ind_f(I, K, H, Y) :- cnt_sg_ind_bf(I, K, H, X), flat(X, Y).",
            "sg_ind_f(I, K, H, Y) :- sg_ind_f(I+1, K*2+2, H*5+4, Z4), down(Z4, Y).",
            "cnt_sg_ind_bf(0, 0, 0, john).",
        ] {
            assert!(
                text.contains(&expected.to_string()),
                "missing: {expected}\nhave: {text:#?}"
            );
        }
    }

    #[test]
    fn semijoin_on_gsc_output() {
        let program = parse_program(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
        )
        .unwrap();
        let query = parse_query("a(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let base = gsc::rewrite(&adorned).unwrap();
        let optimized = optimize(&base).unwrap();
        assert_eq!(optimized.method, Method::GscSemijoin);
        // The recursive a_ind occurrence loses its bound argument.
        assert!(texts(&optimized)
            .iter()
            .any(|r| r.starts_with("a_ind_f(I, K, H, Y) :-")));
    }

    #[test]
    fn semijoin_rejects_non_counting_programs() {
        let program = parse_program(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
        )
        .unwrap();
        let query = parse_query("a(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let gms = crate::rewrite::gms::rewrite(&adorned, Default::default()).unwrap();
        assert!(optimize(&gms).is_err());
    }

    #[test]
    fn blocks_violating_conditions_are_left_untouched() {
        // A program where the bound argument of the recursive literal is
        // also used by a later base literal, so it cannot be dropped:
        //   t(X, Y) :- e(X, Y).
        //   t(X, Y) :- e(X, Z), t(Z, W), check(Z, W, Y).
        // Here Z (bound arg of t) reappears in check, outside any dropped
        // position.
        let base = counting_rewrite(
            "t(X, Y) :- e(X, Y).
             t(X, Y) :- e(X, Z), t(Z, W), check(Z, W, Y).",
            "t(john, Y)",
        );
        let optimized = optimize(&base).unwrap();
        // No narrowing happened: t_ind keeps its bf adornment everywhere.
        assert!(texts(&optimized).iter().all(|r| !r.contains("t_ind_f(")));
        assert_eq!(report(&base, &optimized).literals_deleted, 0);
    }
}
