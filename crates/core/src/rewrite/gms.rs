//! Generalized magic sets (Section 4).
//!
//! For each adorned rule and each sip arc `N → q`, a *magic rule* is
//! generated that computes the bindings passed into `q`; the adorned rule is
//! then *modified* by guarding it with the magic predicate of its head.  The
//! bottom-up evaluation of the resulting program simulates the sip
//! collection: a rule instance fires only for bindings that the sip would
//! actually pass (Theorem 4.1), making the evaluation sip-optimal
//! (Theorem 9.1).

use crate::adorn::{AdornedProgram, AdornedRule};
use crate::rewrite::{Method, RewriteError, RewrittenProgram};
use crate::sip::{SipArc, SipNode};
use magic_datalog::{Adornment, Atom, Fact, PredName, Program, Rule, Symbol, Term};

/// Options controlling the generalized magic-sets rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GmsOptions {
    /// Emit the fully-guarded form of the construction: every derived body
    /// literal also receives its own magic guard, and magic-rule bodies keep
    /// the magic literals of the tail predicates even when the head's magic
    /// literal is present.  By default these redundant literals are omitted,
    /// following Propositions 4.2/4.3 and the paper's own examples.
    pub include_redundant_magic: bool,
}

/// The magic predicate name for an adorned predicate.
fn magic_pred(base: Symbol, adornment: &Adornment) -> PredName {
    PredName::Magic {
        base,
        adornment: adornment.clone(),
    }
}

/// The magic literal `magic_p^a(χ^b)` for an atom and its adornment.
pub(crate) fn magic_literal(atom: &Atom, adornment: &Adornment) -> Atom {
    Atom::new(
        magic_pred(atom.pred.base(), adornment),
        atom.bound_terms(adornment),
    )
}

/// The body of a magic (or label) rule generated from one sip arc
/// (Section 4, step 2).
fn arc_rule_body(ar: &AdornedRule, arc: &SipArc, options: GmsOptions) -> Vec<Atom> {
    let head_bound = ar.head_adornment.bound_count() > 0;
    let head_in_tail = arc.tail.contains(&SipNode::Head) && head_bound;
    let mut body = Vec::new();
    if head_in_tail {
        body.push(magic_literal(&ar.rule.head, &ar.head_adornment));
    }
    // Tail body occurrences, in body order.
    let mut tail_positions: Vec<usize> = arc
        .tail
        .iter()
        .filter_map(|n| match n {
            SipNode::Body(j) => Some(*j),
            SipNode::Head => None,
        })
        .collect();
    tail_positions.sort_unstable();
    for j in tail_positions {
        let atom = &ar.rule.body[j];
        if let Some(aj) = &ar.body_adornments[j] {
            // Proposition 4.3: the magic literal of a tail predicate is
            // redundant when the head's magic literal is present.
            if aj.bound_count() > 0 && (options.include_redundant_magic || !head_in_tail) {
                body.push(magic_literal(atom, aj));
            }
        }
        body.push(atom.clone());
    }
    body
}

/// Rewrite one adorned rule, appending the generated magic rules and the
/// modified rule to `out`.
fn rewrite_rule(ar: &AdornedRule, rule_number: usize, options: GmsOptions, out: &mut Vec<Rule>) {
    // Step 2: magic (and, for multi-arc targets, label) rules.
    for (i, atom) in ar.rule.body.iter().enumerate() {
        let Some(ai) = &ar.body_adornments[i] else {
            continue;
        };
        if ai.bound_count() == 0 {
            continue;
        }
        let arcs = ar.sip.arcs_into(i);
        if arcs.is_empty() {
            continue;
        }
        let magic_head = magic_literal(atom, ai);
        if arcs.len() == 1 {
            out.push(Rule::new(magic_head, arc_rule_body(ar, arcs[0], options)));
        } else {
            // Several arcs enter the occurrence: one label rule per arc, and
            // a magic rule joining the labels (Section 4).
            let mut label_atoms = Vec::new();
            for (k, arc) in arcs.iter().enumerate() {
                let label_terms: Vec<Term> = arc.label.iter().map(|v| Term::Var(*v)).collect();
                let label_head = Atom::new(
                    PredName::Label {
                        base: atom.pred.base(),
                        adornment: ai.clone(),
                        rule: rule_number,
                        arc: k,
                    },
                    label_terms,
                );
                label_atoms.push(label_head.clone());
                out.push(Rule::new(label_head, arc_rule_body(ar, arc, options)));
            }
            out.push(Rule::new(magic_head, label_atoms));
        }
    }

    // Step 3: the modified rule.
    let mut body = Vec::new();
    if ar.head_adornment.bound_count() > 0 {
        body.push(magic_literal(&ar.rule.head, &ar.head_adornment));
    }
    for (i, atom) in ar.rule.body.iter().enumerate() {
        if options.include_redundant_magic {
            if let Some(ai) = &ar.body_adornments[i] {
                if ai.bound_count() > 0 {
                    body.push(magic_literal(atom, ai));
                }
            }
        }
        body.push(atom.clone());
    }
    // The modified rule keeps its negated atoms verbatim: they are checked
    // against the full (plain-named) relations, whose unrewritten defining
    // cones the planner appends.  Magic rules above stay positive — a
    // magic set without the negation filter over-approximates the relevant
    // bindings, which is always sound.
    out.push(Rule::new(ar.rule.head.clone(), body).with_negated(ar.rule.negated.clone()));
}

/// Apply the generalized magic-sets rewrite to an adorned program.
pub fn rewrite(
    adorned: &AdornedProgram,
    options: GmsOptions,
) -> Result<RewrittenProgram, RewriteError> {
    let mut rules = Vec::new();
    for (number, ar) in adorned.rules.iter().enumerate() {
        rewrite_rule(ar, number, options, &mut rules);
    }

    // Step 4: the seed.
    let seed = if adorned.query_adornment.bound_count() > 0 {
        let seed = Fact::new(
            magic_pred(adorned.query_pred, &adorned.query_adornment),
            adorned.query.bound_values(),
        );
        rules.push(Rule::fact(seed.to_atom()));
        Some(seed)
    } else {
        None
    };

    Ok(RewrittenProgram {
        program: Program::from_rules(rules),
        seed,
        answer_atom: adorned.answer_atom(),
        projection: adorned.query.free_vars(),
        method: Method::Gms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::sip_builder::SipStrategy;
    use magic_datalog::{parse_program, parse_query};

    fn sg_rewrite(strategy: SipStrategy) -> RewrittenProgram {
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap();
        let query = parse_query("sg(john, Y)").unwrap();
        let adorned = adorn(&program, &query, strategy).unwrap();
        rewrite(&adorned, GmsOptions::default()).unwrap()
    }

    #[test]
    fn example_4_full_sip() {
        // Example 4 of the paper, full sip (IV).
        let rewritten = sg_rewrite(SipStrategy::FullLeftToRight);
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert!(text.contains(&"magic_sg_bf(Z1) :- magic_sg_bf(X), up(X, Z1).".to_string()));
        assert!(text.contains(
            &"magic_sg_bf(Z3) :- magic_sg_bf(X), up(X, Z1), sg_bf(Z1, Z2), flat(Z2, Z3)."
                .to_string()
        ));
        assert!(text.contains(&"sg_bf(X, Y) :- magic_sg_bf(X), flat(X, Y).".to_string()));
        assert!(text.contains(
            &"sg_bf(X, Y) :- magic_sg_bf(X), up(X, Z1), sg_bf(Z1, Z2), flat(Z2, Z3), sg_bf(Z3, Z4), down(Z4, Y)."
                .to_string()
        ));
        assert!(text.contains(&"magic_sg_bf(john).".to_string()));
        // 2 magic rules + 2 modified rules + seed.
        assert_eq!(rewritten.program.len(), 5);
        assert_eq!(
            rewritten.seed.as_ref().unwrap().to_string(),
            "magic_sg_bf(john)"
        );
        assert_eq!(rewritten.answer_atom.to_string(), "sg_bf(john, Y)");
    }

    #[test]
    fn example_4_partial_sip() {
        // Example 4, second variant: the partial sip (V) keeps the magic
        // literal of sg.1 in the second magic rule because the head is not in
        // the arc's tail.
        let rewritten = sg_rewrite(SipStrategy::LeftToRightLastOnly);
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert!(text.contains(&"magic_sg_bf(Z1) :- magic_sg_bf(X), up(X, Z1).".to_string()));
        assert!(text.contains(
            &"magic_sg_bf(Z3) :- magic_sg_bf(Z1), sg_bf(Z1, Z2), flat(Z2, Z3).".to_string()
        ));
        assert_eq!(rewritten.program.len(), 5);
    }

    #[test]
    fn ancestor_rewrite_matches_appendix_a31() {
        // Appendix A.3.1.
        let program = parse_program(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
        )
        .unwrap();
        let query = parse_query("a(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let rewritten = rewrite(&adorned, GmsOptions::default()).unwrap();
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(
            text,
            vec![
                "a_bf(X, Y) :- magic_a_bf(X), p(X, Y).".to_string(),
                "magic_a_bf(Z) :- magic_a_bf(X), p(X, Z).".to_string(),
                "a_bf(X, Y) :- magic_a_bf(X), p(X, Z), a_bf(Z, Y).".to_string(),
                "magic_a_bf(john).".to_string(),
            ]
        );
    }

    #[test]
    fn nonlinear_ancestor_matches_appendix_a32() {
        // Appendix A.3.2.  The redundant magic rule
        // `magic_a_bf(X) :- magic_a_bf(X)` noted in the appendix ("can be
        // deleted") corresponds to the arc into the first a occurrence; we
        // emit it for fidelity.
        let program = parse_program(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- a(X, Z), a(Z, Y).",
        )
        .unwrap();
        let query = parse_query("a(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let rewritten = rewrite(&adorned, GmsOptions::default()).unwrap();
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert!(text.contains(&"magic_a_bf(X) :- magic_a_bf(X).".to_string()));
        assert!(text.contains(&"magic_a_bf(Z) :- magic_a_bf(X), a_bf(X, Z).".to_string()));
        assert!(text.contains(&"a_bf(X, Y) :- magic_a_bf(X), a_bf(X, Z), a_bf(Z, Y).".to_string()));
    }

    #[test]
    fn nested_sg_matches_appendix_a33() {
        let program = parse_program(
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
        )
        .unwrap();
        let query = parse_query("p(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let rewritten = rewrite(&adorned, GmsOptions::default()).unwrap();
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        for expected in [
            "magic_p_bf(Z1) :- magic_p_bf(X), sg_bf(X, Z1).",
            "magic_sg_bf(X) :- magic_p_bf(X).",
            "magic_sg_bf(Z1) :- magic_sg_bf(X), up(X, Z1).",
            "p_bf(X, Y) :- magic_p_bf(X), b1(X, Y).",
            "p_bf(X, Y) :- magic_p_bf(X), sg_bf(X, Z1), p_bf(Z1, Z2), b2(Z2, Y).",
            "sg_bf(X, Y) :- magic_sg_bf(X), flat(X, Y).",
            "sg_bf(X, Y) :- magic_sg_bf(X), up(X, Z1), sg_bf(Z1, Z2), down(Z2, Y).",
            "magic_p_bf(john).",
        ] {
            assert!(
                text.contains(&expected.to_string()),
                "missing: {expected}\nhave: {text:#?}"
            );
        }
    }

    #[test]
    fn list_reverse_matches_appendix_a34() {
        let program = parse_program(
            "append(V, [], [V]) :- .
             append(V, [W | X], [W | Y]) :- append(V, X, Y).
             reverse([], []) :- .
             reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
        )
        .unwrap();
        let query = parse_query("reverse(list, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let rewritten = rewrite(&adorned, GmsOptions::default()).unwrap();
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        for expected in [
            "magic_append_bbf(V, X) :- magic_append_bbf(V, [W | X]).",
            "magic_append_bbf(V, Z) :- magic_reverse_bf([V | X]), reverse_bf(X, Z).",
            "magic_reverse_bf(X) :- magic_reverse_bf([V | X]).",
            "append_bbf(V, [], [V]) :- magic_append_bbf(V, []).",
            "append_bbf(V, [W | X], [W | Y]) :- magic_append_bbf(V, [W | X]), append_bbf(V, X, Y).",
            "reverse_bf([], []) :- magic_reverse_bf([]).",
            "reverse_bf([V | X], Y) :- magic_reverse_bf([V | X]), reverse_bf(X, Z), append_bbf(V, Z, Y).",
            "magic_reverse_bf(list).",
        ] {
            assert!(text.contains(&expected.to_string()), "missing: {expected}\nhave: {text:#?}");
        }
    }

    #[test]
    fn redundant_magic_option_adds_guards() {
        let program = parse_program(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
        )
        .unwrap();
        let query = parse_query("a(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let rewritten = rewrite(
            &adorned,
            GmsOptions {
                include_redundant_magic: true,
            },
        )
        .unwrap();
        let text: Vec<String> = rewritten
            .program
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect();
        // The fully-guarded modified rule from Section 4's worked example.
        assert!(text.contains(
            &"a_bf(X, Y) :- magic_a_bf(X), p(X, Z), magic_a_bf(Z), a_bf(Z, Y).".to_string()
        ));
    }

    #[test]
    fn all_free_query_produces_no_seed() {
        let program = parse_program(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
        )
        .unwrap();
        let query = parse_query("a(U, V)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        let rewritten = rewrite(&adorned, GmsOptions::default()).unwrap();
        assert!(rewritten.seed.is_none());
        // Still a valid program: the a^ff rules are unguarded, the a^bf rules
        // (reached through the recursive literal, which is bound by p) are
        // guarded.
        assert!(rewritten
            .program
            .rules
            .iter()
            .any(|r| r.head.pred.to_string() == "a_ff"));
    }
}
