//! Generalized counting (Section 6).
//!
//! Counting refines magic sets by remembering *how* a binding was reached:
//! every derived predicate `p^a` (with at least one bound argument) becomes
//! an indexed predicate `p_ind^a` with three extra arguments `(I, K, H)`
//! encoding the derivation depth, the sequence of rules applied, and the
//! sequence of body positions expanded.  The auxiliary `cnt_p_ind^a`
//! predicates play the role of the magic predicates, indexed the same way.
//!
//! The encodings follow the paper: with `m` adorned rules and at most `t`
//! literals per body, applying rule `i` at body position `j` maps the parent
//! indexes `(I, K, H)` to `(I + 1, K·m + i, H·t + j)`.
//!
//! ## Notational normalization
//!
//! The paper writes modified-rule heads with `H/t` and body literals with
//! `H + j`; we use the equivalent forward form in which the head and the
//! `cnt` literal carry `H` and the body literals carry `H·t + j` (and
//! similarly for `K`).  The encoded derivation paths are identical, and the
//! engine can invert the linear expressions during matching, which is what
//! the semijoin-optimized forms of Section 8 require.

use crate::adorn::{AdornedProgram, AdornedRule};
use crate::rewrite::{Method, RewriteError, RewrittenProgram};
use crate::sip::SipNode;
use magic_datalog::{Adornment, Atom, Fact, PredName, Program, Rule, Term, Value, Variable};
use std::collections::BTreeSet;

/// The three index variables used by a counting-rewritten rule.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IndexVars {
    /// Derivation depth variable `I`.
    pub depth: Variable,
    /// Rule-sequence encoding variable `K`.
    pub rules: Variable,
    /// Position-sequence encoding variable `H`.
    pub positions: Variable,
}

/// Pick three index variable names that do not collide with the rule's own
/// variables.
pub(crate) fn fresh_index_vars(rule_vars: &BTreeSet<Variable>) -> IndexVars {
    let fresh = |base: &str| -> Variable {
        let mut name = base.to_string();
        loop {
            let candidate = Variable::new(&name);
            if !rule_vars.contains(&candidate) {
                return candidate;
            }
            name.push('0');
        }
    };
    IndexVars {
        depth: fresh("I"),
        rules: fresh("K"),
        positions: fresh("H"),
    }
}

/// True iff the adorned body literal at `pos` is replaced by an indexed
/// version (derived, with at least one bound argument).
fn is_indexed(ar: &AdornedRule, pos: usize) -> bool {
    ar.body_adornments[pos]
        .as_ref()
        .is_some_and(|a| a.bound_count() > 0)
}

/// The child index terms `(I+1, K·m+i, H·t+j)` for expanding body position
/// `j` (1-based) of adorned rule number `i` (1-based).
pub(crate) fn child_index_terms(
    idx: IndexVars,
    m: usize,
    t: usize,
    rule_number: usize,
    position: usize,
) -> Vec<Term> {
    vec![
        Term::linear(idx.depth, 1, 1),
        Term::linear(idx.rules, m as i64, rule_number as i64),
        Term::linear(idx.positions, t as i64, position as i64),
    ]
}

/// The parent index terms `(I, K, H)`.
pub(crate) fn parent_index_terms(idx: IndexVars) -> Vec<Term> {
    vec![
        Term::Var(idx.depth),
        Term::Var(idx.rules),
        Term::Var(idx.positions),
    ]
}

/// The indexed version of a body literal: `q_ind^a(I+1, K·m+i, H·t+j, θ)` for
/// derived literals with bound arguments, the literal unchanged otherwise.
pub(crate) fn indexed_body_literal(
    ar: &AdornedRule,
    pos: usize,
    idx: IndexVars,
    m: usize,
    t: usize,
    rule_number: usize,
) -> Atom {
    let atom = &ar.rule.body[pos];
    if is_indexed(ar, pos) {
        let adornment = ar.body_adornments[pos].clone().expect("indexed literal");
        let mut terms = child_index_terms(idx, m, t, rule_number, pos + 1);
        terms.extend(atom.terms.iter().cloned());
        Atom::new(
            PredName::Indexed {
                base: atom.pred.base(),
                adornment,
            },
            terms,
        )
    } else {
        atom.clone()
    }
}

/// The `cnt_p_ind^a(I, K, H, χ^b)` literal of the rule head.
pub(crate) fn head_count_literal(ar: &AdornedRule, idx: IndexVars) -> Atom {
    let mut terms = parent_index_terms(idx);
    terms.extend(ar.rule.head.bound_terms(&ar.head_adornment));
    Atom::new(
        PredName::Count {
            base: ar.head_base(),
            adornment: ar.head_adornment.clone(),
        },
        terms,
    )
}

/// Verify the counting rewrite's applicability conditions for one adorned
/// rule and return the sip arc target positions.
pub(crate) fn check_applicable(ar: &AdornedRule) -> Result<Vec<usize>, RewriteError> {
    if ar.head_adornment.bound_count() == 0 {
        return Err(RewriteError::CountingNotApplicable {
            reason: format!(
                "rule for {} has a head adornment with no bound argument",
                ar.rule.head.pred
            ),
        });
    }
    let mut targets = Vec::new();
    for pos in 0..ar.rule.body.len() {
        if !is_indexed(ar, pos) {
            continue;
        }
        let arcs = ar.sip.arcs_into(pos);
        if arcs.is_empty() {
            continue;
        }
        if arcs.len() > 1 {
            return Err(RewriteError::CountingNotApplicable {
                reason: format!(
                    "literal {} receives several sip arcs; the counting encoding assumes one",
                    ar.rule.body[pos]
                ),
            });
        }
        if !arcs[0].tail.contains(&SipNode::Head) {
            return Err(RewriteError::CountingNotApplicable {
                reason: format!(
                    "the sip arc into {} does not include the head, so no parent index is available",
                    ar.rule.body[pos]
                ),
            });
        }
        targets.push(pos);
    }
    Ok(targets)
}

/// Rewrite one adorned rule (1-based number `rule_number`), appending the
/// counting rules and the modified rule to `out`.
fn rewrite_rule(
    ar: &AdornedRule,
    rule_number: usize,
    m: usize,
    t: usize,
    out: &mut Vec<Rule>,
) -> Result<(), RewriteError> {
    let targets = check_applicable(ar)?;
    let rule_vars: BTreeSet<Variable> = ar.rule.vars().into_iter().collect();
    let idx = fresh_index_vars(&rule_vars);
    let cnt_head_literal = head_count_literal(ar, idx);

    // Counting rules, one per sip arc (Lemma 6.2 lets us omit the counting
    // literals of the tail predicates, mirroring Proposition 4.3).
    for &target in &targets {
        let atom = &ar.rule.body[target];
        let adornment: &Adornment = ar.body_adornments[target].as_ref().expect("indexed");
        let mut head_terms = child_index_terms(idx, m, t, rule_number, target + 1);
        head_terms.extend(atom.bound_terms(adornment));
        let cnt_head = Atom::new(
            PredName::Count {
                base: atom.pred.base(),
                adornment: adornment.clone(),
            },
            head_terms,
        );
        let arc = ar.sip.arcs_into(target)[0];
        let mut body = vec![cnt_head_literal.clone()];
        let mut tail_positions: Vec<usize> = arc
            .tail
            .iter()
            .filter_map(|n| match n {
                SipNode::Body(j) => Some(*j),
                SipNode::Head => None,
            })
            .collect();
        tail_positions.sort_unstable();
        for j in tail_positions {
            body.push(indexed_body_literal(ar, j, idx, m, t, rule_number));
        }
        out.push(Rule::new(cnt_head, body));
    }

    // The modified rule.
    let mut head_terms = parent_index_terms(idx);
    head_terms.extend(ar.rule.head.terms.iter().cloned());
    let head = Atom::new(
        PredName::Indexed {
            base: ar.head_base(),
            adornment: ar.head_adornment.clone(),
        },
        head_terms,
    );
    let mut body = vec![cnt_head_literal];
    for pos in 0..ar.rule.body.len() {
        body.push(indexed_body_literal(ar, pos, idx, m, t, rule_number));
    }
    out.push(Rule::new(head, body));
    Ok(())
}

/// Apply the generalized counting rewrite to an adorned program.
pub fn rewrite(adorned: &AdornedProgram) -> Result<RewrittenProgram, RewriteError> {
    if adorned.query_adornment.bound_count() == 0 {
        return Err(RewriteError::CountingNotApplicable {
            reason: "the query has no bound argument".into(),
        });
    }
    let m = adorned.rules.len().max(1);
    let t = adorned.max_body_len().max(1);
    let mut rules = Vec::new();
    for (number, ar) in adorned.rules.iter().enumerate() {
        rewrite_rule(ar, number + 1, m, t, &mut rules)?;
    }

    // Seed: cnt_q_ind^c(0, 0, 0, c̄).
    let mut seed_values = vec![Value::Int(0), Value::Int(0), Value::Int(0)];
    seed_values.extend(adorned.query.bound_values());
    let seed = Fact::new(
        PredName::Count {
            base: adorned.query_pred,
            adornment: adorned.query_adornment.clone(),
        },
        seed_values,
    );
    rules.push(Rule::fact(seed.to_atom()));

    // The answer atom: the indexed query predicate with fresh index
    // variables; answers are read off by projecting on the query's free
    // variables (the equivalence of Theorem 6.1 holds for every index value).
    let query_vars: BTreeSet<Variable> = adorned.query.atom.vars().into_iter().collect();
    let idx = fresh_index_vars(&query_vars);
    let mut answer_terms = parent_index_terms(idx);
    answer_terms.extend(adorned.query.atom.terms.iter().cloned());
    let answer_atom = Atom::new(
        PredName::Indexed {
            base: adorned.query_pred,
            adornment: adorned.query_adornment.clone(),
        },
        answer_terms,
    );

    Ok(RewrittenProgram {
        program: Program::from_rules(rules),
        seed: Some(seed),
        answer_atom,
        projection: adorned.query.free_vars(),
        method: Method::Gc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::sip_builder::SipStrategy;
    use magic_datalog::{parse_program, parse_query};

    fn rewrite_source(src: &str, query: &str) -> Result<RewrittenProgram, RewriteError> {
        let program = parse_program(src).unwrap();
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        rewrite(&adorned)
    }

    fn texts(r: &RewrittenProgram) -> Vec<String> {
        r.program.rules.iter().map(|x| x.to_string()).collect()
    }

    fn assert_all_present(text: &[String], expected: &[&str]) {
        for e in expected {
            assert!(
                text.contains(&e.to_string()),
                "missing: {e}\nhave: {text:#?}"
            );
        }
    }

    #[test]
    fn example_6_same_generation() {
        // Example 6 of the paper: m = 2 rules, t = 5 literals.
        let rewritten = rewrite_source(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
            "sg(john, Y)",
        )
        .unwrap();
        let text = texts(&rewritten);
        assert_all_present(
            &text,
            &[
                // From rule 2, 2nd body literal.
                "cnt_sg_ind_bf(I+1, K*2+2, H*5+2, Z1) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1).",
                // From rule 2, 4th body literal.
                "cnt_sg_ind_bf(I+1, K*2+2, H*5+4, Z3) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1), sg_ind_bf(I+1, K*2+2, H*5+2, Z1, Z2), flat(Z2, Z3).",
                // Modified rule (1).
                "sg_ind_bf(I, K, H, X, Y) :- cnt_sg_ind_bf(I, K, H, X), flat(X, Y).",
                // Modified rule (2).
                "sg_ind_bf(I, K, H, X, Y) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1), sg_ind_bf(I+1, K*2+2, H*5+2, Z1, Z2), flat(Z2, Z3), sg_ind_bf(I+1, K*2+2, H*5+4, Z3, Z4), down(Z4, Y).",
                // Seed.
                "cnt_sg_ind_bf(0, 0, 0, john).",
            ],
        );
        assert_eq!(rewritten.program.len(), 5);
        assert_eq!(rewritten.method, Method::Gc);
    }

    #[test]
    fn appendix_a51_ancestor() {
        let rewritten = rewrite_source(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
            "a(john, Y)",
        )
        .unwrap();
        assert_all_present(
            &texts(&rewritten),
            &[
                "cnt_a_ind_bf(I+1, K*2+2, H*2+2, Z) :- cnt_a_ind_bf(I, K, H, X), p(X, Z).",
                "a_ind_bf(I, K, H, X, Y) :- cnt_a_ind_bf(I, K, H, X), p(X, Y).",
                "a_ind_bf(I, K, H, X, Y) :- cnt_a_ind_bf(I, K, H, X), p(X, Z), a_ind_bf(I+1, K*2+2, H*2+2, Z, Y).",
                "cnt_a_ind_bf(0, 0, 0, john).",
            ],
        );
    }

    #[test]
    fn appendix_a52_nonlinear_ancestor_generates_self_incrementing_rule() {
        // A.5.2: the rule
        //   cnt_a_ind(I+1, K·2+2, H·2+1, X) :- cnt_a_ind(I, K, H, X)
        // makes the counting strategy diverge; we still generate it (safety
        // analysis flags it, Section 10).
        let rewritten = rewrite_source(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- a(X, Z), a(Z, Y).",
            "a(john, Y)",
        )
        .unwrap();
        assert_all_present(
            &texts(&rewritten),
            &["cnt_a_ind_bf(I+1, K*2+2, H*2+1, X) :- cnt_a_ind_bf(I, K, H, X)."],
        );
    }

    #[test]
    fn appendix_a53_nested_same_generation() {
        // m = 4 adorned rules, t = 3 literals.
        let rewritten = rewrite_source(
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
            "p(john, Y)",
        )
        .unwrap();
        assert_all_present(
            &texts(&rewritten),
            &[
                "cnt_sg_ind_bf(I+1, K*4+2, H*3+1, X) :- cnt_p_ind_bf(I, K, H, X).",
                "cnt_p_ind_bf(I+1, K*4+2, H*3+2, Z1) :- cnt_p_ind_bf(I, K, H, X), sg_ind_bf(I+1, K*4+2, H*3+1, X, Z1).",
                "cnt_sg_ind_bf(I+1, K*4+4, H*3+2, Z1) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1).",
                "p_ind_bf(I, K, H, X, Y) :- cnt_p_ind_bf(I, K, H, X), b1(X, Y).",
                "p_ind_bf(I, K, H, X, Y) :- cnt_p_ind_bf(I, K, H, X), sg_ind_bf(I+1, K*4+2, H*3+1, X, Z1), p_ind_bf(I+1, K*4+2, H*3+2, Z1, Z2), b2(Z2, Y).",
                "sg_ind_bf(I, K, H, X, Y) :- cnt_sg_ind_bf(I, K, H, X), flat(X, Y).",
                "sg_ind_bf(I, K, H, X, Y) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1), sg_ind_bf(I+1, K*4+4, H*3+2, Z1, Z2), down(Z2, Y).",
                "cnt_p_ind_bf(0, 0, 0, john).",
            ],
        );
    }

    #[test]
    fn appendix_a54_list_reverse() {
        let rewritten = rewrite_source(
            "append(V, [], [V]) :- .
             append(V, [W | X], [W | Y]) :- append(V, X, Y).
             reverse([], []) :- .
             reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
            "reverse(list, Y)",
        )
        .unwrap();
        // Adorned rule order: reverse exit (1), reverse recursive (2),
        // append exit (3), append recursive (4); m = 4, t = 2.
        assert_all_present(
            &texts(&rewritten),
            &[
                "cnt_reverse_ind_bf(I+1, K*4+2, H*2+1, X) :- cnt_reverse_ind_bf(I, K, H, [V | X]).",
                "cnt_append_ind_bbf(I+1, K*4+2, H*2+2, V, Z) :- cnt_reverse_ind_bf(I, K, H, [V | X]), reverse_ind_bf(I+1, K*4+2, H*2+1, X, Z).",
                "cnt_append_ind_bbf(I+1, K*4+4, H*2+1, V, X) :- cnt_append_ind_bbf(I, K, H, V, [W | X]).",
                "reverse_ind_bf(I, K, H, [], []) :- cnt_reverse_ind_bf(I, K, H, []).",
                "append_ind_bbf(I, K, H, V, [], [V]) :- cnt_append_ind_bbf(I, K, H, V, []).",
                "append_ind_bbf(I, K, H, V, [W | X], [W | Y]) :- cnt_append_ind_bbf(I, K, H, V, [W | X]), append_ind_bbf(I+1, K*4+4, H*2+1, V, X, Y).",
                "reverse_ind_bf(I, K, H, [V | X], Y) :- cnt_reverse_ind_bf(I, K, H, [V | X]), reverse_ind_bf(I+1, K*4+2, H*2+1, X, Z), append_ind_bbf(I+1, K*4+2, H*2+2, V, Z, Y).",
                "cnt_reverse_ind_bf(0, 0, 0, list).",
            ],
        );
    }

    #[test]
    fn counting_rejects_queries_without_bindings() {
        let err = rewrite_source(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
            "a(U, V)",
        )
        .unwrap_err();
        assert!(matches!(err, RewriteError::CountingNotApplicable { .. }));
    }

    #[test]
    fn counting_rejects_partial_sips_without_head_in_tail() {
        // With the "last only" partial sip the arc into sg.2 does not include
        // the head, so no parent index is available.
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap();
        let query = parse_query("sg(john, Y)").unwrap();
        let adorned = adorn(&program, &query, SipStrategy::LeftToRightLastOnly).unwrap();
        assert!(matches!(
            rewrite(&adorned),
            Err(RewriteError::CountingNotApplicable { .. })
        ));
    }
}
