//! The rule-rewriting algorithms of Sections 4–8: generalized magic sets,
//! generalized supplementary magic sets, generalized counting, generalized
//! supplementary counting, and the semijoin optimization.
//!
//! Every rewriter consumes an [`AdornedProgram`](crate::adorn::AdornedProgram)
//! and produces a [`RewrittenProgram`]: an ordinary program (including the
//! query's seed fact) whose *bottom-up* evaluation implements the sip
//! collection attached to the adorned rules.

pub mod counting;
pub mod gms;
pub mod gsc;
pub mod gsms;
pub mod semijoin;

use magic_datalog::{Atom, DatalogError, Fact, Program, Variable};
use std::fmt;

/// Which rewriting method produced a [`RewrittenProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// The adorned program itself (no magic predicates).
    Adorned,
    /// Generalized magic sets (Section 4).
    Gms,
    /// Generalized supplementary magic sets (Section 5).
    Gsms,
    /// Generalized counting (Section 6).
    Gc,
    /// Generalized supplementary counting (Section 7).
    Gsc,
    /// Generalized counting followed by the semijoin optimization
    /// (Sections 6 and 8).
    GcSemijoin,
    /// Generalized supplementary counting followed by the semijoin
    /// optimization (Sections 7 and 8).
    GscSemijoin,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Adorned => "adorned",
            Method::Gms => "generalized magic sets",
            Method::Gsms => "generalized supplementary magic sets",
            Method::Gc => "generalized counting",
            Method::Gsc => "generalized supplementary counting",
            Method::GcSemijoin => "generalized counting + semijoin",
            Method::GscSemijoin => "generalized supplementary counting + semijoin",
        };
        f.write_str(s)
    }
}

/// The output of a rewrite: a program to evaluate bottom-up plus the
/// information needed to read the query's answers back out.
#[derive(Clone, Debug)]
pub struct RewrittenProgram {
    /// The rewritten rules, including the seed fact.
    pub program: Program,
    /// The seed fact derived from the query (absent when the query has no
    /// bound arguments).
    pub seed: Option<Fact>,
    /// The atom to match against the evaluated database to obtain answers.
    /// Its variables include the original query's free variables.
    pub answer_atom: Atom,
    /// The original query's free variables, in order — the projection of
    /// [`RewrittenProgram::answer_atom`] matches that defines the answers.
    pub projection: Vec<Variable>,
    /// The rewriting method used.
    pub method: Method,
}

impl fmt::Display for RewrittenProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% method: {}", self.method)?;
        writeln!(
            f,
            "% answers: {} projected on {:?}",
            self.answer_atom,
            self.projection
                .iter()
                .map(Variable::name)
                .collect::<Vec<_>>()
        )?;
        write!(f, "{}", self.program)
    }
}

/// Errors raised by the rewriting algorithms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// The counting methods require every reachable adorned rule head to have
    /// at least one bound argument and every sip arc tail to include the
    /// head; the given program/sips do not satisfy this (the paper notes the
    /// counting methods are of restricted applicability).
    CountingNotApplicable {
        /// Why the counting rewrite could not be applied.
        reason: String,
    },
    /// A language-level validation error.
    Datalog(DatalogError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::CountingNotApplicable { reason } => {
                write!(f, "the counting rewrite is not applicable: {reason}")
            }
            RewriteError::Datalog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<DatalogError> for RewriteError {
    fn from(e: DatalogError) -> Self {
        RewriteError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_display() {
        assert_eq!(Method::Gms.to_string(), "generalized magic sets");
        assert_eq!(
            Method::GscSemijoin.to_string(),
            "generalized supplementary counting + semijoin"
        );
    }

    #[test]
    fn rewrite_error_display() {
        let e = RewriteError::CountingNotApplicable {
            reason: "head has no bound arguments".into(),
        };
        assert!(e.to_string().contains("not applicable"));
    }
}
