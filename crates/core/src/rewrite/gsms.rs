//! Generalized supplementary magic sets (Section 5).
//!
//! The plain magic-sets rewrite recomputes the same joins in several rules
//! (the join of `magic_p` with the prefix of a rule body appears in every
//! magic rule derived from that body, and again in the modified rule).  The
//! supplementary variant stores those prefix joins in *supplementary magic
//! predicates* `supmagic^r_i`, one per body position, and defines each magic
//! predicate and the modified rule from the appropriate supplementary
//! predicate — trading memory for the elimination of duplicate work, as
//! Saccà and Zaniolo proposed and the Alexander method implements.

use crate::adorn::{AdornedProgram, AdornedRule};
use crate::rewrite::gms::magic_literal;
use crate::rewrite::{Method, RewriteError, RewrittenProgram};
use crate::sip::SipNode;
use magic_datalog::{Adornment, Atom, Fact, PredName, Program, Rule, Term, Variable};
use std::collections::BTreeSet;

/// The 1-based body positions that receive a sip arc and whose literal is a
/// derived literal with at least one bound argument.
fn arc_positions(ar: &AdornedRule) -> Vec<usize> {
    (0..ar.rule.body.len())
        .filter(|&i| {
            ar.sip.has_arc_into(i)
                && ar.body_adornments[i]
                    .as_ref()
                    .is_some_and(|a| a.bound_count() > 0)
        })
        .map(|i| i + 1)
        .collect()
}

/// Variables needed "later": in the head or in body literals at 0-based
/// positions `>= from`.
fn needed_later(ar: &AdornedRule, from: usize) -> BTreeSet<Variable> {
    let mut needed: BTreeSet<Variable> = ar.rule.head.vars().into_iter().collect();
    for atom in ar.rule.body.iter().skip(from) {
        needed.extend(atom.vars());
    }
    needed
}

/// Order a variable set by first occurrence in the rule (head first, then
/// body), so supplementary predicates have deterministic argument orders.
fn order_vars(ar: &AdornedRule, vars: &BTreeSet<Variable>) -> Vec<Variable> {
    ar.rule
        .vars()
        .into_iter()
        .filter(|v| vars.contains(v))
        .collect()
}

fn sup_atom(ar: &AdornedRule, rule_number: usize, position: usize, vars: &[Variable]) -> Atom {
    Atom::new(
        PredName::Supplementary {
            base: ar.head_base(),
            adornment: ar.head_adornment.clone(),
            rule: rule_number,
            position,
        },
        vars.iter().map(|v| Term::Var(*v)).collect(),
    )
}

/// Rewrite a single adorned rule, pushing the generated rules onto `out`.
fn rewrite_rule(ar: &AdornedRule, rule_number: usize, out: &mut Vec<Rule>) {
    let head_bound = ar.head_adornment.bound_count() > 0;
    let positions = arc_positions(ar);
    let m = positions.last().copied().unwrap_or(0);

    if !head_bound || m == 0 {
        // Degenerate cases.  With no bound head arguments there is no magic
        // predicate to seed the supplementary chain from, so we fall back to
        // the plain magic-sets construction for this rule; with no arcs into
        // the body there is nothing worth storing, so the modified rule is
        // simply guarded by the head's magic literal (Example 5, rule 1).
        for (i, atom) in ar.rule.body.iter().enumerate() {
            let Some(ai) = &ar.body_adornments[i] else {
                continue;
            };
            if ai.bound_count() == 0 {
                continue;
            }
            for arc in ar.sip.arcs_into(i) {
                let head_in_tail = arc.tail.contains(&SipNode::Head) && head_bound;
                let mut body = Vec::new();
                if head_in_tail {
                    body.push(magic_literal(&ar.rule.head, &ar.head_adornment));
                }
                let mut tail_positions: Vec<usize> = arc
                    .tail
                    .iter()
                    .filter_map(|n| match n {
                        SipNode::Body(j) => Some(*j),
                        SipNode::Head => None,
                    })
                    .collect();
                tail_positions.sort_unstable();
                for j in tail_positions {
                    if let Some(aj) = &ar.body_adornments[j] {
                        if aj.bound_count() > 0 && !head_in_tail {
                            body.push(magic_literal(&ar.rule.body[j], aj));
                        }
                    }
                    body.push(ar.rule.body[j].clone());
                }
                out.push(Rule::new(magic_literal(atom, ai), body));
            }
        }
        let mut body = Vec::new();
        if head_bound {
            body.push(magic_literal(&ar.rule.head, &ar.head_adornment));
        }
        body.extend(ar.rule.body.iter().cloned());
        out.push(Rule::new(ar.rule.head.clone(), body));
        return;
    }

    // φ_1 is the set of variables of the bound head arguments, φ_i extends
    // φ_{i-1} with the variables of body literal i-1, both restricted to
    // variables still needed later.  The supplementary predicate for
    // position 1 is optimized away: its occurrences are replaced by the
    // head's magic literal (as in the paper's examples).
    let head_magic = magic_literal(&ar.rule.head, &ar.head_adornment);
    let mut phi: BTreeSet<Variable> = ar
        .rule
        .head
        .bound_terms(&ar.head_adornment)
        .iter()
        .flat_map(Term::vars)
        .collect();
    let needed0 = needed_later(ar, 0);
    phi.retain(|v| needed0.contains(v));
    let mut prev_literal = head_magic.clone();
    // The supplementary atom generated for each position (used by the magic
    // rules and the modified rule below).
    let mut sup_heads: Vec<Option<Atom>> = vec![None; m + 1];
    sup_heads[1] = Some(head_magic.clone());

    // Indexing is clearer than enumerate here: the loop fills sup_heads[i]
    // while threading phi/prev_literal state at paper-numbered positions.
    #[allow(clippy::needless_range_loop)]
    for i in 2..=m {
        let prev_body_atom = ar.rule.body[i - 2].clone();
        phi.extend(prev_body_atom.vars());
        let needed = needed_later(ar, i - 1);
        phi.retain(|v| needed.contains(v));
        let ordered = order_vars(ar, &phi);
        let sup_head = sup_atom(ar, rule_number, i, &ordered);
        out.push(Rule::new(
            sup_head.clone(),
            vec![prev_literal.clone(), prev_body_atom],
        ));
        sup_heads[i] = Some(sup_head.clone());
        prev_literal = sup_head;
    }

    // Magic rules: one per arc target, defined from the supplementary
    // predicate at that position (Example 5's last two rules).
    for &pos in &positions {
        let atom = &ar.rule.body[pos - 1];
        let ai: &Adornment = ar.body_adornments[pos - 1]
            .as_ref()
            .expect("arc positions are derived literals");
        let source = sup_heads[pos].clone().expect("supplementary atom exists");
        out.push(Rule::new(magic_literal(atom, ai), vec![source]));
    }

    // Modified rule: the supplementary predicate for position m followed by
    // the remaining body literals.
    let mut body = vec![sup_heads[m].clone().expect("supplementary atom exists")];
    body.extend(ar.rule.body.iter().skip(m - 1).cloned());
    out.push(Rule::new(ar.rule.head.clone(), body));
}

/// Apply the generalized supplementary magic-sets rewrite.
pub fn rewrite(adorned: &AdornedProgram) -> Result<RewrittenProgram, RewriteError> {
    let mut rules = Vec::new();
    for (number, ar) in adorned.rules.iter().enumerate() {
        rewrite_rule(ar, number, &mut rules);
    }
    let seed = if adorned.query_adornment.bound_count() > 0 {
        let seed = Fact::new(
            PredName::Magic {
                base: adorned.query_pred,
                adornment: adorned.query_adornment.clone(),
            },
            adorned.query.bound_values(),
        );
        rules.push(Rule::fact(seed.to_atom()));
        Some(seed)
    } else {
        None
    };
    Ok(RewrittenProgram {
        program: Program::from_rules(rules),
        seed,
        answer_atom: adorned.answer_atom(),
        projection: adorned.query.free_vars(),
        method: Method::Gsms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::sip_builder::SipStrategy;
    use magic_datalog::{parse_program, parse_query};

    fn rewrite_source(src: &str, query: &str) -> RewrittenProgram {
        let program = parse_program(src).unwrap();
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        rewrite(&adorned).unwrap()
    }

    fn texts(r: &RewrittenProgram) -> Vec<String> {
        r.program.rules.iter().map(|x| x.to_string()).collect()
    }

    fn assert_all_present(text: &[String], expected: &[&str]) {
        for e in expected {
            assert!(
                text.contains(&e.to_string()),
                "missing: {e}\nhave: {text:#?}"
            );
        }
    }

    #[test]
    fn example_5_same_generation() {
        // Example 5 of the paper (supplementary predicate numbering follows
        // the paper: supmagic^2_i, here rendered supmagic_r1_i because our
        // rule indices are 0-based).
        let rewritten = rewrite_source(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
            "sg(john, Y)",
        );
        let text = texts(&rewritten);
        assert_all_present(
            &text,
            &[
                "supmagic_r1_2_sg_bf(X, Z1) :- magic_sg_bf(X), up(X, Z1).",
                "supmagic_r1_3_sg_bf(X, Z2) :- supmagic_r1_2_sg_bf(X, Z1), sg_bf(Z1, Z2).",
                "supmagic_r1_4_sg_bf(X, Z3) :- supmagic_r1_3_sg_bf(X, Z2), flat(Z2, Z3).",
                "sg_bf(X, Y) :- magic_sg_bf(X), flat(X, Y).",
                "sg_bf(X, Y) :- supmagic_r1_4_sg_bf(X, Z3), sg_bf(Z3, Z4), down(Z4, Y).",
                "magic_sg_bf(Z1) :- supmagic_r1_2_sg_bf(X, Z1).",
                "magic_sg_bf(Z3) :- supmagic_r1_4_sg_bf(X, Z3).",
                "magic_sg_bf(john).",
            ],
        );
        assert_eq!(rewritten.program.len(), 8);
        assert_eq!(rewritten.method, Method::Gsms);
    }

    #[test]
    fn appendix_a41_linear_ancestor() {
        let rewritten = rewrite_source(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supmagic_r1_2_a_bf(X, Z) :- magic_a_bf(X), p(X, Z).",
                "a_bf(X, Y) :- magic_a_bf(X), p(X, Y).",
                "a_bf(X, Y) :- supmagic_r1_2_a_bf(X, Z), a_bf(Z, Y).",
                "magic_a_bf(Z) :- supmagic_r1_2_a_bf(X, Z).",
                "magic_a_bf(john).",
            ],
        );
    }

    #[test]
    fn appendix_a42_nonlinear_ancestor() {
        let rewritten = rewrite_source(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- a(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supmagic_r1_2_a_bf(X, Z) :- magic_a_bf(X), a_bf(X, Z).",
                "a_bf(X, Y) :- magic_a_bf(X), p(X, Y).",
                "a_bf(X, Y) :- supmagic_r1_2_a_bf(X, Z), a_bf(Z, Y).",
                "magic_a_bf(X) :- magic_a_bf(X).",
                "magic_a_bf(Z) :- supmagic_r1_2_a_bf(X, Z).",
                "magic_a_bf(john).",
            ],
        );
    }

    #[test]
    fn appendix_a43_nested_same_generation() {
        let rewritten = rewrite_source(
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
            "p(john, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supmagic_r1_2_p_bf(X, Z1) :- magic_p_bf(X), sg_bf(X, Z1).",
                "supmagic_r3_2_sg_bf(X, Z1) :- magic_sg_bf(X), up(X, Z1).",
                "p_bf(X, Y) :- magic_p_bf(X), b1(X, Y).",
                "p_bf(X, Y) :- supmagic_r1_2_p_bf(X, Z1), p_bf(Z1, Z2), b2(Z2, Y).",
                "sg_bf(X, Y) :- magic_sg_bf(X), flat(X, Y).",
                "sg_bf(X, Y) :- supmagic_r3_2_sg_bf(X, Z1), sg_bf(Z1, Z2), down(Z2, Y).",
                "magic_sg_bf(X) :- magic_p_bf(X).",
                "magic_p_bf(Z1) :- supmagic_r1_2_p_bf(X, Z1).",
                "magic_sg_bf(Z1) :- supmagic_r3_2_sg_bf(X, Z1).",
                "magic_p_bf(john).",
            ],
        );
    }

    #[test]
    fn appendix_a44_list_reverse() {
        let rewritten = rewrite_source(
            "append(V, [], [V]) :- .
             append(V, [W | X], [W | Y]) :- append(V, X, Y).
             reverse([], []) :- .
             reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
            "reverse(list, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supmagic_r1_2_reverse_bf(V, X, Z) :- magic_reverse_bf([V | X]), reverse_bf(X, Z).",
                "append_bbf(V, [], [V]) :- magic_append_bbf(V, []).",
                "append_bbf(V, [W | X], [W | Y]) :- magic_append_bbf(V, [W | X]), append_bbf(V, X, Y).",
                "reverse_bf([], []) :- magic_reverse_bf([]).",
                "reverse_bf([V | X], Y) :- supmagic_r1_2_reverse_bf(V, X, Z), append_bbf(V, Z, Y).",
                "magic_append_bbf(V, X) :- magic_append_bbf(V, [W | X]).",
                "magic_append_bbf(V, Z) :- supmagic_r1_2_reverse_bf(V, X, Z).",
                "magic_reverse_bf(X) :- magic_reverse_bf([V | X]).",
                "magic_reverse_bf(list).",
            ],
        );
    }
}
