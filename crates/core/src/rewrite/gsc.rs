//! Generalized supplementary counting (Section 7).
//!
//! The supplementary counting method is to generalized counting what
//! generalized supplementary magic sets is to generalized magic sets: the
//! prefix joins of each rule body are stored once in supplementary counting
//! predicates `supcnt^r_j(I, K, H, φ_j)` and reused by the counting rules and
//! the modified rule, eliminating the duplicate joins of Section 6.

use crate::adorn::{AdornedProgram, AdornedRule};
use crate::rewrite::counting::{
    check_applicable, fresh_index_vars, head_count_literal, indexed_body_literal,
    parent_index_terms,
};
use crate::rewrite::{Method, RewriteError, RewrittenProgram};
use magic_datalog::{Adornment, Atom, Fact, PredName, Program, Rule, Term, Value, Variable};
use std::collections::BTreeSet;

/// Variables needed "later": in the head or in body literals at 0-based
/// positions `>= from`.
fn needed_later(ar: &AdornedRule, from: usize) -> BTreeSet<Variable> {
    let mut needed: BTreeSet<Variable> = ar.rule.head.vars().into_iter().collect();
    for atom in ar.rule.body.iter().skip(from) {
        needed.extend(atom.vars());
    }
    needed
}

fn order_vars(ar: &AdornedRule, vars: &BTreeSet<Variable>) -> Vec<Variable> {
    ar.rule
        .vars()
        .into_iter()
        .filter(|v| vars.contains(v))
        .collect()
}

/// Rewrite one adorned rule (1-based `rule_number`), appending the
/// supplementary counting rules, counting rules and modified rule to `out`.
fn rewrite_rule(
    ar: &AdornedRule,
    rule_number: usize,
    m: usize,
    t: usize,
    out: &mut Vec<Rule>,
) -> Result<(), RewriteError> {
    let targets = check_applicable(ar)?;
    let positions: Vec<usize> = targets.iter().map(|&p| p + 1).collect(); // 1-based
    let last = positions.last().copied().unwrap_or(0);
    let rule_vars: BTreeSet<Variable> = ar.rule.vars().into_iter().collect();
    let idx = fresh_index_vars(&rule_vars);
    let cnt_head_literal = head_count_literal(ar, idx);

    if last == 0 {
        // No arcs into the body: the modified rule is guarded by the head's
        // counting literal alone (e.g. the exit rules of the Appendix).
        let mut head_terms = parent_index_terms(idx);
        head_terms.extend(ar.rule.head.terms.iter().cloned());
        let head = Atom::new(
            PredName::Indexed {
                base: ar.head_base(),
                adornment: ar.head_adornment.clone(),
            },
            head_terms,
        );
        let mut body = vec![cnt_head_literal];
        for pos in 0..ar.rule.body.len() {
            body.push(indexed_body_literal(ar, pos, idx, m, t, rule_number));
        }
        out.push(Rule::new(head, body));
        return Ok(());
    }

    // Supplementary counting predicates.  supcnt_1 is optimized away and
    // replaced by the head's counting literal, exactly as in Section 7's
    // "simple optimizations".
    let mut phi: BTreeSet<Variable> = ar
        .rule
        .head
        .bound_terms(&ar.head_adornment)
        .iter()
        .flat_map(Term::vars)
        .collect();
    let needed0 = needed_later(ar, 0);
    phi.retain(|v| needed0.contains(v));
    let mut sup_heads: Vec<Option<Atom>> = vec![None; last + 1];
    sup_heads[1] = Some(cnt_head_literal.clone());
    let mut prev_literal = cnt_head_literal.clone();

    // Indexing is clearer than enumerate here: the loop fills sup_heads[j]
    // while threading phi/prev_literal state at paper-numbered positions.
    #[allow(clippy::needless_range_loop)]
    for j in 2..=last {
        let prev_body_atom = indexed_body_literal(ar, j - 2, idx, m, t, rule_number);
        phi.extend(ar.rule.body[j - 2].vars());
        let needed = needed_later(ar, j - 1);
        phi.retain(|v| needed.contains(v));
        let ordered = order_vars(ar, &phi);
        let mut sup_terms = parent_index_terms(idx);
        sup_terms.extend(ordered.iter().map(|v| Term::Var(*v)));
        let sup_head = Atom::new(
            PredName::SupCount {
                base: ar.head_base(),
                adornment: ar.head_adornment.clone(),
                rule: rule_number,
                position: j,
            },
            sup_terms,
        );
        out.push(Rule::new(
            sup_head.clone(),
            vec![prev_literal.clone(), prev_body_atom],
        ));
        sup_heads[j] = Some(sup_head.clone());
        prev_literal = sup_head;
    }

    // Counting rules: cnt_q_ind^aj(I+1, K·m+i, H·t+j, θ_j^b) :- supcnt_j.
    for &target in &targets {
        let j = target + 1;
        let atom = &ar.rule.body[target];
        let adornment: &Adornment = ar.body_adornments[target].as_ref().expect("indexed");
        let mut head_terms = crate::rewrite::counting::child_index_terms(idx, m, t, rule_number, j);
        head_terms.extend(atom.bound_terms(adornment));
        let cnt_head = Atom::new(
            PredName::Count {
                base: atom.pred.base(),
                adornment: adornment.clone(),
            },
            head_terms,
        );
        let source = sup_heads[j].clone().expect("supplementary counting atom");
        out.push(Rule::new(cnt_head, vec![source]));
    }

    // Modified rule: supcnt_last followed by the remaining (indexed) body
    // literals.
    let mut head_terms = parent_index_terms(idx);
    head_terms.extend(ar.rule.head.terms.iter().cloned());
    let head = Atom::new(
        PredName::Indexed {
            base: ar.head_base(),
            adornment: ar.head_adornment.clone(),
        },
        head_terms,
    );
    let mut body = vec![sup_heads[last]
        .clone()
        .expect("supplementary counting atom")];
    for pos in (last - 1)..ar.rule.body.len() {
        body.push(indexed_body_literal(ar, pos, idx, m, t, rule_number));
    }
    out.push(Rule::new(head, body));
    Ok(())
}

/// Apply the generalized supplementary counting rewrite.
pub fn rewrite(adorned: &AdornedProgram) -> Result<RewrittenProgram, RewriteError> {
    if adorned.query_adornment.bound_count() == 0 {
        return Err(RewriteError::CountingNotApplicable {
            reason: "the query has no bound argument".into(),
        });
    }
    let m = adorned.rules.len().max(1);
    let t = adorned.max_body_len().max(1);
    let mut rules = Vec::new();
    for (number, ar) in adorned.rules.iter().enumerate() {
        rewrite_rule(ar, number + 1, m, t, &mut rules)?;
    }
    let mut seed_values = vec![Value::Int(0), Value::Int(0), Value::Int(0)];
    seed_values.extend(adorned.query.bound_values());
    let seed = Fact::new(
        PredName::Count {
            base: adorned.query_pred,
            adornment: adorned.query_adornment.clone(),
        },
        seed_values,
    );
    rules.push(Rule::fact(seed.to_atom()));

    let query_vars: BTreeSet<Variable> = adorned.query.atom.vars().into_iter().collect();
    let idx = fresh_index_vars(&query_vars);
    let mut answer_terms = parent_index_terms(idx);
    answer_terms.extend(adorned.query.atom.terms.iter().cloned());
    let answer_atom = Atom::new(
        PredName::Indexed {
            base: adorned.query_pred,
            adornment: adorned.query_adornment.clone(),
        },
        answer_terms,
    );

    Ok(RewrittenProgram {
        program: Program::from_rules(rules),
        seed: Some(seed),
        answer_atom,
        projection: adorned.query.free_vars(),
        method: Method::Gsc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::sip_builder::SipStrategy;
    use magic_datalog::{parse_program, parse_query};

    fn rewrite_source(src: &str, query: &str) -> RewrittenProgram {
        let program = parse_program(src).unwrap();
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
        rewrite(&adorned).unwrap()
    }

    fn texts(r: &RewrittenProgram) -> Vec<String> {
        r.program.rules.iter().map(|x| x.to_string()).collect()
    }

    fn assert_all_present(text: &[String], expected: &[&str]) {
        for e in expected {
            assert!(
                text.contains(&e.to_string()),
                "missing: {e}\nhave: {text:#?}"
            );
        }
    }

    #[test]
    fn example_7_same_generation() {
        // Example 7 of the paper.
        let rewritten = rewrite_source(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
            "sg(john, Y)",
        );
        let text = texts(&rewritten);
        assert_all_present(
            &text,
            &[
                "supcnt_r2_2_sg_bf(I, K, H, X, Z1) :- cnt_sg_ind_bf(I, K, H, X), up(X, Z1).",
                "supcnt_r2_3_sg_bf(I, K, H, X, Z2) :- supcnt_r2_2_sg_bf(I, K, H, X, Z1), sg_ind_bf(I+1, K*2+2, H*5+2, Z1, Z2).",
                "supcnt_r2_4_sg_bf(I, K, H, X, Z3) :- supcnt_r2_3_sg_bf(I, K, H, X, Z2), flat(Z2, Z3).",
                "sg_ind_bf(I, K, H, X, Y) :- cnt_sg_ind_bf(I, K, H, X), flat(X, Y).",
                "sg_ind_bf(I, K, H, X, Y) :- supcnt_r2_4_sg_bf(I, K, H, X, Z3), sg_ind_bf(I+1, K*2+2, H*5+4, Z3, Z4), down(Z4, Y).",
                "cnt_sg_ind_bf(I+1, K*2+2, H*5+2, Z1) :- supcnt_r2_2_sg_bf(I, K, H, X, Z1).",
                "cnt_sg_ind_bf(I+1, K*2+2, H*5+4, Z3) :- supcnt_r2_4_sg_bf(I, K, H, X, Z3).",
                "cnt_sg_ind_bf(0, 0, 0, john).",
            ],
        );
        assert_eq!(rewritten.program.len(), 8);
        assert_eq!(rewritten.method, Method::Gsc);
    }

    #[test]
    fn appendix_a61_ancestor() {
        let rewritten = rewrite_source(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supcnt_r2_2_a_bf(I, K, H, X, Z) :- cnt_a_ind_bf(I, K, H, X), p(X, Z).",
                "a_ind_bf(I, K, H, X, Y) :- cnt_a_ind_bf(I, K, H, X), p(X, Y).",
                "a_ind_bf(I, K, H, X, Y) :- supcnt_r2_2_a_bf(I, K, H, X, Z), a_ind_bf(I+1, K*2+2, H*2+2, Z, Y).",
                "cnt_a_ind_bf(I+1, K*2+2, H*2+2, Z) :- supcnt_r2_2_a_bf(I, K, H, X, Z).",
                "cnt_a_ind_bf(0, 0, 0, john).",
            ],
        );
    }

    #[test]
    fn appendix_a64_list_reverse() {
        let rewritten = rewrite_source(
            "append(V, [], [V]) :- .
             append(V, [W | X], [W | Y]) :- append(V, X, Y).
             reverse([], []) :- .
             reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
            "reverse(list, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supcnt_r2_2_reverse_bf(I, K, H, V, X, Z) :- cnt_reverse_ind_bf(I, K, H, [V | X]), reverse_ind_bf(I+1, K*4+2, H*2+1, X, Z).",
                "reverse_ind_bf(I, K, H, [], []) :- cnt_reverse_ind_bf(I, K, H, []).",
                "reverse_ind_bf(I, K, H, [V | X], Y) :- supcnt_r2_2_reverse_bf(I, K, H, V, X, Z), append_ind_bbf(I+1, K*4+2, H*2+2, V, Z, Y).",
                "cnt_append_ind_bbf(I+1, K*4+2, H*2+2, V, Z) :- supcnt_r2_2_reverse_bf(I, K, H, V, X, Z).",
                "cnt_append_ind_bbf(I+1, K*4+4, H*2+1, V, X) :- cnt_append_ind_bbf(I, K, H, V, [W | X]).",
                "append_ind_bbf(I, K, H, V, [W | X], [W | Y]) :- cnt_append_ind_bbf(I, K, H, V, [W | X]), append_ind_bbf(I+1, K*4+4, H*2+1, V, X, Y).",
                "cnt_reverse_ind_bf(0, 0, 0, list).",
            ],
        );
    }

    #[test]
    fn supcnt_chain_only_built_up_to_last_arc() {
        // Nested same-generation: the last arc in the recursive p rule enters
        // the p literal (position 2), so only supcnt_2 is generated and b2 is
        // joined directly in the modified rule (Appendix A.6.3).
        let rewritten = rewrite_source(
            "p(X, Y) :- b1(X, Y).
             p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
             sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
            "p(john, Y)",
        );
        assert_all_present(
            &texts(&rewritten),
            &[
                "supcnt_r2_2_p_bf(I, K, H, X, Z1) :- cnt_p_ind_bf(I, K, H, X), sg_ind_bf(I+1, K*4+2, H*3+1, X, Z1).",
                "p_ind_bf(I, K, H, X, Y) :- supcnt_r2_2_p_bf(I, K, H, X, Z1), p_ind_bf(I+1, K*4+2, H*3+2, Z1, Z2), b2(Z2, Y).",
                "cnt_sg_ind_bf(I+1, K*4+2, H*3+1, X) :- cnt_p_ind_bf(I, K, H, X).",
                "cnt_p_ind_bf(I+1, K*4+2, H*3+2, Z1) :- supcnt_r2_2_p_bf(I, K, H, X, Z1).",
            ],
        );
    }
}
