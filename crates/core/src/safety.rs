//! Safety analysis (Section 10): does the bottom-up evaluation of a
//! rewritten program terminate after computing all answers?
//!
//! Three results from the paper are implemented:
//!
//! * **Theorem 10.2** — the magic-sets rewrites are always safe on Datalog
//!   programs (no function symbols).
//! * **Theorem 10.1** — for programs with function symbols, the magic and
//!   counting rewrites terminate if every cycle of the query's *binding
//!   graph* has positive length, where the length of an arc is the
//!   difference between the (symbolic) sizes of the bound arguments of its
//!   endpoints.
//! * **Theorem 10.3** — the counting rewrites do *not* terminate when the
//!   reachable part of the *argument graph* is cyclic (e.g. the nonlinear
//!   ancestor program), regardless of the data.  (Cyclic *data* is a further
//!   divergence source that is only detectable at run time; the engine's
//!   resource limits make it observable.)

use crate::adorn::AdornedProgram;
use magic_datalog::{Adornment, Symbol, SymbolicLength, Variable};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A node of the binding graph: an adorned predicate.
pub type BindingNode = (Symbol, Adornment);

/// The binding graph of a query (Section 10): nodes are adorned predicates;
/// there is an arc from the head of each adorned rule to every derived
/// literal in its body, labelled with a conservative lower bound on the
/// difference between the sizes of the bound arguments.
#[derive(Clone, Debug, Default)]
pub struct BindingGraph {
    /// Arcs `(from, to, arc-length lower bound)`; `None` when the length is
    /// unbounded below.
    pub arcs: Vec<(BindingNode, BindingNode, Option<i64>)>,
    /// All nodes.
    pub nodes: BTreeSet<BindingNode>,
}

impl BindingGraph {
    /// Build the binding graph of an adorned program.
    pub fn build(adorned: &AdornedProgram) -> BindingGraph {
        let mut graph = BindingGraph::default();
        for ar in &adorned.rules {
            let from: BindingNode = (ar.head_base(), ar.head_adornment.clone());
            graph.nodes.insert(from.clone());
            let head_len = total_bound_length(
                &ar.rule
                    .head
                    .bound_terms(&ar.head_adornment)
                    .iter()
                    .map(|t| t.symbolic_length())
                    .collect::<Vec<_>>(),
            );
            for (i, atom) in ar.rule.body.iter().enumerate() {
                let Some(adornment) = &ar.body_adornments[i] else {
                    continue;
                };
                let to: BindingNode = (atom.pred.base(), adornment.clone());
                graph.nodes.insert(to.clone());
                let body_len = total_bound_length(
                    &atom
                        .bound_terms(adornment)
                        .iter()
                        .map(|t| t.symbolic_length())
                        .collect::<Vec<_>>(),
                );
                let diff = head_len.minus(&body_len);
                graph
                    .arcs
                    .push((from.clone(), to.clone(), diff.lower_bound(&BTreeMap::new())));
            }
        }
        graph
    }

    /// True iff every cycle of the graph has a provably positive length
    /// (the hypothesis of Theorem 10.1).
    pub fn all_cycles_positive(&self) -> bool {
        // Floyd–Warshall on minimum path lengths; an arc with an unknown
        // (unbounded-below) length is treated as -∞, conservatively.
        let nodes: Vec<BindingNode> = self.nodes.iter().cloned().collect();
        let n = nodes.len();
        let idx: BTreeMap<BindingNode, usize> = nodes
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        const INF: i64 = i64::MAX / 4;
        const NEG_INF: i64 = i64::MIN / 4;
        let mut dist = vec![vec![INF; n]; n];
        for (from, to, len) in &self.arcs {
            let (i, j) = (idx[from], idx[to]);
            let w = len.unwrap_or(NEG_INF);
            dist[i][j] = dist[i][j].min(w);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if dist[i][k] < INF && dist[k][j] < INF {
                        let through = (dist[i][k] + dist[k][j]).max(NEG_INF);
                        if through < dist[i][j] {
                            dist[i][j] = through;
                        }
                    }
                }
            }
        }
        (0..n).all(|i| dist[i][i] == INF || dist[i][i] > 0)
    }
}

fn total_bound_length(lengths: &[SymbolicLength]) -> SymbolicLength {
    lengths
        .iter()
        .fold(SymbolicLength::constant(0), |acc, l| acc.plus(l))
}

/// A node of the argument graph (Theorem 10.3): a bound argument position of
/// an adorned predicate.
pub type ArgumentNode = (Symbol, Adornment, usize);

/// The argument graph used to detect counting divergence (Theorem 10.3).
#[derive(Clone, Debug, Default)]
pub struct ArgumentGraph {
    /// Arcs between bound argument positions that share a variable across a
    /// rule head and a body literal.
    pub arcs: BTreeSet<(ArgumentNode, ArgumentNode)>,
    /// All nodes.
    pub nodes: BTreeSet<ArgumentNode>,
}

impl ArgumentGraph {
    /// Build the argument graph of an adorned program.
    pub fn build(adorned: &AdornedProgram) -> ArgumentGraph {
        let mut graph = ArgumentGraph::default();
        for ar in &adorned.rules {
            let head_base = ar.head_base();
            for hp in ar.head_adornment.bound_positions() {
                let head_vars: BTreeSet<Variable> =
                    ar.rule.head.terms[hp].vars().into_iter().collect();
                let from: ArgumentNode = (head_base, ar.head_adornment.clone(), hp);
                graph.nodes.insert(from.clone());
                for (i, atom) in ar.rule.body.iter().enumerate() {
                    let Some(adornment) = &ar.body_adornments[i] else {
                        continue;
                    };
                    for bp in adornment.bound_positions() {
                        let body_vars: BTreeSet<Variable> =
                            atom.terms[bp].vars().into_iter().collect();
                        if head_vars.intersection(&body_vars).next().is_some() {
                            let to: ArgumentNode = (atom.pred.base(), adornment.clone(), bp);
                            graph.nodes.insert(to.clone());
                            graph.arcs.insert((from.clone(), to));
                        }
                    }
                }
            }
        }
        graph
    }

    /// True iff the part of the graph reachable from the query's bound
    /// argument positions contains a cycle.
    pub fn reachable_part_is_cyclic(&self, adorned: &AdornedProgram) -> bool {
        let roots: Vec<ArgumentNode> = adorned
            .query_adornment
            .bound_positions()
            .into_iter()
            .map(|p| (adorned.query_pred, adorned.query_adornment.clone(), p))
            .collect();
        // Reachable set.
        let mut reachable: BTreeSet<ArgumentNode> = BTreeSet::new();
        let mut stack = roots;
        while let Some(node) = stack.pop() {
            if reachable.insert(node.clone()) {
                for (from, to) in &self.arcs {
                    if from == &node && !reachable.contains(to) {
                        stack.push(to.clone());
                    }
                }
            }
        }
        // Cycle detection within the reachable sub-graph (DFS colouring).
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let nodes: Vec<ArgumentNode> = reachable.iter().cloned().collect();
        let idx: BTreeMap<ArgumentNode, usize> = nodes
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        let succs: Vec<Vec<usize>> = nodes
            .iter()
            .map(|node| {
                self.arcs
                    .iter()
                    .filter(|(from, to)| from == node && reachable.contains(to))
                    .filter_map(|(_, to)| idx.get(to).copied())
                    .collect()
            })
            .collect();
        let mut colour = vec![Colour::White; nodes.len()];
        fn dfs(v: usize, succs: &[Vec<usize>], colour: &mut [Colour]) -> bool {
            colour[v] = Colour::Grey;
            for &w in &succs[v] {
                match colour[w] {
                    Colour::Grey => return true,
                    Colour::White => {
                        if dfs(w, succs, colour) {
                            return true;
                        }
                    }
                    Colour::Black => {}
                }
            }
            colour[v] = Colour::Black;
            false
        }
        (0..nodes.len()).any(|v| colour[v] == Colour::White && dfs(v, &succs, &mut colour))
    }
}

/// The verdict of the safety analysis for the magic-sets rewrites.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MagicSafety {
    /// The program is Datalog: safe by Theorem 10.2.
    SafeDatalog,
    /// Every binding-graph cycle has positive length: safe by Theorem 10.1.
    SafePositiveCycles,
    /// Safety could not be established statically (evaluation may still
    /// terminate; Corollary 9.2 says it does whenever *any* sip strategy is
    /// safe for the program).
    Unknown,
}

impl fmt::Display for MagicSafety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagicSafety::SafeDatalog => write!(f, "safe (Datalog, Theorem 10.2)"),
            MagicSafety::SafePositiveCycles => {
                write!(f, "safe (positive binding-graph cycles, Theorem 10.1)")
            }
            MagicSafety::Unknown => write!(f, "unknown"),
        }
    }
}

/// The verdict of the safety analysis for the counting rewrites.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CountingSafety {
    /// The reachable argument graph is cyclic: counting will not terminate
    /// (Theorem 10.3).
    NonTerminating,
    /// Statically plausible; may still diverge on cyclic data.
    MayTerminate,
}

impl fmt::Display for CountingSafety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountingSafety::NonTerminating => {
                write!(f, "non-terminating (cyclic argument graph, Theorem 10.3)")
            }
            CountingSafety::MayTerminate => write!(f, "may terminate (acyclic argument graph)"),
        }
    }
}

/// Analyse the safety of the magic-sets rewrites for an adorned program.
pub fn magic_safety(adorned: &AdornedProgram) -> MagicSafety {
    let program = adorned.to_program();
    let plain_is_datalog = program.is_datalog();
    if plain_is_datalog {
        return MagicSafety::SafeDatalog;
    }
    if BindingGraph::build(adorned).all_cycles_positive() {
        return MagicSafety::SafePositiveCycles;
    }
    MagicSafety::Unknown
}

/// Analyse the safety of the counting rewrites for an adorned program.
pub fn counting_safety(adorned: &AdornedProgram) -> CountingSafety {
    let graph = ArgumentGraph::build(adorned);
    if adorned.to_program().is_datalog() && graph.reachable_part_is_cyclic(adorned) {
        CountingSafety::NonTerminating
    } else {
        CountingSafety::MayTerminate
    }
}

/// A combined safety report, suitable for display.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SafetyReport {
    /// Verdict for the magic-sets rewrites.
    pub magic: MagicSafety,
    /// Verdict for the counting rewrites.
    pub counting: CountingSafety,
}

/// Analyse both families of rewrites at once.
pub fn analyze(adorned: &AdornedProgram) -> SafetyReport {
    SafetyReport {
        magic: magic_safety(adorned),
        counting: counting_safety(adorned),
    }
}

impl fmt::Display for SafetyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "magic: {}; counting: {}", self.magic, self.counting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::sip_builder::SipStrategy;
    use magic_datalog::{parse_program, parse_query};

    fn adorned(src: &str, query: &str) -> AdornedProgram {
        let program = parse_program(src).unwrap();
        let query = parse_query(query).unwrap();
        adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap()
    }

    #[test]
    fn datalog_programs_are_safe_for_magic() {
        let a = adorned(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
            "anc(john, Y)",
        );
        assert_eq!(magic_safety(&a), MagicSafety::SafeDatalog);
    }

    #[test]
    fn list_reverse_is_safe_by_positive_cycles() {
        // Every recursive call strictly decreases the bound argument's size
        // (|[V|X]| > |X|), so all binding-graph cycles are positive.
        let a = adorned(
            "append(V, [], [V]) :- .
             append(V, [W | X], [W | Y]) :- append(V, X, Y).
             reverse([], []) :- .
             reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
            "reverse(list, Y)",
        );
        assert_eq!(magic_safety(&a), MagicSafety::SafePositiveCycles);
        let graph = BindingGraph::build(&a);
        assert!(graph.all_cycles_positive());
        assert!(!graph.arcs.is_empty());
    }

    #[test]
    fn growing_recursion_is_not_provably_safe() {
        // The bound argument grows through the recursion: the binding-graph
        // cycle has negative length and magic-set evaluation would diverge.
        let a = adorned(
            "grow(X, Y) :- base(X, Y).
             grow(X, Y) :- grow([a | X], Y).",
            "grow([], Y)",
        );
        assert_eq!(magic_safety(&a), MagicSafety::Unknown);
    }

    #[test]
    fn nonlinear_ancestor_counting_diverges() {
        // Appendix A.5.2 / Theorem 10.3: the argument graph has a cycle on
        // the first argument of a^bf through the rule a(X,Y) :- a(X,Z), a(Z,Y).
        let a = adorned(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- a(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        assert_eq!(counting_safety(&a), CountingSafety::NonTerminating);
        // Magic sets remain safe on the same program (it is Datalog).
        assert_eq!(magic_safety(&a), MagicSafety::SafeDatalog);
    }

    #[test]
    fn linear_ancestor_counting_may_terminate() {
        let a = adorned(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- p(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        assert_eq!(counting_safety(&a), CountingSafety::MayTerminate);
        let report = analyze(&a);
        assert_eq!(report.magic, MagicSafety::SafeDatalog);
        assert!(report.to_string().contains("safe"));
    }

    #[test]
    fn same_generation_counting_may_terminate() {
        let a = adorned(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
            "sg(john, Y)",
        );
        assert_eq!(counting_safety(&a), CountingSafety::MayTerminate);
    }

    #[test]
    fn argument_graph_structure() {
        let a = adorned(
            "a(X, Y) :- p(X, Y).
             a(X, Y) :- a(X, Z), a(Z, Y).",
            "a(john, Y)",
        );
        let g = ArgumentGraph::build(&a);
        // The bound position of a^bf maps to itself through the first body
        // literal a(X, Z).
        let node: ArgumentNode = (Symbol::new("a"), "bf".parse().unwrap(), 0);
        assert!(g.arcs.contains(&(node.clone(), node)));
    }
}
