//! The high-level planner: choose a strategy, rewrite, evaluate bottom-up,
//! read off the answers.
//!
//! This is the "query evaluation algorithm = sideways information passing +
//! control" decomposition of the paper made concrete: the sip strategy and
//! the rewriting method are chosen here, and the control component is always
//! the bottom-up engine of `magic-engine`.

use crate::adorn::{adorn, AdornedProgram};
use crate::optimality::{account, FactAccounting};
use crate::rewrite::{counting, gms, gsc, gsms, semijoin, Method, RewriteError, RewrittenProgram};
use crate::safety::{analyze, SafetyReport};
use crate::sip_builder::SipStrategy;
use magic_datalog::{DependencyGraph, PredName, Program, Query, Schedule, Value};
use magic_engine::{
    answers::project_answers, EvalError, EvalStats, Evaluator, IterationScheme, Limits,
};
use magic_storage::Database;
use std::collections::BTreeSet;
use std::fmt;

/// The evaluation strategies offered by the planner: the two unrewritten
/// bottom-up baselines and the paper's rewrites (Section 11's GMS, GSMS, GC,
/// GSC, with and without the semijoin optimization).
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Strategy {
    /// Evaluate the original program with naive iteration, then select.
    NaiveBottomUp,
    /// Evaluate the original program with semi-naive iteration, then select.
    SemiNaiveBottomUp,
    /// Generalized magic sets (GMS).
    MagicSets,
    /// Generalized supplementary magic sets (GSMS).
    SupplementaryMagicSets,
    /// Generalized counting (GC).
    Counting,
    /// Generalized supplementary counting (GSC).
    SupplementaryCounting,
    /// GC followed by the semijoin optimization.
    CountingSemijoin,
    /// GSC followed by the semijoin optimization.
    SupplementaryCountingSemijoin,
}

impl Strategy {
    /// All strategies, in presentation order.
    pub const ALL: [Strategy; 8] = [
        Strategy::NaiveBottomUp,
        Strategy::SemiNaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
        Strategy::Counting,
        Strategy::SupplementaryCounting,
        Strategy::CountingSemijoin,
        Strategy::SupplementaryCountingSemijoin,
    ];

    /// The rewriting strategies (everything except the two baselines).
    pub const REWRITES: [Strategy; 6] = [
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
        Strategy::Counting,
        Strategy::SupplementaryCounting,
        Strategy::CountingSemijoin,
        Strategy::SupplementaryCountingSemijoin,
    ];

    /// A short name suitable for tables.
    pub fn short_name(&self) -> &'static str {
        match self {
            Strategy::NaiveBottomUp => "naive",
            Strategy::SemiNaiveBottomUp => "seminaive",
            Strategy::MagicSets => "gms",
            Strategy::SupplementaryMagicSets => "gsms",
            Strategy::Counting => "gc",
            Strategy::SupplementaryCounting => "gsc",
            Strategy::CountingSemijoin => "gc+sj",
            Strategy::SupplementaryCountingSemijoin => "gsc+sj",
        }
    }

    /// True for the counting-based strategies (which have the restricted
    /// applicability and divergence behaviour of Sections 6–8 and 10).
    pub fn is_counting(&self) -> bool {
        matches!(
            self,
            Strategy::Counting
                | Strategy::SupplementaryCounting
                | Strategy::CountingSemijoin
                | Strategy::SupplementaryCountingSemijoin
        )
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Errors raised while planning or executing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// The rewrite could not be constructed.
    Rewrite(RewriteError),
    /// Evaluation failed (resource limits, range restriction, ...).
    Eval(EvalError),
    /// A counting plan was refused by the cycle-detecting safety
    /// pre-check (Section 10, Theorem 10.3): the rewritten program
    /// recurses through counting-indexed predicates and the query's
    /// argument graph is cyclic, so the counting indexes would grow
    /// without bound — bottom-up evaluation cannot terminate, whatever
    /// the data.  Refusing up front replaces the old behaviour of
    /// spinning until `Limits::max_wall`.
    CountingUnsafe {
        /// A counting-indexed predicate of the offending recursive cone.
        pred: String,
    },
    /// The program (or, for the magic rewrite, its rewritten form) is not
    /// stratifiable: some negated/aggregated dependency stays inside a
    /// strongly connected component, so no evaluation order can finish the
    /// complemented relation before it is needed.  Refused up front with
    /// the offending cycle, mirroring [`PlanError::CountingUnsafe`].
    Unstratifiable {
        /// The negated/aggregated predicate closing the cycle.
        pred: String,
        /// The members of the offending SCC, pretty-printed in order.
        cycle: Vec<String>,
    },
    /// The chosen strategy cannot evaluate this program's negation or
    /// aggregates (v1 policy: aggregates only under the bottom-up
    /// baselines; negation under the baselines and GMS).
    GuardedUnsupported {
        /// The refusing strategy's short name.
        strategy: String,
        /// Why the strategy refuses.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Rewrite(e) => write!(f, "rewrite error: {e}"),
            PlanError::Eval(e) => write!(f, "evaluation error: {e}"),
            PlanError::CountingUnsafe { pred } => write!(
                f,
                "counting plan refused: recursion through counting-indexed \
                 predicate {pred} with a cyclic argument graph cannot \
                 terminate (Theorem 10.3)"
            ),
            PlanError::Unstratifiable { pred, cycle } => write!(
                f,
                "plan refused: the program is not stratifiable — {pred} is \
                 negated/aggregated inside the cycle [{}]",
                cycle.join(" -> ")
            ),
            PlanError::GuardedUnsupported { strategy, reason } => write!(
                f,
                "strategy {strategy} does not support this program's \
                 negation/aggregates: {reason}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<RewriteError> for PlanError {
    fn from(e: RewriteError) -> Self {
        PlanError::Rewrite(e)
    }
}

impl From<EvalError> for PlanError {
    fn from(e: EvalError) -> Self {
        PlanError::Eval(e)
    }
}

/// A prepared plan: the program to evaluate bottom-up and how to read the
/// answers back out.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The strategy that produced the plan.
    pub strategy: Strategy,
    /// The program handed to the engine (rewritten, or the original for the
    /// baselines).
    pub program: Program,
    /// The rewritten program (absent for the baselines).
    pub rewritten: Option<RewrittenProgram>,
    /// The adorned program (absent for the baselines).
    pub adorned: Option<AdornedProgram>,
    /// The atom whose matches contain the answers.
    pub answer_atom: magic_datalog::Atom,
    /// The original query's free variables (the projection of the matches).
    pub projection: Vec<magic_datalog::Variable>,
    /// The base predicates of the original program (used for accounting).
    pub base_preds: BTreeSet<PredName>,
    /// Evaluation limits.
    pub limits: Limits,
    /// Iteration scheme handed to the engine.
    pub scheme: IterationScheme,
}

/// The result of executing a plan.
#[derive(Clone, Debug)]
pub struct PlanResult {
    /// The distinct answer rows (values of the query's free variables).
    pub answers: BTreeSet<Vec<Value>>,
    /// The full database at the fixpoint (base + derived facts).
    pub database: Database,
    /// Engine metrics.
    pub stats: EvalStats,
    /// Classification of the derived facts (Section 9 accounting).
    pub accounting: FactAccounting,
}

impl Plan {
    /// Evaluate the plan against an extensional database.
    pub fn execute(&self, edb: &Database) -> Result<PlanResult, PlanError> {
        let evaluator = Evaluator::new(self.program.clone())
            .with_limits(self.limits)
            .with_scheme(self.scheme);
        // Index the answer atom's bound-constant positions *before*
        // evaluation: building it on the (empty or small) pre-derivation
        // relation is free, and every insert then maintains it
        // incrementally — the answer projection probes a warm index with
        // no post-run rebuild scan over the derived rows.
        //
        // Guard: `ensure_atom_index` creates the relation if absent, and a
        // relation created at the *query's* arity would make evaluation of
        // a program that derives the same predicate at a different arity
        // fail — whereas a mistyped query historically just returned no
        // answers.  Only pre-ensure when the query's arity agrees with
        // whatever the database or the program already says.
        let mut db = edb.clone();
        let stored_arity = db.relation(&self.answer_atom.pred).map(|r| r.arity());
        let declared_arity = self
            .program
            .predicate_arities()
            .ok()
            .and_then(|arities| arities.get(&self.answer_atom.pred).copied());
        let arity_consistent = stored_arity
            .or(declared_arity)
            .is_none_or(|arity| arity == self.answer_atom.arity());
        if arity_consistent {
            magic_engine::answers::ensure_atom_index(&mut db, &self.answer_atom);
        }
        let result = evaluator.run_db(db)?;
        let answers = project_answers(&result.database, &self.answer_atom, &self.projection);
        let accounting = account(&result.database, &self.base_preds);
        Ok(PlanResult {
            answers,
            database: result.database,
            stats: result.stats,
            accounting,
        })
    }

    /// The safety report for the adorned program, when available.
    pub fn safety(&self) -> Option<SafetyReport> {
        self.adorned.as_ref().map(analyze)
    }

    /// A stable key naming the materializable view this plan computes: the
    /// answer predicate with the adornment and bound constants of the query
    /// it was planned for, e.g. `anc[bf](john)`.  Two queries with the same
    /// binding pattern and constants produce the same key (whatever their
    /// free variables are called), which is what view catalogs cache on.
    pub fn view_binding(&self) -> String {
        let atom = &self.answer_atom;
        let mut adornment = String::new();
        let mut bound: Vec<String> = Vec::new();
        for term in &atom.terms {
            if term.vars().is_empty() {
                adornment.push('b');
                bound.push(term.to_string());
            } else {
                adornment.push('f');
            }
        }
        format!("{}[{}]({})", atom.pred, adornment, bound.join(", "))
    }
}

/// The planner: strategy, sip strategy, evaluation limits.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    strategy: Strategy,
    sip: SipStrategy,
    limits: Limits,
    gms_options: gms::GmsOptions,
}

impl Planner {
    /// A planner for the given strategy with the full left-to-right sip and
    /// default limits.
    pub fn new(strategy: Strategy) -> Planner {
        Planner {
            strategy,
            sip: SipStrategy::FullLeftToRight,
            limits: Limits::default(),
            gms_options: gms::GmsOptions::default(),
        }
    }

    /// Use a different sip strategy.
    pub fn with_sip(mut self, sip: SipStrategy) -> Planner {
        self.sip = sip;
        self
    }

    /// Use different evaluation limits.
    pub fn with_limits(mut self, limits: Limits) -> Planner {
        self.limits = limits;
        self
    }

    /// Use non-default magic-sets options.
    pub fn with_gms_options(mut self, options: gms::GmsOptions) -> Planner {
        self.gms_options = options;
        self
    }

    /// The strategy this planner uses.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Perform only the rewrite (adornment + rule rewriting), without
    /// evaluating.  Errors for the two baseline strategies, which do not
    /// rewrite.
    pub fn rewrite(&self, program: &Program, query: &Query) -> Result<RewrittenProgram, PlanError> {
        if matches!(
            self.strategy,
            Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp
        ) {
            return Err(PlanError::Rewrite(RewriteError::CountingNotApplicable {
                reason: "the bottom-up baselines do not rewrite the program".into(),
            }));
        }
        check_stratified(program)?;
        self.check_guarded_supported(program)?;
        let adorned = adorn(program, query, self.sip).map_err(RewriteError::Datalog)?;
        let mut rewritten = match self.strategy {
            Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp => unreachable!("refused above"),
            Strategy::MagicSets => gms::rewrite(&adorned, self.gms_options)?,
            Strategy::SupplementaryMagicSets => gsms::rewrite(&adorned)?,
            Strategy::Counting => counting::rewrite(&adorned)?,
            Strategy::SupplementaryCounting => gsc::rewrite(&adorned)?,
            Strategy::CountingSemijoin => semijoin::optimize(&counting::rewrite(&adorned)?)?,
            Strategy::SupplementaryCountingSemijoin => {
                semijoin::optimize(&gsc::rewrite(&adorned)?)?
            }
        };
        if program.rules.iter().any(|r| !r.negated.is_empty()) {
            append_negated_cones(program, &mut rewritten.program);
            check_stratified(&rewritten.program)?;
        }
        Ok(rewritten)
    }

    /// The v1 negation/aggregate policy: aggregates are stratum-boundary
    /// reductions and never sideways-information sources, so no rewrite
    /// supports them; negated subgoals are supported by GMS only (the
    /// modified rules carry them, with their cones appended unrewritten —
    /// see [`append_negated_cones`]).  The bottom-up baselines evaluate
    /// everything the engine stratifies.
    fn check_guarded_supported(&self, program: &Program) -> Result<(), PlanError> {
        if program.rules.iter().any(|r| r.aggregate.is_some()) {
            return Err(PlanError::GuardedUnsupported {
                strategy: self.strategy.to_string(),
                reason: "aggregate heads are stratum-boundary reductions, not \
                         sideways-information sources; evaluate them with a \
                         bottom-up baseline"
                    .into(),
            });
        }
        if program.rules.iter().any(|r| !r.negated.is_empty())
            && self.strategy != Strategy::MagicSets
        {
            return Err(PlanError::GuardedUnsupported {
                strategy: self.strategy.to_string(),
                reason: "negated subgoals are only supported under gms, where \
                         the modified rules keep them and their cones are \
                         appended unrewritten"
                    .into(),
            });
        }
        Ok(())
    }

    /// Build a plan for `(program, query)`.
    pub fn plan(&self, program: &Program, query: &Query) -> Result<Plan, PlanError> {
        let base_preds = program.base_preds();
        let scheme = if self.strategy == Strategy::NaiveBottomUp {
            IterationScheme::Naive
        } else {
            IterationScheme::SemiNaive
        };
        match self.strategy {
            Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp => {
                check_stratified(program)?;
                Ok(Plan {
                    strategy: self.strategy,
                    program: program.clone(),
                    rewritten: None,
                    adorned: None,
                    answer_atom: query.atom.clone(),
                    projection: query.free_vars(),
                    base_preds,
                    limits: self.limits,
                    scheme,
                })
            }
            _ => {
                check_stratified(program)?;
                self.check_guarded_supported(program)?;
                let adorned = adorn(program, query, self.sip).map_err(RewriteError::Datalog)?;
                let rewritten = self.rewrite(program, query)?;
                if self.strategy.is_counting() {
                    check_counting_safe(&adorned, &rewritten.program)?;
                }
                Ok(Plan {
                    strategy: self.strategy,
                    program: rewritten.program.clone(),
                    answer_atom: rewritten.answer_atom.clone(),
                    projection: rewritten.projection.clone(),
                    rewritten: Some(rewritten),
                    adorned: Some(adorned),
                    base_preds,
                    limits: self.limits,
                    scheme,
                })
            }
        }
    }

    /// Convenience: plan and execute in one call.
    pub fn evaluate(
        &self,
        program: &Program,
        query: &Query,
        edb: &Database,
    ) -> Result<PlanResult, PlanError> {
        self.plan(program, query)?.execute(edb)
    }
}

/// Refuse unstratifiable programs with the typed violation (the first, in
/// deterministic order) before any rewrite or evaluation work.
fn check_stratified(program: &Program) -> Result<(), PlanError> {
    let schedule = Schedule::build(program);
    if let Some(v) = schedule.stratification_violations().first() {
        return Err(PlanError::Unstratifiable {
            pred: v.pred.to_string(),
            cycle: v.cycle.iter().map(|p| p.to_string()).collect(),
        });
    }
    Ok(())
}

/// The v1 negation policy for the magic rewrite: a negated subgoal reads
/// the *complete* relation of its predicate, so magic restriction — which
/// prunes derivation to query-relevant bindings — must not apply to it.
/// Negated atoms keep their plain names through adornment; this appends
/// the original (unrewritten) rules of every negated derived predicate's
/// reachable cone, so the rewritten program defines those plain names in
/// full while the positive fragment stays magic-restricted.
fn append_negated_cones(original: &Program, rewritten: &mut Program) {
    let graph = DependencyGraph::build(original);
    let mut cone: BTreeSet<PredName> = BTreeSet::new();
    for rule in &original.rules {
        for atom in &rule.negated {
            cone.extend(graph.reachable_from(&atom.pred));
        }
    }
    for rule in &original.rules {
        if cone.contains(&rule.head.pred) {
            rewritten.rules.push(rule.clone());
        }
    }
}

/// The cycle-detecting counting pre-check (paper Section 10).
///
/// Two facts are combined: the [`Schedule`]'s SCC pass over the rewritten
/// program finds the cones that are *recursive through counting-indexed
/// predicates* (indexed / counting / supplementary-counting strata), and
/// the static argument-graph analysis ([`counting_safety`], Theorem 10.3)
/// proves whether their counting indexes can grow without bound.  Only
/// when both hold is the plan refused — a recursive counting cone with an
/// acyclic argument graph (e.g. the linear ancestor chain) terminates and
/// must stay plannable.  Data-level divergence (cyclic EDB under a
/// statically fine program) remains a run-time concern bounded by
/// [`Limits::max_wall`].
fn check_counting_safe(adorned: &AdornedProgram, rewritten: &Program) -> Result<(), PlanError> {
    if crate::safety::counting_safety(adorned) != crate::safety::CountingSafety::NonTerminating {
        return Ok(());
    }
    let schedule = Schedule::build(rewritten);
    let witness = schedule
        .recursive_counting_strata()
        .flat_map(|s| s.preds.iter())
        .next();
    if let Some(pred) = witness {
        return Err(PlanError::CountingUnsafe {
            pred: pred.to_string(),
        });
    }
    Ok(())
}

/// The method corresponding to a strategy, when it is a rewrite.
pub fn method_of(strategy: Strategy) -> Option<Method> {
    match strategy {
        Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp => None,
        Strategy::MagicSets => Some(Method::Gms),
        Strategy::SupplementaryMagicSets => Some(Method::Gsms),
        Strategy::Counting => Some(Method::Gc),
        Strategy::SupplementaryCounting => Some(Method::Gsc),
        Strategy::CountingSemijoin => Some(Method::GcSemijoin),
        Strategy::SupplementaryCountingSemijoin => Some(Method::GscSemijoin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_program, parse_query};

    fn ancestor_program() -> Program {
        parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap()
    }

    fn chain_db(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db
    }

    #[test]
    fn all_strategies_agree_on_ancestor_chain() {
        let program = ancestor_program();
        let query = parse_query("anc(n0, Y)").unwrap();
        let db = chain_db(12);
        let reference = Planner::new(Strategy::SemiNaiveBottomUp)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert_eq!(reference.answers.len(), 12);
        for strategy in Strategy::ALL {
            let result = Planner::new(strategy)
                .evaluate(&program, &query, &db)
                .unwrap();
            assert_eq!(
                result.answers, reference.answers,
                "strategy {strategy} disagrees"
            );
        }
    }

    #[test]
    fn magic_restricts_computation_to_relevant_facts() {
        // Section 1's motivating observation: bottom-up computes the whole
        // anc relation, magic only the part reachable from the query
        // constant.
        let program = ancestor_program();
        let query = parse_query("anc(n10, Y)").unwrap();
        let db = chain_db(20);
        let baseline = Planner::new(Strategy::SemiNaiveBottomUp)
            .evaluate(&program, &query, &db)
            .unwrap();
        let magic = Planner::new(Strategy::MagicSets)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert_eq!(baseline.answers, magic.answers);
        assert!(magic.accounting.answer_facts < baseline.accounting.answer_facts);
        assert!(magic.stats.facts_derived < baseline.stats.facts_derived);
        // The magic facts are exactly the nodes reachable from n10 (n10..n20).
        assert_eq!(magic.accounting.subquery_facts, 11);
    }

    #[test]
    fn planner_reports_safety() {
        let program = ancestor_program();
        let query = parse_query("anc(n0, Y)").unwrap();
        let plan = Planner::new(Strategy::MagicSets)
            .plan(&program, &query)
            .unwrap();
        let report = plan.safety().unwrap();
        assert_eq!(report.magic, crate::safety::MagicSafety::SafeDatalog);
        // Baseline plans carry no adorned program.
        let baseline = Planner::new(Strategy::NaiveBottomUp)
            .plan(&program, &query)
            .unwrap();
        assert!(baseline.safety().is_none());
    }

    #[test]
    fn arity_mismatched_query_returns_no_answers_not_an_error() {
        // anc is derived at arity 2; querying it at arity 1 is a user
        // mistake that has always meant "no answers".  The pre-evaluation
        // answer-index ensure must not turn it into an ArityMismatch by
        // creating the relation at the query's arity.
        let program = ancestor_program();
        let query = magic_datalog::parse_query("anc(n0)").unwrap();
        let db = chain_db(4);
        let result = Planner::new(Strategy::SemiNaiveBottomUp)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert!(result.answers.is_empty());
    }

    #[test]
    fn counting_on_a_cyclic_argument_graph_is_refused_up_front() {
        // Theorem 10.3: nonlinear ancestor makes every counting strategy
        // diverge regardless of data; the planner must refuse with the
        // typed error instead of relying on run-time limits.
        let nonlinear = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let query = parse_query("anc(n0, Y)").unwrap();
        for strategy in [
            Strategy::Counting,
            Strategy::SupplementaryCounting,
            Strategy::CountingSemijoin,
            Strategy::SupplementaryCountingSemijoin,
        ] {
            let err = Planner::new(strategy).plan(&nonlinear, &query).unwrap_err();
            assert!(
                matches!(err, PlanError::CountingUnsafe { .. }),
                "{strategy}: expected CountingUnsafe, got {err}"
            );
        }
        // The magic strategies stay plannable on the same program, and the
        // linear variant stays plannable under counting.
        assert!(Planner::new(Strategy::MagicSets)
            .plan(&nonlinear, &query)
            .is_ok());
        assert!(Planner::new(Strategy::Counting)
            .plan(&ancestor_program(), &query)
            .is_ok());
    }

    #[test]
    fn rewrite_only_errors_for_baselines() {
        let program = ancestor_program();
        let query = parse_query("anc(n0, Y)").unwrap();
        assert!(Planner::new(Strategy::NaiveBottomUp)
            .rewrite(&program, &query)
            .is_err());
        assert!(Planner::new(Strategy::MagicSets)
            .rewrite(&program, &query)
            .is_ok());
    }

    #[test]
    fn strategy_helpers() {
        assert_eq!(Strategy::ALL.len(), 8);
        assert!(Strategy::Counting.is_counting());
        assert!(!Strategy::MagicSets.is_counting());
        assert_eq!(
            method_of(Strategy::SupplementaryMagicSets),
            Some(Method::Gsms)
        );
        assert_eq!(method_of(Strategy::NaiveBottomUp), None);
        assert_eq!(Strategy::CountingSemijoin.to_string(), "gc+sj");
    }

    #[test]
    fn unstratifiable_programs_are_refused_at_plan_time() {
        // win(X) :- move(X, Y), not win(Y) — negation inside win's own
        // recursive component.  Every strategy must refuse before any
        // rewrite or evaluation work, with the offending predicate named.
        let program = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let query = parse_query("win(a)").unwrap();
        for strategy in Strategy::ALL {
            let err = Planner::new(strategy).plan(&program, &query).unwrap_err();
            match err {
                PlanError::Unstratifiable {
                    ref pred,
                    ref cycle,
                } => {
                    assert_eq!(pred, "win", "{strategy}");
                    assert!(cycle.contains(&"win".to_string()), "{strategy}: {cycle:?}");
                }
                other => panic!("{strategy}: expected Unstratifiable, got {other}"),
            }
        }
    }

    #[test]
    fn gms_with_negation_appends_the_unrewritten_cone() {
        // unreached reads the complement of reach, so the rewritten
        // program must still define plain (unrestricted) reach alongside
        // the magic-restricted fragment.
        let program = parse_program(
            "reach(X) :- source(X).
             reach(Y) :- reach(X), edge(X, Y).
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let query = parse_query("unreached(Y)").unwrap();
        let mut db = Database::new();
        db.insert(PredName::plain("source"), vec![Value::sym("a")]);
        db.insert_pair("edge", "a", "b");
        db.insert_pair("edge", "b", "c");
        db.insert_pair("edge", "d", "e");
        for n in ["a", "b", "c", "d", "e"] {
            db.insert(PredName::plain("node"), vec![Value::sym(n)]);
        }
        let reference = Planner::new(Strategy::SemiNaiveBottomUp)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert_eq!(reference.answers.len(), 2); // d, e
        let magic = Planner::new(Strategy::MagicSets)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert_eq!(magic.answers, reference.answers);
        // The rewritten program carries the original reach rules under
        // their plain name (the appended cone).
        let rewritten = Planner::new(Strategy::MagicSets)
            .rewrite(&program, &query)
            .unwrap();
        let plain_reach = rewritten
            .program
            .rules
            .iter()
            .filter(|r| r.head.pred == PredName::plain("reach"))
            .count();
        assert_eq!(plain_reach, 2, "cone must define plain reach in full");
    }

    #[test]
    fn aggregates_and_non_gms_negation_are_typed_refusals() {
        // v1 policy: aggregates are refused under every rewrite strategy;
        // negation is only supported under the magic-sets rewrites.
        let aggregated = parse_program(
            "cost(P, C) :- part_cost(P, C).
             total(P, sum<C>) :- cost(P, C).",
        )
        .unwrap();
        let agg_query = parse_query("total(p, C)").unwrap();
        let negated = parse_program(
            "reach(X) :- source(X).
             reach(Y) :- reach(X), edge(X, Y).
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let neg_query = parse_query("unreached(Y)").unwrap();
        for strategy in Strategy::ALL {
            if matches!(
                strategy,
                Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp
            ) {
                continue;
            }
            let err = Planner::new(strategy)
                .plan(&aggregated, &agg_query)
                .unwrap_err();
            assert!(
                matches!(err, PlanError::GuardedUnsupported { .. }),
                "{strategy}: expected GuardedUnsupported for aggregates, got {err}"
            );
            let neg = Planner::new(strategy).plan(&negated, &neg_query);
            if matches!(strategy, Strategy::MagicSets) {
                assert!(neg.is_ok(), "{strategy}: gms must plan negation");
            } else {
                let err = neg.unwrap_err();
                assert!(
                    matches!(err, PlanError::GuardedUnsupported { .. }),
                    "{strategy}: expected GuardedUnsupported for negation, got {err}"
                );
            }
        }
        // The baselines evaluate both programs fine.
        assert!(Planner::new(Strategy::SemiNaiveBottomUp)
            .plan(&aggregated, &agg_query)
            .is_ok());
        assert!(Planner::new(Strategy::NaiveBottomUp)
            .plan(&negated, &neg_query)
            .is_ok());
    }

    #[test]
    fn partial_sip_still_produces_correct_answers() {
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap();
        let query = parse_query("sg(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("up", "a", "m");
        db.insert_pair("up", "b", "n");
        db.insert_pair("flat", "m", "n");
        db.insert_pair("flat", "n", "m");
        db.insert_pair("flat", "a", "b");
        db.insert_pair("down", "m", "c");
        db.insert_pair("down", "n", "d");
        let reference = Planner::new(Strategy::SemiNaiveBottomUp)
            .evaluate(&program, &query, &db)
            .unwrap();
        for sip in [
            SipStrategy::FullLeftToRight,
            SipStrategy::LeftToRightLastOnly,
        ] {
            for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
                let result = Planner::new(strategy)
                    .with_sip(sip)
                    .evaluate(&program, &query, &db)
                    .unwrap();
                assert_eq!(result.answers, reference.answers, "{strategy} with {sip:?}");
            }
        }
    }
}
