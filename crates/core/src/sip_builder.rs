//! Built-in sip construction strategies.
//!
//! The paper leaves the *choice* of sip open; these builders produce the
//! standard choices used in its examples:
//!
//! * [`SipStrategy::FullLeftToRight`] — the full, compressed sip (I)/(IV) of
//!   Example 1: body literals are taken in textual order, and every arc
//!   carries all bindings established so far (head plus all preceding
//!   literals).
//! * [`SipStrategy::LeftToRightLastOnly`] — the partial sip (II)/(V): only
//!   the most recently solved derived literal (or the head) together with the
//!   base literals solved since then feed each arc, so "past" information is
//!   not carried along.
//! * [`SipStrategy::Empty`] — no sideways information passing at all; the
//!   rewrites degenerate to (roughly) the original program.

use crate::sip::{Sip, SipArc, SipNode};
use magic_datalog::{Adornment, PredName, Rule, Variable};
use std::collections::BTreeSet;

/// A strategy for choosing a sip for each (rule, head adornment) pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SipStrategy {
    /// Full left-to-right compressed sips (the default throughout the paper's
    /// examples).
    #[default]
    FullLeftToRight,
    /// Partial left-to-right sips that forget "past" information (Example 1,
    /// sip (II)).
    LeftToRightLastOnly,
    /// No information passing.
    Empty,
}

impl SipStrategy {
    /// Build the sip for `rule` when invoked with head adornment
    /// `head_adornment`.  `derived` is the set of derived predicates of the
    /// program; arcs are only generated into derived body occurrences (the
    /// paper's generalized notation — bindings to base predicates are used as
    /// selections by the evaluator and need no arcs).
    pub fn build(
        &self,
        rule: &Rule,
        head_adornment: &Adornment,
        derived: &BTreeSet<PredName>,
    ) -> Sip {
        match self {
            SipStrategy::Empty => Sip::empty(),
            SipStrategy::FullLeftToRight => {
                build_left_to_right(rule, head_adornment, derived, true)
            }
            SipStrategy::LeftToRightLastOnly => {
                build_left_to_right(rule, head_adornment, derived, false)
            }
        }
    }
}

fn head_bound_vars(rule: &Rule, head_adornment: &Adornment) -> BTreeSet<Variable> {
    head_adornment
        .bound_positions()
        .into_iter()
        .flat_map(|p| rule.head.terms[p].vars())
        .collect()
}

/// The label of an arc into `target`: the variables of `available` that occur
/// in an argument of the target atom all of whose variables are available
/// (condition (2)(iii)).
fn covering_label(
    rule: &Rule,
    target: usize,
    available: &BTreeSet<Variable>,
) -> BTreeSet<Variable> {
    let mut label = BTreeSet::new();
    for term in &rule.body[target].terms {
        let vars = term.vars();
        if !vars.is_empty() && vars.iter().all(|v| available.contains(v)) {
            label.extend(vars);
        }
    }
    label
}

fn build_left_to_right(
    rule: &Rule,
    head_adornment: &Adornment,
    derived: &BTreeSet<PredName>,
    full: bool,
) -> Sip {
    let head_vars = head_bound_vars(rule, head_adornment);
    let mut arcs = Vec::new();

    // State for the "full" variant: everything bound so far.
    let mut bound: BTreeSet<Variable> = head_vars.clone();
    let mut solved: Vec<SipNode> = if head_vars.is_empty() {
        Vec::new()
    } else {
        vec![SipNode::Head]
    };

    // State for the "last only" variant: the most recent derived (or head)
    // node and the base literals solved since then, with their variables.
    let mut recent_nodes: Vec<SipNode> = solved.clone();
    let mut recent_vars: BTreeSet<Variable> = head_vars;

    for (i, atom) in rule.body.iter().enumerate() {
        let is_derived = derived.contains(&atom.pred);
        if is_derived {
            let (available, tail_nodes): (&BTreeSet<Variable>, &Vec<SipNode>) = if full {
                (&bound, &solved)
            } else {
                (&recent_vars, &recent_nodes)
            };
            let label = covering_label(rule, i, available);
            if !label.is_empty() {
                // Condition (2)(ii): keep only tail members connected to a
                // label variable through the rule's variable-connection
                // relation; with condition (C) every member qualifies, so we
                // simply keep every solved node that shares at least one
                // variable with the rule (i.e. all of them).
                let tail: BTreeSet<SipNode> = tail_nodes.iter().copied().collect();
                arcs.push(SipArc {
                    tail,
                    target: i,
                    label,
                });
            }
        }
        // After this literal is solved, its variables become available.
        let atom_vars: BTreeSet<Variable> = atom.vars().into_iter().collect();
        bound.extend(atom_vars.iter().copied());
        solved.push(SipNode::Body(i));
        if is_derived {
            // A derived literal resets the "recent" window.
            recent_nodes = vec![SipNode::Body(i)];
            recent_vars = atom_vars;
        } else {
            recent_nodes.push(SipNode::Body(i));
            recent_vars.extend(atom_vars);
        }
    }
    Sip { arcs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::parse_rule;

    fn derived_sg() -> BTreeSet<PredName> {
        [PredName::plain("sg")].into_iter().collect()
    }

    fn sg_rule() -> Rule {
        parse_rule("sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).")
            .unwrap()
    }

    #[test]
    fn full_sip_matches_example_1_sip_iv() {
        let bf: Adornment = "bf".parse().unwrap();
        let sip = SipStrategy::FullLeftToRight.build(&sg_rule(), &bf, &derived_sg());
        assert!(sip.validate(&sg_rule(), &bf).is_ok());
        assert_eq!(sip.arcs.len(), 2);
        // Arc into sg.1 (occurrence 1): tail {head, up}, label {Z1}.
        let a0 = &sip.arcs[0];
        assert_eq!(a0.target, 1);
        assert_eq!(
            a0.tail,
            [SipNode::Head, SipNode::Body(0)].into_iter().collect()
        );
        assert_eq!(a0.label, [Variable::new("Z1")].into_iter().collect());
        // Arc into sg.2 (occurrence 3): tail {head, up, sg.1, flat}, label {Z3}.
        let a1 = &sip.arcs[1];
        assert_eq!(a1.target, 3);
        assert_eq!(
            a1.tail,
            [
                SipNode::Head,
                SipNode::Body(0),
                SipNode::Body(1),
                SipNode::Body(2)
            ]
            .into_iter()
            .collect()
        );
        assert_eq!(a1.label, [Variable::new("Z3")].into_iter().collect());
    }

    #[test]
    fn partial_sip_matches_example_1_sip_v() {
        let bf: Adornment = "bf".parse().unwrap();
        let sip = SipStrategy::LeftToRightLastOnly.build(&sg_rule(), &bf, &derived_sg());
        assert!(sip.validate(&sg_rule(), &bf).is_ok());
        assert_eq!(sip.arcs.len(), 2);
        // Arc into sg.2: tail {sg.1, flat}, label {Z3} (the head and up are
        // forgotten).
        let a1 = &sip.arcs[1];
        assert_eq!(a1.target, 3);
        assert_eq!(
            a1.tail,
            [SipNode::Body(1), SipNode::Body(2)].into_iter().collect()
        );
        // The partial sip is properly contained in the full sip (Lemma 9.3's
        // hypothesis).
        let full = SipStrategy::FullLeftToRight.build(&sg_rule(), &bf, &derived_sg());
        assert!(sip.partial_of(&full));
    }

    #[test]
    fn empty_strategy_builds_no_arcs() {
        let bf: Adornment = "bf".parse().unwrap();
        let sip = SipStrategy::Empty.build(&sg_rule(), &bf, &derived_sg());
        assert!(sip.arcs.is_empty());
    }

    #[test]
    fn free_head_adornment_can_still_pass_from_base_literals() {
        // With an all-free head, bindings can only originate from base
        // literals solved with all arguments free; the full strategy still
        // produces arcs into later derived literals.
        let ff: Adornment = "ff".parse().unwrap();
        let sip = SipStrategy::FullLeftToRight.build(&sg_rule(), &ff, &derived_sg());
        assert!(sip.validate(&sg_rule(), &ff).is_ok());
        // up(X, Z1) binds Z1, so sg.1 still receives an arc whose tail does
        // not include the head.
        let arcs1 = sip.arcs_into(1);
        assert_eq!(arcs1.len(), 1);
        assert!(!arcs1[0].tail.contains(&SipNode::Head));
    }

    #[test]
    fn ancestor_rule_full_sip() {
        let rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).").unwrap();
        let derived: BTreeSet<PredName> = [PredName::plain("anc")].into_iter().collect();
        let bf: Adornment = "bf".parse().unwrap();
        let sip = SipStrategy::FullLeftToRight.build(&rule, &bf, &derived);
        assert_eq!(sip.arcs.len(), 1);
        assert_eq!(sip.arcs[0].target, 1);
        assert_eq!(
            sip.arcs[0].label,
            [Variable::new("Z")].into_iter().collect()
        );
    }

    #[test]
    fn bound_bound_head_binds_everything() {
        let rule = parse_rule("append(V, W, Y) :- append(V, W, Y2), glue(Y2, Y).").unwrap();
        let derived: BTreeSet<PredName> = [PredName::plain("append")].into_iter().collect();
        let bb_f: Adornment = "bbf".parse().unwrap();
        let sip = SipStrategy::FullLeftToRight.build(&rule, &bb_f, &derived);
        assert_eq!(sip.arcs.len(), 1);
        assert_eq!(
            sip.arcs[0].label,
            [Variable::new("V"), Variable::new("W")]
                .into_iter()
                .collect()
        );
    }
}
