//! Checkpoints: a whole base database, frozen to one atomic file.
//!
//! A checkpoint bounds recovery time — restart cost is *checkpoint
//! load + WAL-since-checkpoint replay*, independent of how many
//! updates the database absorbed over its lifetime.  The file carries
//! four sections, in dependency order:
//!
//! 1. the [`ArenaSnapshot`]: interner symbol strings and value-arena
//!    node entries, because raw [`ValId`] words are process-run-local
//!    (inline symbol ids and node-table indexes mean nothing to a
//!    fresh process until the snapshot is re-installed);
//! 2. every base relation as a packed flat dump — predicate name,
//!    arity, row count, and the raw id words of its live rows in id
//!    order (see `Relation::packed_live_rows`);
//! 3. the catalog's exported bindings: `(binding key, query text)`
//!    pairs.  Materialized views are deliberately *not* serialized —
//!    recovery re-materializes each binding through the ordinary
//!    planner/fixpoint path over the restored base, so a restored view
//!    is correct by construction rather than trusted from disk;
//! 4. a `u64` WAL sequence number: every WAL frame with `seq` at or
//!    below it is already folded into the relations here and must be
//!    skipped on replay.
//!
//! The whole body is CRC-framed and written temp-file-then-rename, so
//! a crash mid-checkpoint leaves the previous checkpoint untouched: at
//! every instant there is one complete, verifiable checkpoint on disk.

use crate::crc32::crc32;
use crate::error::DurableError;
use magic_datalog::{ArenaSnapshot, PredName, SnapNode, ValId};
use magic_storage::{Database, Relation};
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// File magic + format version. Bump the trailing digits on any layout
/// change: a version-mismatched checkpoint must fail loudly, not
/// decode into garbage.
const MAGIC: &[u8; 8] = b"MGCKPT01";

/// One relation, packed flat (§2 of the file layout above).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDump {
    /// The predicate's rendered name (always a plain predicate — the
    /// base database holds no derived relations).
    pub name: String,
    /// Column count.
    pub arity: u32,
    /// Live row count (explicit because zero-arity relations pack to
    /// zero id words regardless of how many rows they hold).
    pub n_rows: u64,
    /// `n_rows * arity` raw [`ValId::raw`] words, rows concatenated in
    /// id order.
    pub ids: Vec<u32>,
}

/// An in-memory checkpoint: everything needed to rebuild the serving
/// state of a store, minus the WAL tail.
#[derive(Debug)]
pub struct Checkpoint {
    /// WAL frames with `seq <=` this are included in the relations.
    pub seq: u64,
    /// The interner/arena image the relation dumps' id words refer to.
    pub snapshot: ArenaSnapshot,
    /// Every base relation, packed (predicate-name order).
    pub relations: Vec<RelationDump>,
    /// `(binding key, query text)` for each view to re-materialize.
    pub bindings: Vec<(String, String)>,
}

impl Checkpoint {
    /// Freeze `db` (and the view bindings) as of WAL sequence `seq`.
    ///
    /// The relations are dumped *before* the arena is captured: the
    /// arena only grows, and every id a relation holds was interned
    /// before the row was inserted, so capturing afterwards guarantees
    /// the snapshot covers every dumped word even while reader threads
    /// concurrently intern new values (e.g. parsing queries).
    pub fn capture(
        seq: u64,
        db: &Database,
        bindings: &[(String, String)],
    ) -> Result<Checkpoint, DurableError> {
        let mut relations = Vec::new();
        for (pred, rel) in db.iter() {
            if !matches!(pred, PredName::Plain(_)) {
                return Err(DurableError::Corrupt(format!(
                    "checkpointing supports base databases only; found derived predicate {pred}"
                )));
            }
            relations.push(RelationDump {
                name: pred.to_string(),
                arity: rel.arity() as u32,
                n_rows: rel.len() as u64,
                ids: rel.packed_live_rows().iter().map(|id| id.raw()).collect(),
            });
        }
        Ok(Checkpoint {
            seq,
            snapshot: ArenaSnapshot::capture(),
            relations,
            bindings: bindings.to_vec(),
        })
    }

    /// Rebuild the base database in the current process: install the
    /// arena snapshot, remap every dumped id word to a live id, and
    /// adopt the relations wholesale.
    pub fn restore_database(&self) -> Result<Database, DurableError> {
        let remap = self.snapshot.install().ok_or_else(|| {
            DurableError::Corrupt("arena snapshot has dangling references".into())
        })?;
        let mut db = Database::new();
        for dump in &self.relations {
            let ids: Vec<ValId> = dump
                .ids
                .iter()
                .map(|&raw| remap.remap_raw(raw))
                .collect::<Option<_>>()
                .ok_or_else(|| {
                    DurableError::Corrupt(format!(
                        "relation {} references ids outside the snapshot",
                        dump.name
                    ))
                })?;
            let rel = Relation::from_packed_rows(dump.arity as usize, dump.n_rows as usize, &ids);
            db.insert_relation(PredName::plain(&dump.name), rel);
        }
        Ok(db)
    }

    /// Serialize to the on-disk byte layout (header + CRC-framed body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.seq);
        let syms = self.snapshot.symbols();
        put_u32(&mut body, syms.len() as u32);
        for s in syms {
            put_str(&mut body, s);
        }
        let nodes = self.snapshot.nodes();
        put_u32(&mut body, nodes.len() as u32);
        for node in nodes {
            match node {
                SnapNode::Int(v) => {
                    body.push(0);
                    put_u64(&mut body, *v as u64);
                }
                SnapNode::Sym(id) => {
                    body.push(1);
                    put_u32(&mut body, *id);
                }
                SnapNode::App { functor, children } => {
                    body.push(2);
                    put_u32(&mut body, *functor);
                    put_u32(&mut body, children.len() as u32);
                    for &c in children {
                        put_u32(&mut body, c);
                    }
                }
            }
        }
        put_u32(&mut body, self.relations.len() as u32);
        for dump in &self.relations {
            put_str(&mut body, &dump.name);
            put_u32(&mut body, dump.arity);
            put_u64(&mut body, dump.n_rows);
            put_u64(&mut body, dump.ids.len() as u64);
            for &id in &dump.ids {
                put_u32(&mut body, id);
            }
        }
        put_u32(&mut body, self.bindings.len() as u32);
        for (key, text) in &self.bindings {
            put_str(&mut body, key);
            put_str(&mut body, text);
        }

        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, body.len() as u32);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Decode the byte layout [`Checkpoint::encode`] writes, verifying
    /// magic, length, and checksum before touching the body.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, DurableError> {
        let corrupt = |msg: &str| DurableError::Corrupt(format!("checkpoint: {msg}"));
        if bytes.len() < 16 {
            return Err(corrupt("shorter than its header"));
        }
        if &bytes[0..8] != MAGIC {
            return Err(corrupt("bad magic (not a checkpoint, or a future format)"));
        }
        let body_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body = bytes
            .get(16..16 + body_len)
            .ok_or_else(|| corrupt("truncated body"))?;
        if crc32(body) != crc {
            return Err(corrupt("body checksum mismatch"));
        }

        let mut r = Reader { buf: body, pos: 0 };
        let seq = r.u64()?;
        let n_syms = r.u32()? as usize;
        let mut symbols = Vec::with_capacity(n_syms.min(1 << 20));
        for _ in 0..n_syms {
            symbols.push(r.string()?);
        }
        let n_nodes = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20));
        for _ in 0..n_nodes {
            nodes.push(match r.u8()? {
                0 => SnapNode::Int(r.u64()? as i64),
                1 => SnapNode::Sym(r.u32()?),
                2 => {
                    let functor = r.u32()?;
                    let n = r.u32()? as usize;
                    let mut children = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        children.push(r.u32()?);
                    }
                    SnapNode::App { functor, children }
                }
                tag => return Err(corrupt(&format!("unknown node tag {tag}"))),
            });
        }
        let n_rels = r.u32()? as usize;
        let mut relations = Vec::with_capacity(n_rels.min(1 << 20));
        for _ in 0..n_rels {
            let name = r.string()?;
            let arity = r.u32()?;
            let n_rows = r.u64()?;
            let n_ids = r.u64()? as usize;
            if n_ids as u64
                != n_rows
                    .checked_mul(arity as u64)
                    .ok_or_else(|| corrupt("row count overflow"))?
            {
                return Err(corrupt(&format!(
                    "relation {name}: id count does not match rows x arity"
                )));
            }
            let mut ids = Vec::with_capacity(n_ids.min(1 << 24));
            for _ in 0..n_ids {
                ids.push(r.u32()?);
            }
            relations.push(RelationDump {
                name,
                arity,
                n_rows,
                ids,
            });
        }
        let n_bindings = r.u32()? as usize;
        let mut bindings = Vec::with_capacity(n_bindings.min(1 << 20));
        for _ in 0..n_bindings {
            let key = r.string()?;
            let text = r.string()?;
            bindings.push((key, text));
        }
        if r.pos != body.len() {
            return Err(corrupt("trailing bytes after the last section"));
        }
        Ok(Checkpoint {
            seq,
            snapshot: ArenaSnapshot::from_parts(symbols, nodes),
            relations,
            bindings,
        })
    }

    /// Write atomically to `path`: encode, write a sibling temp file,
    /// fsync it, rename over `path`, and fsync the directory so the
    /// rename itself is durable.  A crash at any point leaves either
    /// the old checkpoint or the new one — never a torn mix.
    pub fn write_to(&self, path: &Path) -> Result<(), DurableError> {
        self.write_to_with(path, None)
    }

    /// [`Checkpoint::write_to`] with a fault-injection schedule: the
    /// rename step consults the plan, and an injected failure leaves
    /// the temp file behind exactly like a real rename failure would
    /// (the previous checkpoint at `path` is untouched either way).
    pub fn write_to_with(
        &self,
        path: &Path,
        faults: Option<&crate::faults::FaultPlan>,
    ) -> Result<(), DurableError> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        if let Some(plan) = faults {
            plan.on_checkpoint_rename()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Directory fsync makes the rename durable; some
            // filesystems refuse to open a directory for writing, so
            // failure to open is not fatal.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load and verify the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, DurableError> {
        Checkpoint::decode(&fs::read(path)?)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over the checkpoint body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| DurableError::Corrupt("checkpoint: body ends mid-field".into()))?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DurableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DurableError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DurableError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DurableError::Corrupt(format!("checkpoint: non-UTF-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{Fact, Symbol, Value};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("magic-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("checkpoint.bin")
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.insert_pair("par", "john", "mary");
        db.insert_pair("par", "mary", "ann");
        db.insert_fact(&Fact::plain(
            "m",
            vec![
                Value::int(-3),
                Value::app(
                    Symbol::new("pair"),
                    vec![Value::sym("x"), Value::int(1 << 40)],
                ),
            ],
        ));
        db.insert_fact(&Fact::plain("unit", vec![]));
        db
    }

    #[test]
    fn encode_decode_round_trips() {
        let db = sample_db();
        let bindings = vec![("anc[bf](john)@gms".to_string(), "anc(john, Y)".to_string())];
        let ckpt = Checkpoint::capture(42, &db, &bindings).unwrap();
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded.seq, 42);
        assert_eq!(decoded.bindings, bindings);
        assert_eq!(decoded.relations, ckpt.relations);
        assert_eq!(decoded.snapshot.symbols(), ckpt.snapshot.symbols());
        assert_eq!(decoded.snapshot.nodes(), ckpt.snapshot.nodes());
    }

    #[test]
    fn restore_rebuilds_an_equal_database() {
        let db = sample_db();
        let ckpt = Checkpoint::capture(7, &db, &[]).unwrap();
        // Through bytes, as recovery would see it.
        let restored = Checkpoint::decode(&ckpt.encode())
            .unwrap()
            .restore_database()
            .unwrap();
        assert_eq!(restored, db);
    }

    #[test]
    fn write_load_round_trips_and_replaces_atomically() {
        let path = tmp("write");
        let db = sample_db();
        Checkpoint::capture(1, &db, &[])
            .unwrap()
            .write_to(&path)
            .unwrap();
        let first = Checkpoint::load(&path).unwrap();
        assert_eq!(first.seq, 1);

        let mut db2 = db.clone();
        db2.insert_pair("par", "ann", "zoe");
        Checkpoint::capture(9, &db2, &[])
            .unwrap()
            .write_to(&path)
            .unwrap();
        let second = Checkpoint::load(&path).unwrap();
        assert_eq!(second.seq, 9);
        assert_eq!(second.restore_database().unwrap(), db2);
        // No temp file left behind.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn corruption_is_detected_not_decoded() {
        let db = sample_db();
        let bytes = Checkpoint::capture(3, &db, &[]).unwrap().encode();
        // Truncations never panic, and only the full buffer decodes.
        for cut in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A flipped body byte fails the checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(Checkpoint::decode(&flipped).is_err());
        // Wrong magic fails before anything else.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(Checkpoint::decode(&wrong).is_err());
    }

    #[test]
    fn derived_predicates_are_rejected_at_capture() {
        let mut db = Database::new();
        db.insert(
            magic_datalog::PredName::magic("anc", magic_datalog::Adornment::all_bound(1)),
            vec![Value::sym("john")],
        );
        assert!(Checkpoint::capture(0, &db, &[]).is_err());
    }
}
