//! The write-ahead log: length-prefixed, CRC-framed update batches.
//!
//! Every acked write batch becomes one *frame* appended to a single
//! append-only file:
//!
//! ```text
//! [u32 payload_len (LE)] [u32 crc32(payload) (LE)] [payload bytes]
//! ```
//!
//! The payload is a `u64` sequence number (LE) followed by one UTF-8
//! line per update — `I par(a, b)` for inserts, `R par(a, b)` for
//! retracts — rendered through the same atom syntax the serve protocol
//! speaks, so a WAL is greppable with ordinary shell tools.  Atoms
//! cannot contain newlines (the lexer rejects them), which is what
//! makes the line framing inside a frame unambiguous.
//!
//! # Crash semantics
//!
//! A crash (including `SIGKILL`) can interrupt an append at any byte
//! offset.  The CRC makes every such tear detectable: [`Wal::scan`]
//! reads frames from the start and stops at the first frame that is
//! short, oversized, or fails its checksum, reporting the byte length
//! of the valid prefix.  Recovery replays exactly that prefix and
//! truncates the rest — a torn frame was by definition never acked, so
//! discarding it cannot lose an acknowledged write.  Corruption *after*
//! a CRC-valid frame decodes (e.g. a payload that no longer parses) is
//! not a tear but a format violation, and surfaces as
//! [`DurableError::Corrupt`] instead of silent data loss.

use crate::crc32::crc32;
use crate::error::DurableError;
use crate::faults::FaultPlan;
use magic_datalog::{parse_query, Fact, Value};
use magic_incr::Update;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When the WAL issues `fsync` after appending a frame.
///
/// The kill-and-restart tests pass under every policy: a `SIGKILL`
/// loses nothing the OS already holds in the page cache, so the
/// policies differ only in how much a *machine* crash (power loss) can
/// lose — `Always` bounds it to zero acked batches, `EveryN(n)` to at
/// most `n`, `Never` to whatever the kernel hadn't written back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended frame (ack implies on-platter).
    Always,
    /// `fsync` once every `n` appended frames (`EveryN(0)` behaves
    /// like `EveryN(1)`).
    EveryN(u32),
    /// Never `fsync` from the append path; the OS flushes on its own
    /// schedule.  Checkpoints still sync explicitly.
    Never,
}

/// Frames larger than this are treated as torn garbage rather than
/// attempted: a length word this big in a real log means the length
/// field itself is trash (a tear landed inside it).
const MAX_FRAME_PAYLOAD: u32 = 1 << 28;

/// One decoded WAL frame: the batch sequence number and its updates.
#[derive(Clone, Debug)]
pub struct WalFrame {
    /// Monotonic batch sequence number (assigned by the store).
    pub seq: u64,
    /// The updates the batch applied, in application order.
    pub updates: Vec<Update>,
}

/// What [`Wal::scan`] found: the decodable frames, the byte length of
/// the valid prefix, and whether a torn tail followed it.
#[derive(Debug)]
pub struct WalScan {
    /// Every frame of the valid prefix, in append order.
    pub frames: Vec<WalFrame>,
    /// Byte length of the valid prefix (truncate to this to heal).
    pub valid_len: u64,
    /// True iff bytes after the valid prefix exist but don't form a
    /// complete, checksummed frame.
    pub torn: bool,
}

/// An open write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    policy: FsyncPolicy,
    appends_since_sync: u32,
    /// Injected-failure schedule (see [`crate::faults`]); `None` means
    /// every operation runs for real.
    faults: Option<Arc<FaultPlan>>,
}

impl Wal {
    /// Open (creating if absent) the log at `path`.  The write cursor
    /// is positioned at the end; call [`Wal::scan`] before appending if
    /// the file may hold a torn tail from a previous run.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<Wal> {
        Wal::open_with_faults(path, policy, None)
    }

    /// [`Wal::open`] with a fault-injection schedule installed.
    pub fn open_with_faults(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<Wal> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let bytes = file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path,
            bytes,
            policy,
            appends_since_sync: 0,
            faults,
        })
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current byte length of the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one frame and apply the fsync policy.  The frame is
    /// written with a single `write_all`, so on a kill either the
    /// whole frame reaches the page cache or a detectable tear does.
    ///
    /// On *failure* (a real I/O error or an injected fault) the file
    /// may be left holding a partial frame — exactly the tear a crash
    /// would leave.  The owner must [`Wal::heal`] before appending
    /// again, or later frames would land behind garbage that
    /// [`Wal::scan`] (correctly) refuses to read past.
    pub fn append(&mut self, seq: u64, updates: &[Update]) -> io::Result<()> {
        let payload = encode_payload(seq, updates);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Some(plan) = &self.faults {
            let fault = plan.on_append();
            if let Some(stall) = fault.stall {
                std::thread::sleep(stall);
            }
            if fault.torn {
                // Half the frame reaches the file, then the "device"
                // errors — the on-disk signature of a mid-append crash,
                // while this process stays alive to handle it.
                let half = &frame[..frame.len() / 2];
                let written = self.file.write(half).unwrap_or(0);
                self.bytes += written as u64;
                return Err(io::Error::other(format!(
                    "injected torn append at seq {seq} ({written} of {} bytes written)",
                    frame.len()
                )));
            }
        }
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.appends_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Force the log's bytes to stable storage now.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(plan) = &self.faults {
            plan.on_fsync()?;
        }
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Re-establish the append invariant after a failed [`Wal::append`]:
    /// scan for the valid frame prefix, truncate anything dangling
    /// (the partial frame a failed write left), and leave the cursor at
    /// the healed end.  Returns true iff a tear was cut.
    pub fn heal(&mut self) -> Result<bool, DurableError> {
        // A failed write leaves `bytes` (and the cursor) untrustworthy;
        // re-derive both from the file itself.
        self.bytes = self.file.seek(SeekFrom::End(0))?;
        let scan = self.scan()?;
        if scan.torn {
            self.truncate_to(scan.valid_len)?;
        }
        Ok(scan.torn)
    }

    /// Read the whole log from the start, decoding frames until the
    /// bytes stop checking out (see the module docs for the torn-tail
    /// contract).  Leaves the write cursor back at the end of file.
    pub fn scan(&mut self) -> Result<WalScan, DurableError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(self.bytes as usize);
        self.file.read_to_end(&mut buf)?;
        self.file.seek(SeekFrom::End(0))?;

        let mut frames = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &buf[pos..];
            if rest.is_empty() {
                return Ok(WalScan {
                    frames,
                    valid_len: pos as u64,
                    torn: false,
                });
            }
            let Some(payload) = split_frame(rest) else {
                // Short header, short payload, implausible length, or
                // CRC mismatch: the tail is torn at `pos`.
                return Ok(WalScan {
                    frames,
                    valid_len: pos as u64,
                    torn: true,
                });
            };
            // The frame checksummed clean: from here on, failure to
            // decode is corruption, not a tear.
            frames.push(
                decode_payload(payload).map_err(|msg| {
                    DurableError::Corrupt(format!("wal frame at byte {pos}: {msg}"))
                })?,
            );
            pos += 8 + payload.len();
        }
    }

    /// Truncate the log to `len` bytes (healing a torn tail found by
    /// [`Wal::scan`]) and leave the cursor at the new end.
    pub fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        self.bytes = len;
        Ok(())
    }

    /// Empty the log — every frame it held is covered by a checkpoint
    /// that just committed.  Syncs, so the truncation itself is
    /// durable before the caller reports the checkpoint done.
    pub fn reset(&mut self) -> io::Result<()> {
        self.truncate_to(0)?;
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// Split one frame off the front of `bytes`, returning its payload
/// slice if the header is complete, the length plausible, the payload
/// fully present, and the CRC right — i.e. iff the frame is not torn.
fn split_frame(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return None;
    }
    let payload = bytes.get(8..8 + len as usize)?;
    (crc32(payload) == crc).then_some(payload)
}

fn encode_payload(seq: u64, updates: &[Update]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&seq.to_le_bytes());
    for u in updates {
        match u {
            Update::Insert(f) => {
                out.push(b'I');
                out.push(b' ');
                out.extend_from_slice(f.to_string().as_bytes());
            }
            Update::Retract(f) => {
                out.push(b'R');
                out.push(b' ');
                out.extend_from_slice(f.to_string().as_bytes());
            }
        }
        out.push(b'\n');
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<WalFrame, String> {
    if payload.len() < 8 {
        return Err("payload shorter than its sequence number".into());
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let text = std::str::from_utf8(&payload[8..]).map_err(|e| format!("not UTF-8: {e}"))?;
    let mut updates = Vec::new();
    for line in text.lines() {
        let (op, atom) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed update line {line:?}"))?;
        let fact = parse_fact(atom)?;
        match op {
            "I" => updates.push(Update::Insert(fact)),
            "R" => updates.push(Update::Retract(fact)),
            other => return Err(format!("unknown update op {other:?}")),
        }
    }
    Ok(WalFrame { seq, updates })
}

/// Parse a ground atom like `par(john, mary)` back into a [`Fact`] —
/// the inverse of the `Display` rendering [`encode_payload`] writes.
fn parse_fact(text: &str) -> Result<Fact, String> {
    let query = parse_query(text).map_err(|e| format!("bad fact {text:?}: {e}"))?;
    let values: Option<Vec<Value>> = query.atom.terms.iter().map(|t| t.to_value()).collect();
    match values {
        Some(values) => Ok(Fact::new(query.atom.pred, values)),
        None => Err(format!("fact must be ground: {text}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::PredName;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("magic-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn fact(p: &str, a: &str, b: &str) -> Fact {
        Fact::new(PredName::plain(p), vec![Value::sym(a), Value::sym(b)])
    }

    #[test]
    fn append_scan_round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let batches: Vec<Vec<Update>> = vec![
            vec![Update::Insert(fact("par", "a", "b"))],
            vec![
                Update::Insert(fact("par", "b", "c")),
                Update::Retract(fact("par", "a", "b")),
            ],
            vec![Update::Insert(Fact::new(
                PredName::plain("m"),
                vec![Value::int(-7), Value::sym("x")],
            ))],
        ];
        {
            let mut wal = Wal::open(&path, FsyncPolicy::EveryN(2)).unwrap();
            for (i, batch) in batches.iter().enumerate() {
                wal.append(i as u64 + 1, batch).unwrap();
            }
        }
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let scan = wal.scan().unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, wal.bytes());
        assert_eq!(scan.frames.len(), batches.len());
        for (i, frame) in scan.frames.iter().enumerate() {
            assert_eq!(frame.seq, i as u64 + 1);
            assert_eq!(frame.updates, batches[i]);
        }
    }

    #[test]
    fn empty_batches_and_empty_log_scan_clean() {
        let path = tmp("empty");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        let scan = wal.scan().unwrap();
        assert!(scan.frames.is_empty() && !scan.torn && scan.valid_len == 0);
        wal.append(1, &[]).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.frames[0].updates.is_empty());
    }

    /// The torn-tail property: truncating a valid log at *every* byte
    /// offset must scan back to exactly the frames wholly contained in
    /// the prefix, flag the tear iff bytes dangle, and never error.
    #[test]
    fn truncation_at_every_byte_offset_recovers_the_frame_prefix() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let mut ends = vec![0u64]; // byte offset where each frame prefix ends
        for i in 0..5u64 {
            let batch = vec![
                Update::Insert(fact("par", &format!("a{i}"), &format!("b{i}"))),
                Update::Retract(fact("par", "a0", "b0")),
            ];
            wal.append(i + 1, &batch).unwrap();
            ends.push(wal.bytes());
        }
        let full = fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
            let scan = wal.scan().unwrap();
            let whole = ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            assert_eq!(scan.frames.len(), whole, "cut at byte {cut}");
            assert_eq!(scan.valid_len, ends[whole], "cut at byte {cut}");
            assert_eq!(scan.torn, (cut as u64) != ends[whole], "cut at byte {cut}");
            // Healing then re-scanning is clean.
            wal.truncate_to(scan.valid_len).unwrap();
            let healed = wal.scan().unwrap();
            assert!(!healed.torn);
            assert_eq!(healed.frames.len(), whole);
        }
    }

    #[test]
    fn flipped_byte_is_caught_by_the_checksum() {
        let path = tmp("bitflip");
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(1, &[Update::Insert(fact("par", "a", "b"))])
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let scan = wal.scan().unwrap();
        assert!(scan.torn);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn injected_torn_append_errors_then_heal_restores_the_append_invariant() {
        use crate::faults::FaultPlan;
        let path = tmp("inject");
        let plan = Arc::new(FaultPlan::parse("wal-torn=2").unwrap());
        let mut wal =
            Wal::open_with_faults(&path, FsyncPolicy::Never, Some(Arc::clone(&plan))).unwrap();
        wal.append(1, &[Update::Insert(fact("par", "a", "b"))])
            .unwrap();
        let good_len = wal.bytes();
        // The 2nd append is injected torn: half a frame lands on disk
        // and the call errors.
        let err = wal
            .append(2, &[Update::Insert(fact("par", "b", "c"))])
            .unwrap_err();
        assert!(err.to_string().contains("injected torn append"));
        assert!(fs::metadata(&path).unwrap().len() > good_len);
        // Scanning sees the tear; healing cuts it; appending resumes.
        let healed = wal.heal().unwrap();
        assert!(healed);
        assert_eq!(wal.bytes(), good_len);
        wal.append(3, &[Update::Insert(fact("par", "c", "d"))])
            .unwrap();
        let scan = wal.scan().unwrap();
        assert!(!scan.torn);
        assert_eq!(
            scan.frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn reset_empties_and_further_appends_work() {
        let path = tmp("reset");
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(1, &[Update::Insert(fact("par", "a", "b"))])
            .unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(2, &[Update::Insert(fact("par", "b", "c"))])
            .unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].seq, 2);
    }
}
