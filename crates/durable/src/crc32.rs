//! Hand-rolled CRC-32 (IEEE 802.3, polynomial `0xEDB88320`).
//!
//! The build environment has no crates.io access (see the workspace
//! `Cargo.toml`), so the checksum the WAL and checkpoint formats frame
//! their bytes with lives here: the classic byte-at-a-time table
//! variant, with the 256-entry table built in a `const` context so the
//! whole module is allocation- and dependency-free.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` (initial value `!0`, final xor `!0` — the
/// standard "zlib" convention, so `crc32(b"123456789")` is the classic
/// check value `0xCBF43926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"ab"));
    }
}
