//! The durable layer's error type.

use std::fmt;
use std::io;

/// Everything that can go wrong opening, writing, or recovering a
/// durable store.
///
/// The two variants split along the recovery contract: `Io` is the
/// environment failing underneath us (disk full, permissions, a
/// vanished directory), while `Corrupt` is bytes that passed the I/O
/// layer but fail validation — a checkpoint with a bad CRC, a frame
/// whose payload doesn't parse back into updates, a dangling arena
/// reference.  A *torn WAL tail* is deliberately **neither**: an
/// incomplete or CRC-failing final frame is the expected signature of
/// a crash mid-append, so recovery truncates it and reports it in
/// [`Recovered::torn_tail_truncated`](crate::Recovered), rather than
/// refusing to start.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// On-disk bytes failed validation (checksum, framing, or decode).
    Corrupt(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "i/o error: {e}"),
            DurableError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}
