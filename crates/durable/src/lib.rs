//! Crash-safe persistence for the serving layer: a write-ahead log
//! plus periodic checkpoints, and the recovery procedure that stitches
//! them back into a warm [`ViewCatalog`](magic_incr::ViewCatalog).
//!
//! The serving story so far (PR 5/6) kept everything in memory: the
//! writer thread applied update batches to the base database, streamed
//! them through the catalog's incremental maintenance, and published
//! immutable snapshots for readers.  This crate makes that loop
//! durable with the classic ARIES-shaped split, sized down to the
//! paper's workloads:
//!
//! * **[`Wal`]** — every acked batch is first appended as a
//!   length-prefixed, CRC32-framed record ([`wal`] module docs give
//!   the byte layout).  "Acked" now means *logged and published*.
//! * **[`Checkpoint`]** — periodically the whole base database is
//!   frozen to one atomically-replaced file ([`checkpoint`] module
//!   docs), and the WAL is emptied; restart cost is checkpoint load +
//!   WAL-tail replay, bounded by the checkpoint cadence rather than
//!   database lifetime.
//! * **[`DurableStore::recover`]** — load the checkpoint,
//!   re-materialize the exported view bindings through the ordinary
//!   planner/fixpoint path, replay the WAL tail through view
//!   maintenance, and truncate a torn final frame (which, by the
//!   ack-after-log rule, no client was ever told succeeded).
//! * **[`faults`]** — a deterministic fault-injection seam: a
//!   [`FaultPlan`] (parsed from the `MAGIC_FAULTS` environment
//!   variable or installed programmatically) schedules exactly which
//!   fsync, append, checkpoint rename, or accepted connection fails,
//!   so the failure paths above are exercised reproducibly in tests
//!   instead of argued about.  [`DurableStore::probe`] is the
//!   degraded-mode health check that proves the WAL path works again.
//!
//! Everything here is dependency-free by construction (the build
//! environment has no crates.io access): CRC32 is hand-rolled in
//! [`crc32`], and serialization is explicit little-endian byte
//! plumbing.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc32;
pub mod error;
pub mod faults;
pub mod store;
pub mod wal;

pub use checkpoint::{Checkpoint, RelationDump};
pub use error::DurableError;
pub use faults::{AppendFault, ConnFault, FaultPlan, MAGIC_FAULTS_ENV};
pub use store::{
    shard_checkpoint_file, shard_wal_file, verify_shard_layout, DurableConfig, DurableStore,
    Recovered, RecoveredBase,
};
pub use wal::{FsyncPolicy, Wal, WalFrame, WalScan};
