//! The durable store: one directory holding a checkpoint and a WAL,
//! plus the recovery procedure that turns them back into serving state.
//!
//! # Protocol
//!
//! The owning writer (one per store — the serve writer thread) drives
//! the store in a strict order:
//!
//! 1. apply an update batch to the in-memory base database;
//! 2. [`DurableStore::log_batch`] the *state-changing* updates — the
//!    batch is durable (to the configured fsync degree) from here, and
//!    only now may the writer publish and ack;
//! 3. when [`DurableStore::should_checkpoint`] says the WAL has grown
//!    past the configured cadence, [`DurableStore::checkpoint`] the
//!    whole database and empty the WAL.
//!
//! [`DurableStore::recover`] inverts the writes: load the newest valid
//! checkpoint (if any), re-materialize each exported view binding
//! through the ordinary planner/fixpoint path, replay the WAL frames
//! the checkpoint doesn't already cover, and truncate a torn final
//! frame if a crash left one.  The sequence numbers stitched through
//! both files make every interleaving of crash and recovery safe:
//!
//! * crash mid-append → torn frame, detected by CRC, truncated (it was
//!   never acked);
//! * crash mid-checkpoint → temp file discarded, old checkpoint +
//!   full WAL still present;
//! * crash *between* checkpoint rename and WAL reset → the WAL holds
//!   frames the checkpoint already covers; replay skips every frame
//!   with `seq <= checkpoint.seq`.

use crate::checkpoint::Checkpoint;
use crate::error::DurableError;
use crate::faults::FaultPlan;
use crate::wal::{FsyncPolicy, Wal};
use magic_datalog::{parse_query, Program};
use magic_incr::{Update, ViewCatalog};
use magic_storage::Database;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// On-disk file names inside a store directory.
const CHECKPOINT_FILE: &str = "checkpoint.bin";
const WAL_FILE: &str = "wal.log";

/// Marker recording how many writer shards a store directory was
/// created with (absent for the legacy single-shard layout).  A store
/// must be reopened at the shard count that wrote it: each shard's WAL
/// and checkpoint cover a hash partition of the predicates, and the
/// partition function is keyed by the count.
const SHARDS_META_FILE: &str = "shards.meta";

/// The WAL file name for `shard` of `shards` (legacy `wal.log` for a
/// single shard, `wal-<shard>.log` otherwise).
pub fn shard_wal_file(shard: usize, shards: usize) -> String {
    if shards <= 1 {
        WAL_FILE.to_string()
    } else {
        format!("wal-{shard}.log")
    }
}

/// The checkpoint file name for `shard` of `shards` (legacy
/// `checkpoint.bin` for a single shard, `checkpoint-<shard>.bin`
/// otherwise).
pub fn shard_checkpoint_file(shard: usize, shards: usize) -> String {
    if shards <= 1 {
        CHECKPOINT_FILE.to_string()
    } else {
        format!("checkpoint-{shard}.bin")
    }
}

/// Verify (writing it on first contact) that the store directory at
/// `dir` was created for exactly `shards` writer shards.  A mismatch —
/// reopening a sharded store at a different count, a legacy store at
/// `shards > 1`, or a sharded store at `shards == 1` — is refused:
/// the hash partition baked into the per-shard files would silently
/// misroute recovery otherwise.
pub fn verify_shard_layout(dir: &Path, shards: usize) -> Result<(), DurableError> {
    fs::create_dir_all(dir)?;
    let meta = dir.join(SHARDS_META_FILE);
    let recorded: Option<usize> = match fs::read_to_string(&meta) {
        Ok(text) => Some(text.trim().parse().map_err(|_| {
            DurableError::Corrupt(format!("unreadable shard count in {}", meta.display()))
        })?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    // A legacy (pre-shard) store carries no meta file but may carry a
    // single-shard WAL or checkpoint; treat that as a recorded 1.
    let legacy = dir.join(WAL_FILE).exists() || dir.join(CHECKPOINT_FILE).exists();
    let effective = recorded.or(if legacy { Some(1) } else { None });
    match effective {
        Some(found) if found != shards => Err(DurableError::Corrupt(format!(
            "store {} was created with writer_shards={found}; reopen it with the same \
             shard count (got {shards})",
            dir.display()
        ))),
        _ => {
            if shards > 1 && recorded.is_none() {
                fs::write(&meta, format!("{shards}\n"))?;
            }
            Ok(())
        }
    }
}

/// Where and how a [`DurableStore`] persists.
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// Directory holding the checkpoint and WAL (created if absent).
    pub dir: PathBuf,
    /// When WAL appends reach stable storage (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL frames (0 disables automatic
    /// checkpoints; the initial recovery checkpoint still happens).
    pub checkpoint_every: u64,
    /// Injected-failure schedule (see [`crate::faults`]).  `None`
    /// falls back to the `MAGIC_FAULTS` environment variable at
    /// [`DurableStore::open`]; an explicit plan wins over the env.
    pub faults: Option<Arc<FaultPlan>>,
}

impl DurableConfig {
    /// Durability at `dir` with the default cadence: fsync every 8
    /// frames, checkpoint every 256.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(8),
            checkpoint_every: 256,
            faults: None,
        }
    }

    /// Override the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> DurableConfig {
        self.fsync = fsync;
        self
    }

    /// Override the checkpoint cadence (frames between checkpoints).
    pub fn with_checkpoint_every(mut self, frames: u64) -> DurableConfig {
        self.checkpoint_every = frames;
        self
    }

    /// Install a fault-injection schedule.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> DurableConfig {
        self.faults = Some(faults);
        self
    }
}

/// What [`DurableStore::recover`] produced.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered base database (checkpoint + replayed WAL tail).
    pub db: Database,
    /// The catalog, warm: every recoverable binding re-materialized
    /// over the recovered base and maintained through the replay.
    pub catalog: ViewCatalog,
    /// WAL frames replayed on top of the checkpoint.
    pub replayed_frames: u64,
    /// True iff a torn (never-acked) final frame was found and cut.
    pub torn_tail_truncated: bool,
    /// True iff a checkpoint file existed and was loaded.
    pub restored_from_checkpoint: bool,
    /// Binding keys re-materialized from the checkpoint's exports.
    pub rebuilt_views: Vec<String>,
}

/// What [`DurableStore::recover_base`] produced: the restored base
/// partition plus the exported bindings, left for the caller to
/// re-materialize once every shard's partition is merged.
#[derive(Debug)]
pub struct RecoveredBase {
    /// The recovered base database (checkpoint + replayed WAL tail).
    pub db: Database,
    /// The checkpoint's exported `(key, query text)` bindings,
    /// *not* materialized.
    pub bindings: Vec<(String, String)>,
    /// WAL frames replayed on top of the checkpoint.
    pub replayed_frames: u64,
    /// True iff a torn (never-acked) final frame was found and cut.
    pub torn_tail_truncated: bool,
    /// True iff a checkpoint file existed and was loaded.
    pub restored_from_checkpoint: bool,
}

/// An open durable store (see the module docs for the protocol).
#[derive(Debug)]
pub struct DurableStore {
    checkpoint_path: PathBuf,
    wal: Wal,
    checkpoint_every: u64,
    /// Sequence number of the last batch logged or replayed.
    seq: u64,
    /// Sequence the on-disk checkpoint covers through.
    last_checkpoint_seq: u64,
    /// WAL frames appended since that checkpoint.
    frames_since_checkpoint: u64,
    /// Injected-failure schedule shared with the WAL.
    faults: Option<Arc<FaultPlan>>,
}

impl DurableStore {
    /// Open (creating if absent) the store directory and its WAL.
    ///
    /// Opening performs no recovery; call [`DurableStore::recover`]
    /// before logging so the sequence counter continues where the
    /// previous process stopped.
    pub fn open(config: &DurableConfig) -> Result<DurableStore, DurableError> {
        fs::create_dir_all(&config.dir)?;
        let faults = config.faults.clone().or_else(FaultPlan::from_env);
        let wal = Wal::open_with_faults(config.dir.join(WAL_FILE), config.fsync, faults.clone())?;
        Ok(DurableStore {
            checkpoint_path: config.dir.join(CHECKPOINT_FILE),
            wal,
            checkpoint_every: config.checkpoint_every,
            seq: 0,
            last_checkpoint_seq: 0,
            frames_since_checkpoint: 0,
            faults,
        })
    }

    /// Open shard `shard` of `shards` in the store directory: the same
    /// machinery as [`DurableStore::open`], but the WAL and checkpoint
    /// carry per-shard names (`wal-<shard>.log`,
    /// `checkpoint-<shard>.bin`) so N independent writer shards can
    /// stream into one directory without contending on a file.  The
    /// single-shard case maps to the legacy names, so `shards == 1` is
    /// exactly [`DurableStore::open`].  Callers should
    /// [`verify_shard_layout`] the directory once before opening any
    /// shard.
    pub fn open_shard(
        config: &DurableConfig,
        shard: usize,
        shards: usize,
    ) -> Result<DurableStore, DurableError> {
        assert!(shard < shards.max(1), "shard index out of range");
        fs::create_dir_all(&config.dir)?;
        let faults = config.faults.clone().or_else(FaultPlan::from_env);
        let wal = Wal::open_with_faults(
            config.dir.join(shard_wal_file(shard, shards)),
            config.fsync,
            faults.clone(),
        )?;
        Ok(DurableStore {
            checkpoint_path: config.dir.join(shard_checkpoint_file(shard, shards)),
            wal,
            checkpoint_every: config.checkpoint_every,
            seq: 0,
            last_checkpoint_seq: 0,
            frames_since_checkpoint: 0,
            faults,
        })
    }

    /// Rebuild serving state from disk.
    ///
    /// `seed` is the extensional database to start from when the store
    /// is brand new (no checkpoint on disk yet) — typically the
    /// server's configured initial EDB.  Once a checkpoint exists the
    /// seed is ignored: disk is the durable truth.  `catalog` carries
    /// the serving configuration (strategy, limits, eviction policy)
    /// and comes back warm.  On a fresh store, recovery ends by
    /// writing the initial checkpoint, so the seed itself becomes
    /// durable before the first batch is ever logged.
    pub fn recover(
        &mut self,
        program: &Program,
        catalog: ViewCatalog,
        seed: &Database,
    ) -> Result<Recovered, DurableError> {
        let checkpoint = if self.checkpoint_path.exists() {
            Some(Checkpoint::load(&self.checkpoint_path)?)
        } else {
            None
        };
        let restored_from_checkpoint = checkpoint.is_some();
        let (mut db, bindings, base_seq) = match &checkpoint {
            Some(ckpt) => (ckpt.restore_database()?, ckpt.bindings.clone(), ckpt.seq),
            None => (seed.clone(), Vec::new(), 0),
        };

        // Re-materialize the exported bindings over the checkpointed
        // base, *before* replay, so the WAL tail streams through view
        // maintenance exactly as it originally did.  A binding whose
        // query no longer plans (the caller changed the rules between
        // runs) is dropped, not fatal: views are caches, and the next
        // first-sight query rebuilds under the new rules.
        let mut catalog = catalog;
        let mut rebuilt_views = Vec::new();
        for (key, text) in &bindings {
            let Ok(query) = parse_query(text) else {
                continue;
            };
            if catalog.materialize(program, &query, &db).is_ok() {
                rebuilt_views.push(key.clone());
            }
        }

        let scan = self.wal.scan()?;
        if scan.torn {
            self.wal.truncate_to(scan.valid_len)?;
        }
        let mut replayed_frames = 0u64;
        let mut seq = base_seq;
        for frame in &scan.frames {
            if frame.seq <= base_seq {
                continue;
            }
            let changed: Vec<Update> = frame
                .updates
                .iter()
                .filter(|u| match u {
                    Update::Insert(f) => db.insert_fact(f),
                    Update::Retract(f) => db.remove_fact(f),
                })
                .cloned()
                .collect();
            if !changed.is_empty() {
                catalog.apply_all(&changed);
            }
            replayed_frames += 1;
            seq = frame.seq;
        }

        self.seq = seq;
        self.last_checkpoint_seq = base_seq;
        self.frames_since_checkpoint = replayed_frames;

        if !restored_from_checkpoint {
            self.checkpoint(&db, &catalog.export_bindings())?;
        }

        Ok(Recovered {
            db,
            catalog,
            replayed_frames,
            torn_tail_truncated: scan.torn,
            restored_from_checkpoint,
            rebuilt_views,
        })
    }

    /// [`DurableStore::recover`] without the view layer: restore the
    /// base database (checkpoint load + WAL-tail replay + torn-tail
    /// truncation + fresh-store seed checkpoint) and hand back the
    /// checkpoint's exported bindings *unmaterialized*.
    ///
    /// This is the per-shard half of sharded recovery: each shard's
    /// files cover only its hash partition of the base predicates, so
    /// no single shard can re-materialize a view (views read the whole
    /// database).  The serving layer recovers every shard's base this
    /// way, merges the disjoint partitions, and only then
    /// re-materializes the union of exported bindings over the merged
    /// base — which reaches the same fixpoint as the single-store
    /// path's replay-through-maintenance, because a view's state is a
    /// function of the base state alone.
    pub fn recover_base(&mut self, seed: &Database) -> Result<RecoveredBase, DurableError> {
        let checkpoint = if self.checkpoint_path.exists() {
            Some(Checkpoint::load(&self.checkpoint_path)?)
        } else {
            None
        };
        let restored_from_checkpoint = checkpoint.is_some();
        let (mut db, bindings, base_seq) = match &checkpoint {
            Some(ckpt) => (ckpt.restore_database()?, ckpt.bindings.clone(), ckpt.seq),
            None => (seed.clone(), Vec::new(), 0),
        };
        let scan = self.wal.scan()?;
        if scan.torn {
            self.wal.truncate_to(scan.valid_len)?;
        }
        let mut replayed_frames = 0u64;
        let mut seq = base_seq;
        for frame in &scan.frames {
            if frame.seq <= base_seq {
                continue;
            }
            for update in &frame.updates {
                match update {
                    Update::Insert(f) => db.insert_fact(f),
                    Update::Retract(f) => db.remove_fact(f),
                };
            }
            replayed_frames += 1;
            seq = frame.seq;
        }
        self.seq = seq;
        self.last_checkpoint_seq = base_seq;
        self.frames_since_checkpoint = replayed_frames;
        if !restored_from_checkpoint {
            self.checkpoint(&db, &bindings)?;
        }
        Ok(RecoveredBase {
            db,
            bindings,
            replayed_frames,
            torn_tail_truncated: scan.torn,
            restored_from_checkpoint,
        })
    }

    /// Log one applied batch; returns its sequence number.  The batch
    /// is recoverable once this returns — ack the client after, never
    /// before.
    ///
    /// On failure the frame is scrubbed (best effort) back off the
    /// log.  Without the scrub, an append whose *fsync* failed could
    /// leave a fully-written, CRC-valid frame behind: the client was
    /// told the write failed, the owner rolled it back in memory, and
    /// yet recovery would replay it — a ghost write.  `Err` from here
    /// therefore means the batch is gone from the log to the best of
    /// the store's ability, and [`DurableStore::probe`] re-verifies
    /// the tail before the path is declared healthy again.
    pub fn log_batch(&mut self, updates: &[Update]) -> Result<u64, DurableError> {
        self.seq += 1;
        let start = self.wal.bytes();
        if let Err(e) = self.wal.append(self.seq, updates) {
            let _ = self.wal.truncate_to(start);
            return Err(e.into());
        }
        self.frames_since_checkpoint += 1;
        Ok(self.seq)
    }

    /// True when the WAL has grown past the configured cadence and the
    /// caller should [`DurableStore::checkpoint`].
    pub fn should_checkpoint(&self) -> bool {
        self.checkpoint_every > 0 && self.frames_since_checkpoint >= self.checkpoint_every
    }

    /// Checkpoint `db` (which must reflect every batch logged so far)
    /// and the catalog's exported `bindings`, then empty the WAL.
    pub fn checkpoint(
        &mut self,
        db: &Database,
        bindings: &[(String, String)],
    ) -> Result<(), DurableError> {
        Checkpoint::capture(self.seq, db, bindings)?
            .write_to_with(&self.checkpoint_path, self.faults.as_deref())?;
        // Only after the rename committed is it safe to drop the WAL;
        // a crash in between leaves covered frames behind, which
        // replay skips by sequence number.
        self.wal.reset()?;
        self.last_checkpoint_seq = self.seq;
        self.frames_since_checkpoint = 0;
        Ok(())
    }

    /// Force WAL bytes to stable storage now (used on clean shutdown
    /// under [`FsyncPolicy::Never`]/[`FsyncPolicy::EveryN`]).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.wal.sync()?;
        Ok(())
    }

    /// Prove the WAL path works end to end — the degraded-mode health
    /// probe.  Heals any partial frame a failed append left (the owner
    /// stopped appending the moment that failure surfaced, so the tear
    /// is the last thing in the file and nothing valid sits beyond it),
    /// then appends an *empty* frame at the next sequence number and
    /// forces it to stable storage.  `Ok` means append + fsync both
    /// round-tripped; replaying the probe frame on recovery is a no-op
    /// by construction.
    pub fn probe(&mut self) -> Result<(), DurableError> {
        self.wal.heal()?;
        self.seq += 1;
        self.wal.append(self.seq, &[])?;
        self.wal.sync()?;
        self.frames_since_checkpoint += 1;
        Ok(())
    }

    /// Current WAL size in bytes (the replay debt of a crash now).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Sequence number of the last logged (or replayed) batch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Sequence the newest on-disk checkpoint covers through.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// The store's checkpoint path (for tests and tooling).
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_core::planner::Strategy;
    use magic_datalog::{parse_program, Fact, Value};
    use std::fs::OpenOptions;
    use std::io::Write;

    const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("magic-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pair(p: &str, a: &str, b: &str) -> Fact {
        Fact::plain(p, vec![Value::sym(a), Value::sym(b)])
    }

    fn seed() -> Database {
        let mut db = Database::new();
        db.insert_pair("par", "john", "mary");
        db.insert_pair("par", "mary", "ann");
        db
    }

    fn catalog() -> ViewCatalog {
        ViewCatalog::new(Strategy::MagicSets)
    }

    /// Apply a batch to `db` the way the serve writer does (keeping
    /// only state-changing updates) and log it.
    fn apply_and_log(store: &mut DurableStore, db: &mut Database, batch: &[Update]) {
        let changed: Vec<Update> = batch
            .iter()
            .filter(|u| match u {
                Update::Insert(f) => db.insert_fact(f),
                Update::Retract(f) => db.remove_fact(f),
            })
            .cloned()
            .collect();
        store.log_batch(&changed).unwrap();
    }

    #[test]
    fn fresh_store_recovers_the_seed_and_checkpoints_it() {
        let dir = tmp("fresh");
        let program = parse_program(RULES).unwrap();
        let mut store = DurableStore::open(&DurableConfig::new(&dir)).unwrap();
        let rec = store.recover(&program, catalog(), &seed()).unwrap();
        assert_eq!(rec.db, seed());
        assert!(!rec.restored_from_checkpoint);
        assert_eq!(rec.replayed_frames, 0);
        // The seed is now durable: a second recovery ignores a
        // *different* seed and restores the checkpointed one.
        drop(store);
        let mut store = DurableStore::open(&DurableConfig::new(&dir)).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        assert!(rec.restored_from_checkpoint);
        assert_eq!(rec.db, seed());
    }

    #[test]
    fn wal_replay_reaches_the_oracle_state() {
        let dir = tmp("replay");
        let program = parse_program(RULES).unwrap();
        let mut store = DurableStore::open(
            &DurableConfig::new(&dir).with_checkpoint_every(0), // no auto checkpoints
        )
        .unwrap();
        let mut db = store.recover(&program, catalog(), &seed()).unwrap().db;
        let batches = vec![
            vec![Update::Insert(pair("par", "ann", "zoe"))],
            vec![
                Update::Retract(pair("par", "john", "mary")),
                Update::Insert(pair("par", "zoe", "kim")),
            ],
            vec![Update::Insert(pair("par", "ann", "zoe"))], // no-op batch
        ];
        for batch in &batches {
            apply_and_log(&mut store, &mut db, batch);
        }
        drop(store);

        // Oracle: the seed with every batch applied from scratch.
        let mut oracle = seed();
        for batch in batches.iter().flatten() {
            match batch {
                Update::Insert(f) => oracle.insert_fact(f),
                Update::Retract(f) => oracle.remove_fact(f),
            };
        }
        let mut store = DurableStore::open(&DurableConfig::new(&dir)).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        assert_eq!(rec.db, oracle);
        assert_eq!(rec.db, db);
        assert_eq!(rec.replayed_frames, 3);
        assert_eq!(store.seq(), 3);
        // Logging continues from the recovered sequence.
        assert_eq!(store.log_batch(&[]).unwrap(), 4);
    }

    #[test]
    fn checkpoint_bounds_replay_and_stale_wal_frames_are_skipped() {
        let dir = tmp("ckpt");
        let program = parse_program(RULES).unwrap();
        let config = DurableConfig::new(&dir).with_checkpoint_every(2);
        let mut store = DurableStore::open(&config).unwrap();
        let mut db = store.recover(&program, catalog(), &seed()).unwrap().db;

        apply_and_log(
            &mut store,
            &mut db,
            &[Update::Insert(pair("par", "a", "b"))],
        );
        assert!(!store.should_checkpoint());
        apply_and_log(
            &mut store,
            &mut db,
            &[Update::Insert(pair("par", "b", "c"))],
        );
        assert!(store.should_checkpoint());

        // Simulate a crash *between* checkpoint rename and WAL reset:
        // save the covered WAL bytes and restore them afterwards.
        let wal_path = dir.join(WAL_FILE);
        let covered = fs::read(&wal_path).unwrap();
        store.checkpoint(&db, &[]).unwrap();
        assert_eq!(store.wal_bytes(), 0);
        assert_eq!(store.last_checkpoint_seq(), 2);
        apply_and_log(
            &mut store,
            &mut db,
            &[Update::Insert(pair("par", "c", "d"))],
        );
        let tail = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, [covered, tail].concat()).unwrap();
        drop(store);

        let mut store = DurableStore::open(&config).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        // Frames 1–2 are covered by the checkpoint and must be
        // skipped; only frame 3 replays.  Replaying them anyway would
        // still converge here, so assert the *count*, which proves the
        // sequence filter works.
        assert_eq!(rec.replayed_frames, 1);
        assert_eq!(rec.db, db);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp("torn");
        let program = parse_program(RULES).unwrap();
        let config = DurableConfig::new(&dir).with_checkpoint_every(0);
        let mut store = DurableStore::open(&config).unwrap();
        let mut db = store.recover(&program, catalog(), &seed()).unwrap().db;
        apply_and_log(
            &mut store,
            &mut db,
            &[Update::Insert(pair("par", "a", "b"))],
        );
        drop(store);

        // A crash mid-append: garbage bytes that parse as a frame
        // header but fail the checksum.
        let wal_path = dir.join(WAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&[0x2A, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, b'I', b' '])
            .unwrap();
        drop(f);

        let mut store = DurableStore::open(&config).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        assert!(rec.torn_tail_truncated);
        assert_eq!(rec.replayed_frames, 1);
        assert_eq!(rec.db, db);
        // The heal is persistent: a third open scans clean.
        drop(store);
        let mut store = DurableStore::open(&config).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        assert!(!rec.torn_tail_truncated);
        assert_eq!(rec.db, db);
    }

    #[test]
    fn injected_faults_fail_the_durable_path_and_probe_recovers_it() {
        let dir = tmp("probe");
        let program = parse_program(RULES).unwrap();
        // Fsync on every append so the injected fsync failure surfaces
        // through `log_batch` itself: fsyncs #1 (the first batch's) and
        // #2 (the first probe's) fail, then the path is healthy again.
        let plan = Arc::new(FaultPlan::parse("wal-fsync-fail=1x2").unwrap());
        let config = DurableConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_checkpoint_every(0)
            .with_faults(Arc::clone(&plan));
        let mut store = DurableStore::open(&config).unwrap();
        let mut db = store.recover(&program, catalog(), &seed()).unwrap().db;

        let batch = vec![Update::Insert(pair("par", "a", "b"))];
        db.insert_fact(batch[0].fact());
        let err = store.log_batch(&batch).unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"));
        // First probe hits the 3rd fsync (still scheduled to fail) …
        assert!(store.probe().is_err());
        // … the next one round-trips: the durable path is healthy.
        store.probe().unwrap();
        // Logging works again, and recovery sees exactly the batches
        // that were logged after the fault window (plus the no-op
        // probe frames).
        db.insert_fact(&pair("par", "b", "c"));
        store
            .log_batch(&[Update::Insert(pair("par", "b", "c"))])
            .unwrap();
        drop(store);

        let mut store = DurableStore::open(&DurableConfig::new(&dir)).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        let mut expected = seed();
        expected.insert_fact(&pair("par", "b", "c"));
        assert_eq!(rec.db, expected);
    }

    #[test]
    fn checkpoint_rename_fault_leaves_the_previous_checkpoint_intact() {
        let dir = tmp("ckpt-fault");
        let program = parse_program(RULES).unwrap();
        let plan = Arc::new(FaultPlan::parse("ckpt-rename-fail=2").unwrap());
        let config = DurableConfig::new(&dir)
            .with_checkpoint_every(0)
            .with_faults(plan);
        let mut store = DurableStore::open(&config).unwrap();
        let mut db = store.recover(&program, catalog(), &seed()).unwrap().db;
        apply_and_log(
            &mut store,
            &mut db,
            &[Update::Insert(pair("par", "a", "b"))],
        );
        // The 2nd rename (the 1st was the initial seed checkpoint) is
        // injected to fail; the WAL must keep its frames so durability
        // still holds through the old checkpoint + replay.
        let err = store.checkpoint(&db, &[]).unwrap_err();
        assert!(err.to_string().contains("injected checkpoint rename"));
        assert!(
            store.wal_bytes() > 0,
            "a failed checkpoint must not reset the WAL"
        );
        // Retrying succeeds (the schedule only hit occurrence 2).
        store.checkpoint(&db, &[]).unwrap();
        assert_eq!(store.wal_bytes(), 0);
        drop(store);
        let mut store = DurableStore::open(&DurableConfig::new(&dir)).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        assert_eq!(rec.db, db);
    }

    #[test]
    fn sharded_stores_recover_disjoint_partitions_that_merge_to_the_oracle() {
        let dir = tmp("sharded");
        let program = parse_program(RULES).unwrap();
        verify_shard_layout(&dir, 2).unwrap();
        let config = DurableConfig::new(&dir).with_checkpoint_every(0);
        // Shard 0 owns `par`, shard 1 owns `fol` (a hash partition in
        // production; fixed here so the test is self-describing).
        let mut s0 = DurableStore::open_shard(&config, 0, 2).unwrap();
        let mut s1 = DurableStore::open_shard(&config, 1, 2).unwrap();
        let mut db0 = s0.recover_base(&seed()).unwrap().db;
        let mut db1 = s1.recover_base(&Database::new()).unwrap().db;
        apply_and_log(&mut s0, &mut db0, &[Update::Insert(pair("par", "a", "b"))]);
        apply_and_log(&mut s1, &mut db1, &[Update::Insert(pair("fol", "x", "y"))]);
        apply_and_log(&mut s1, &mut db1, &[Update::Retract(pair("fol", "x", "y"))]);
        drop((s0, s1));

        // Each shard's files are separate on disk...
        assert!(dir.join("wal-0.log").exists());
        assert!(dir.join("wal-1.log").exists());
        assert!(dir.join("checkpoint-0.bin").exists());
        // ...and per-shard recovery + merge reaches the oracle.
        let mut s0 = DurableStore::open_shard(&config, 0, 2).unwrap();
        let mut s1 = DurableStore::open_shard(&config, 1, 2).unwrap();
        let r0 = s0.recover_base(&Database::new()).unwrap();
        let r1 = s1.recover_base(&Database::new()).unwrap();
        let mut merged = r0.db;
        merged.merge(&r1.db);
        let mut oracle = seed();
        oracle.insert_fact(&pair("par", "a", "b"));
        assert_eq!(merged, oracle);
        assert_eq!(r0.replayed_frames, 1);
        assert_eq!(r1.replayed_frames, 2);
        // The program still plans over the merged base (smoke that the
        // partition carried nothing program-specific).
        let mut catalog = catalog();
        catalog
            .materialize(&program, &parse_query("anc(john, Y)").unwrap(), &merged)
            .unwrap();

        // Reopening at a different shard count is refused.
        let err = verify_shard_layout(&dir, 4).unwrap_err();
        assert!(err.to_string().contains("writer_shards=2"), "{err}");
        let err = verify_shard_layout(&dir, 1).unwrap_err();
        assert!(err.to_string().contains("writer_shards=2"), "{err}");
        // And a legacy store refuses a sharded reopen.
        let legacy = tmp("sharded-legacy");
        let mut store = DurableStore::open(&DurableConfig::new(&legacy)).unwrap();
        store.recover(&program, catalog, &seed()).unwrap();
        drop(store);
        let err = verify_shard_layout(&legacy, 4).unwrap_err();
        assert!(err.to_string().contains("writer_shards=1"), "{err}");
        verify_shard_layout(&legacy, 1).unwrap();
    }

    #[test]
    fn exported_bindings_come_back_warm_and_maintained() {
        let dir = tmp("views");
        let program = parse_program(RULES).unwrap();
        let config = DurableConfig::new(&dir).with_checkpoint_every(0);
        let mut store = DurableStore::open(&config).unwrap();
        let rec = store.recover(&program, catalog(), &seed()).unwrap();
        let mut db = rec.db;
        let mut cat = rec.catalog;

        // Materialize a view, checkpoint with its binding exported,
        // then stream one more (logged-only) batch.
        let query = parse_query("anc(john, Y)").unwrap();
        let key = cat.materialize(&program, &query, &db).unwrap();
        store.checkpoint(&db, &cat.export_bindings()).unwrap();
        let batch = vec![Update::Insert(pair("par", "ann", "zoe"))];
        apply_and_log(&mut store, &mut db, &batch);
        cat.apply_all(&batch);
        let live_answers = cat.answers(&key).unwrap();
        drop(store);

        let mut store = DurableStore::open(&config).unwrap();
        let rec = store
            .recover(&program, catalog(), &Database::new())
            .unwrap();
        assert_eq!(rec.rebuilt_views, vec![key.clone()]);
        assert!(rec.catalog.contains(&key));
        // The replayed tail streamed through maintenance: the
        // recovered view answers exactly like the live one did,
        // including the post-checkpoint insert (zoe is john's
        // descendant only via the logged batch).
        assert_eq!(rec.catalog.answers(&key).unwrap(), live_answers);
        assert_eq!(rec.db, db);
    }
}
